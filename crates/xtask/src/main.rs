//! Workspace automation: `cargo run -p xtask -- lint`.
//!
//! A lightweight, dependency-free lint pass enforcing repo invariants that
//! clippy cannot express (see `DESIGN.md` §7). The scan is token-level — a
//! small state machine strips comments and string literals per line — so it
//! is fast and has no `syn`/proc-macro footprint, at the cost of ignoring
//! anything that needs real name resolution. The rules:
//!
//! * **panic** — non-test library code in first-party crates must not call
//!   `.unwrap()` / `.expect(…)` / `.expect_err(…)`. Each deliberate exception
//!   carries an inline `// lint: allow(panic) — <reason>` annotation; the
//!   reason is mandatory, so `cargo run -p xtask -- lint` passing means every
//!   remaining panic site in library code is individually documented.
//! * **index** — in the concurrency-critical modules (`pipeline.rs`,
//!   `recovery.rs`, `serve.rs`, `sync.rs` of `ttc-social-media`), direct index
//!   expressions `x[i]` are panic sites too; use `.get()` or annotate with
//!   `// lint: allow(index) — <reason>`.
//! * **raw-send** — in the same strict modules, every channel `.send(…)` /
//!   `.try_send(…)` must go through the counted, status-returning helpers;
//!   the helpers' own internals are the only annotated exceptions
//!   (`// lint: allow(raw-send) — <reason>`).
//! * **lock-policy** — in the strict modules, every `.lock()` must state its
//!   poisoning policy: the word "poison" must appear on the same line or in
//!   the three lines above (a doc comment on a wrapper method counts).
//! * **pub-doc** — the serving surface (`serve.rs`) is consumed by readers
//!   outside the engine, so every public item in it must carry a `///` doc
//!   comment. `#![warn(missing_docs)]` already nags; this rule makes the
//!   contract a hard failure even when warnings are tolerated.
//! * **crate-hygiene** — every crate in the workspace, vendored stand-ins
//!   included, carries `#![forbid(unsafe_code)]` and crate-level `//!` docs
//!   in its root module.

#![forbid(unsafe_code)]

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match run_lint(&workspace_root()) {
            Ok(findings) if findings.is_empty() => {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            }
            Ok(findings) => {
                for finding in &findings {
                    println!("{finding}");
                }
                println!("xtask lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
            Err(err) => {
                eprintln!("xtask lint: {err}");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown task `{other}` (try `lint`)");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("xtask: no task given (try `lint`)");
            ExitCode::FAILURE
        }
    }
}

/// The workspace root, resolved from this crate's own manifest directory so
/// the lint works from any invocation directory.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask always sits two levels under the workspace root")
        .to_path_buf()
}

/// One lint violation, rendered `path:line: [rule] message`.
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Modules under the full panic/index/send/lock regime: the crash-recovery
/// protocol, the epoch-published read path, and their synchronization facade.
const STRICT_MODULES: [&str; 4] = [
    "crates/ttc-social-media/src/pipeline.rs",
    "crates/ttc-social-media/src/recovery.rs",
    "crates/ttc-social-media/src/serve.rs",
    "crates/ttc-social-media/src/sync.rs",
];

/// Modules whose public API is read outside the engine and therefore must be
/// documented item by item (the `pub-doc` rule).
const DOC_MODULES: [&str; 2] = [
    "crates/ttc-social-media/src/serve.rs",
    "crates/graphblas/src/index.rs",
];

fn run_lint(root: &Path) -> Result<Vec<Finding>, String> {
    let mut findings = Vec::new();
    let mut files = Vec::new();
    for top in ["crates", "vendor"] {
        collect_rust_files(&root.join(top), &mut files)?;
    }
    files.sort();

    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let source =
            std::fs::read_to_string(path).map_err(|e| format!("failed to read {rel}: {e}"))?;
        lint_file(&rel, &source, &mut findings);
    }

    check_crate_hygiene(root, &files, &mut findings);
    findings.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    Ok(findings)
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {dir:?}: {e}"))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {dir:?}: {e}"))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rust_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Where a file sits in the workspace, deciding which rules apply.
struct FileScope {
    /// `crates/**` (vendored stand-ins are only under the hygiene rule).
    first_party: bool,
    /// Library code: under `src/`, not a binary target, not tests/examples.
    lib_code: bool,
    /// One of [`STRICT_MODULES`].
    strict: bool,
    /// One of [`DOC_MODULES`]: public items must carry doc comments.
    doc_strict: bool,
}

fn classify(rel: &str) -> FileScope {
    let first_party = rel.starts_with("crates/");
    let in_src = rel.contains("/src/");
    let binary = rel.contains("/src/bin/") || rel.ends_with("/src/main.rs");
    let lib_code = in_src && !binary;
    FileScope {
        first_party,
        lib_code,
        strict: STRICT_MODULES.contains(&rel),
        doc_strict: DOC_MODULES.contains(&rel),
    }
}

fn lint_file(rel: &str, source: &str, findings: &mut Vec<Finding>) {
    let scope = classify(rel);
    if !(scope.first_party && scope.lib_code) {
        return;
    }
    let lines = split_code_and_comments(source);
    let test_mask = test_region_mask(&lines);

    for (idx, line) in lines.iter().enumerate() {
        if test_mask[idx] {
            continue;
        }
        let number = idx + 1;
        let allow = |rule: &str| allows(&lines, idx, rule);

        for pattern in [".unwrap()", ".expect(", ".expect_err("] {
            if line.code.contains(pattern) && !allow("panic") {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: number,
                    rule: "panic",
                    message: format!(
                        "`{pattern}` in library code — handle the error or annotate \
                         `// lint: allow(panic) — <reason>`"
                    ),
                });
            }
        }

        if scope.doc_strict
            && is_public_item(&line.code)
            && !has_doc_above(&lines, idx)
            && !allow("pub-doc")
        {
            findings.push(Finding {
                path: rel.to_string(),
                line: number,
                rule: "pub-doc",
                message: "public item without a `///` doc comment in a documented \
                          module — document it or annotate `// lint: allow(pub-doc) — <reason>`"
                    .to_string(),
            });
        }

        if !scope.strict {
            continue;
        }

        if has_index_expression(&line.code) && !allow("index") {
            findings.push(Finding {
                path: rel.to_string(),
                line: number,
                rule: "index",
                message: "direct index expression in a strict module — use `.get()` \
                          or annotate `// lint: allow(index) — <reason>`"
                    .to_string(),
            });
        }

        if (line.code.contains(".send(") || line.code.contains(".try_send(")) && !allow("raw-send")
        {
            findings.push(Finding {
                path: rel.to_string(),
                line: number,
                rule: "raw-send",
                message: "raw channel send in a strict module — route it through the \
                          counted helpers or annotate `// lint: allow(raw-send) — <reason>`"
                    .to_string(),
            });
        }

        if line.code.contains(".lock()") {
            let start = idx.saturating_sub(3);
            let documented = lines[start..=idx].iter().any(|l| {
                l.code.to_lowercase().contains("poison")
                    || l.comment.to_lowercase().contains("poison")
            });
            if !documented {
                findings.push(Finding {
                    path: rel.to_string(),
                    line: number,
                    rule: "lock-policy",
                    message: "`.lock()` without a stated poisoning policy — mention \
                              \"poison\" on the line or within the 3 lines above"
                        .to_string(),
                });
            }
        }
    }
}

/// `// lint: allow(rule) — reason` on the same line or the line above; the
/// reason (any word characters after the closing paren) is mandatory.
fn allows(lines: &[SplitLine], idx: usize, rule: &str) -> bool {
    let mut candidates = vec![&lines[idx].comment];
    if idx > 0 && lines[idx - 1].code.trim().is_empty() {
        candidates.push(&lines[idx - 1].comment);
    }
    for comment in candidates {
        if let Some(pos) = comment.find("lint: allow(") {
            let rest = &comment[pos + "lint: allow(".len()..];
            if let Some(close) = rest.find(')') {
                let named = &rest[..close];
                let reason = &rest[close + 1..];
                if named == rule && reason.chars().any(|c| c.is_alphanumeric()) {
                    return true;
                }
            }
        }
    }
    false
}

/// A line declaring a public item that needs its own doc comment: `pub fn`,
/// `pub struct`, … Re-exports (`pub use`) and visibility-restricted items
/// (`pub(crate)`, `pub(super)`) are documented at their definition site and
/// are exempt, as are public struct fields (covered by the item's doc).
fn is_public_item(code: &str) -> bool {
    let trimmed = code.trim_start();
    [
        "pub fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub const ",
        "pub static ",
        "pub type ",
        "pub mod ",
    ]
    .iter()
    .any(|p| trimmed.starts_with(p))
}

/// Whether the nearest content above `idx` — walking over attribute lines and
/// plain `//` comments, which do not detach docs — is a `///` doc comment.
/// A fully blank line breaks the attachment, mirroring rustdoc.
fn has_doc_above(lines: &[SplitLine], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let line = &lines[i];
        let comment = line.comment.trim_start();
        if comment.starts_with("///") {
            return true;
        }
        let code = line.code.trim();
        if code.starts_with("#[") || (code.is_empty() && !comment.is_empty()) {
            continue;
        }
        return false;
    }
    false
}

/// A `[` that indexes a value: directly preceded by an identifier character,
/// `)` or `]`. Excludes attributes (`#[…]`), macro bangs (`vec![…]`) and type
/// positions (preceded by punctuation).
fn has_index_expression(code: &str) -> bool {
    let bytes = code.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'[' || i == 0 {
            continue;
        }
        let prev = bytes[i - 1];
        if prev.is_ascii_alphanumeric() || prev == b'_' || prev == b')' || prev == b']' {
            return true;
        }
    }
    false
}

/// One source line, split into compilable code and comment text (string and
/// char literal contents blanked out of `code`).
struct SplitLine {
    code: String,
    comment: String,
}

/// Strip comments and literal contents with a line-spanning state machine
/// (block comments, raw strings). Good enough for token scanning; not a
/// parser.
fn split_code_and_comments(source: &str) -> Vec<SplitLine> {
    #[derive(Clone, Copy, PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str,
        RawStr(u8),
    }
    // byte-oriented: every delimiter is ASCII and ASCII bytes never occur
    // inside a multi-byte UTF-8 sequence, so byte comparisons are safe even
    // when the scan position sits mid-character
    fn starts(bytes: &[u8], i: usize, pat: &[u8]) -> bool {
        bytes[i..].starts_with(pat)
    }
    let mut state = State::Code;
    let mut out = Vec::new();
    for raw in source.lines() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let bytes = raw.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            match state {
                State::Block(depth) => {
                    if starts(bytes, i, b"*/") {
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::Block(depth - 1)
                        };
                        i += 2;
                    } else if starts(bytes, i, b"/*") {
                        state = State::Block(depth + 1);
                        i += 2;
                    } else {
                        comment.push(bytes[i] as char);
                        i += 1;
                    }
                }
                State::Str => {
                    if bytes[i] == b'\\' {
                        i += 2; // skip the escaped byte, whatever it is
                    } else if bytes[i] == b'"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if bytes[i] == b'"'
                        && bytes[i + 1..].iter().take_while(|&&b| b == b'#').count()
                            >= hashes as usize
                    {
                        code.push('"');
                        state = State::Code;
                        i += 1 + hashes as usize;
                    } else {
                        i += 1;
                    }
                }
                State::Code => {
                    if starts(bytes, i, b"//") {
                        comment.push_str(&raw[i..]);
                        i = bytes.len();
                    } else if starts(bytes, i, b"/*") {
                        state = State::Block(1);
                        i += 2;
                    } else if bytes[i] == b'"' {
                        code.push('"');
                        state = State::Str;
                        i += 1;
                    } else if bytes[i] == b'r'
                        && matches!(bytes.get(i + 1), Some(b'"') | Some(b'#'))
                        && !prev_is_ident(&code)
                    {
                        let hashes = bytes[i + 1..].iter().take_while(|&&b| b == b'#').count();
                        if bytes.get(i + 1 + hashes) == Some(&b'"') {
                            code.push('"');
                            state = State::RawStr(hashes as u8);
                            i += 2 + hashes;
                        } else {
                            code.push('r');
                            i += 1;
                        }
                    } else if bytes[i] == b'\'' {
                        // char literal vs lifetime: a literal closes with a
                        // quote within a few bytes; a lifetime never does
                        if let Some(len) = char_literal_len(&raw[i..]) {
                            code.push_str("' '");
                            i += len;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    } else {
                        code.push(bytes[i] as char);
                        i += 1;
                    }
                }
            }
        }
        if state == State::Str {
            state = State::Code; // plain string literals don't span lines here; reset defensively
        }
        out.push(SplitLine { code, comment });
    }
    out
}

fn prev_is_ident(code: &str) -> bool {
    code.bytes()
        .next_back()
        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
}

/// Length of a char literal starting at `s` (which begins with `'`), or
/// `None` if this is a lifetime.
fn char_literal_len(s: &str) -> Option<usize> {
    let bytes = s.as_bytes();
    if bytes.len() >= 2 && bytes[1] == b'\\' {
        // escaped char: find the closing quote
        return s[2..].find('\'').map(|p| p + 3);
    }
    // unescaped: exactly one char between quotes (multi-byte chars included)
    let mut chars = s.char_indices().skip(1);
    chars.next()?;
    if let Some((close_idx, '\'')) = chars.next() {
        return Some(close_idx + 1);
    }
    None
}

/// Mark lines inside `#[cfg(test)]`-gated items (test modules, test-only
/// helpers) by tracking the brace region that follows the attribute.
fn test_region_mask(lines: &[SplitLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut pending = false; // saw the attribute, waiting for the opening brace
    let mut depth: i32 = 0; // brace depth inside the gated region
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if depth > 0 {
            mask[idx] = true;
            depth += brace_delta(code);
            continue;
        }
        if pending {
            mask[idx] = true;
            if code.contains('{') {
                pending = false;
                depth = brace_delta(code).max(0);
            } else if code.contains(';') {
                pending = false; // gated a braceless item (`use`, `const`)
            }
            continue;
        }
        if let Some(pos) = code.find("#[cfg(test)]") {
            pending = true;
            mask[idx] = true;
            let after = &code[pos + "#[cfg(test)]".len()..];
            if after.contains('{') {
                pending = false;
                depth = brace_delta(after).max(0);
            }
        }
    }
    mask
}

fn brace_delta(code: &str) -> i32 {
    code.bytes().fold(0i32, |acc, b| match b {
        b'{' => acc + 1,
        b'}' => acc - 1,
        _ => acc,
    })
}

/// Every crate root must forbid `unsafe` and document itself.
fn check_crate_hygiene(root: &Path, files: &[PathBuf], findings: &mut Vec<Finding>) {
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let is_root = rel.ends_with("/src/lib.rs")
            || (rel.ends_with("/src/main.rs") && !rel.contains("/src/bin/"));
        if !is_root {
            continue;
        }
        // a crate with both lib.rs and main.rs: lib.rs is the crate root
        if rel.ends_with("/src/main.rs") && file.with_file_name("lib.rs").exists() {
            continue;
        }
        let Ok(source) = std::fs::read_to_string(file) else {
            continue;
        };
        if !source.contains("#![forbid(unsafe_code)]") {
            findings.push(Finding {
                path: rel.clone(),
                line: 1,
                rule: "crate-hygiene",
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            });
        }
        if !source.lines().any(|l| l.starts_with("//!")) {
            findings.push(Finding {
                path: rel.clone(),
                line: 1,
                rule: "crate-hygiene",
                message: "crate root is missing crate-level `//!` documentation".to_string(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_str(rel: &str, source: &str) -> Vec<String> {
        let mut findings = Vec::new();
        lint_file(rel, source, &mut findings);
        findings.iter().map(|f| f.to_string()).collect()
    }

    const LIB: &str = "crates/datagen/src/generator.rs";
    const STRICT: &str = "crates/ttc-social-media/src/pipeline.rs";

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let hits = lint_str(LIB, "fn f() { x.unwrap(); }\n");
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains("[panic]"));
    }

    #[test]
    fn an_annotated_unwrap_with_a_reason_passes() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic) — checked above\n";
        assert!(lint_str(LIB, src).is_empty());
        let above = "// lint: allow(panic) — checked above\nfn g() { x.unwrap(); }\n";
        assert!(lint_str(LIB, above).is_empty());
    }

    #[test]
    fn an_annotation_without_a_reason_does_not_count() {
        let src = "fn f() { x.unwrap(); } // lint: allow(panic)\n";
        assert_eq!(lint_str(LIB, src).len(), 1);
    }

    #[test]
    fn test_modules_binaries_and_strings_are_exempt() {
        let test_mod = "#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n";
        assert!(lint_str(LIB, test_mod).is_empty());
        let binary = "fn main() { x.unwrap(); }\n";
        assert!(lint_str("crates/bench/src/bin/run.rs", binary).is_empty());
        let in_string = "fn f() -> &'static str { \".unwrap()\" }\n";
        assert!(lint_str(LIB, in_string).is_empty());
        let in_comment = "// .unwrap() is forbidden here\nfn f() {}\n";
        assert!(lint_str(LIB, in_comment).is_empty());
    }

    #[test]
    fn strict_modules_flag_indexing_sends_and_undocumented_locks() {
        assert!(lint_str(LIB, "fn f(v: &[u8]) -> u8 { v[0] }\n").is_empty());
        let hits = lint_str(STRICT, "fn f(v: &[u8]) -> u8 { v[0] }\n");
        assert!(hits.iter().any(|h| h.contains("[index]")), "{hits:?}");

        let hits = lint_str(STRICT, "fn f() { let _ = tx.send(1); }\n");
        assert!(hits.iter().any(|h| h.contains("[raw-send]")), "{hits:?}");

        let hits = lint_str(STRICT, "fn f() { let _ = m.lock(); }\n");
        assert!(hits.iter().any(|h| h.contains("[lock-policy]")), "{hits:?}");
        let documented = "// on poison: recover via into_inner\nfn f() { let _ = m.lock(); }\n";
        assert!(lint_str(STRICT, documented).is_empty());
    }

    const DOC: &str = "crates/ttc-social-media/src/serve.rs";

    #[test]
    fn undocumented_public_items_in_the_serving_module_are_flagged() {
        let hits = lint_str(DOC, "pub fn latest() {}\n");
        assert!(hits.iter().any(|h| h.contains("[pub-doc]")), "{hits:?}");
        // the same item outside a DOC_MODULES file passes
        assert!(lint_str(LIB, "pub fn latest() {}\n").is_empty());
    }

    #[test]
    fn documented_attributed_and_private_items_pass_pub_doc() {
        assert!(lint_str(DOC, "/// Returns the view.\npub fn latest() {}\n").is_empty());
        let attributed = "/// A sealed view.\n#[derive(Clone)]\npub struct QueryView;\n";
        assert!(lint_str(DOC, attributed).is_empty());
        assert!(lint_str(DOC, "fn private() {}\n").is_empty());
        assert!(lint_str(DOC, "pub(crate) fn internal() {}\n").is_empty());
    }

    #[test]
    fn a_blank_line_detaches_the_doc_comment() {
        let detached = "/// Orphaned doc.\n\npub fn latest() {}\n";
        let hits = lint_str(DOC, detached);
        assert!(hits.iter().any(|h| h.contains("[pub-doc]")), "{hits:?}");
        // a plain comment between doc and item does not detach it
        let bridged = "/// Returns the view.\n// implementation note\npub fn latest() {}\n";
        assert!(lint_str(DOC, bridged).is_empty());
    }

    #[test]
    fn attributes_and_macros_are_not_index_expressions() {
        assert!(!has_index_expression("#[derive(Debug)]"));
        assert!(!has_index_expression("let v = vec![1, 2];"));
        assert!(!has_index_expression("fn f(x: [u8; 4]) {}"));
        assert!(has_index_expression("let x = data[i];"));
        assert!(has_index_expression("let x = f()[0];"));
    }

    #[test]
    fn the_repo_lints_clean() {
        let findings = run_lint(&workspace_root()).expect("lint runs");
        assert!(
            findings.is_empty(),
            "workspace lint found:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
