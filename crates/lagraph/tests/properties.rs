//! Property-based tests: the GraphBLAS FastSV connected components must always agree
//! with the union–find oracle, and the incremental CC must agree with recomputation.

use graphblas::Matrix;
use lagraph::{
    bfs_levels, connected_components, sum_of_squared_component_sizes,
    IncrementalConnectedComponents, UnionFind,
};
use proptest::prelude::*;

const N: usize = 24;

fn edges_strategy() -> impl Strategy<Value = Vec<(usize, usize)>> {
    prop::collection::vec((0..N, 0..N), 0..60)
}

fn symmetric_matrix(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
    let mut sym = Vec::with_capacity(edges.len() * 2);
    for &(a, b) in edges {
        if a == b {
            continue; // the Friends relation has no self loops
        }
        sym.push((a, b));
        sym.push((b, a));
    }
    Matrix::from_edges(n, n, &sym).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fastsv_agrees_with_unionfind(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let labels = connected_components(&g).unwrap();

        let mut uf = UnionFind::new(N);
        for &(a, b) in &edges {
            if a != b {
                uf.union(a, b);
            }
        }
        let uf_labels = uf.labels();
        for (v, &label) in uf_labels.iter().enumerate().take(N) {
            prop_assert_eq!(labels.get(v), Some(label));
        }
        prop_assert_eq!(
            sum_of_squared_component_sizes(&labels),
            uf.sum_of_squared_component_sizes()
        );
    }

    #[test]
    fn fastsv_labels_are_component_minima(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let labels = connected_components(&g).unwrap();
        for v in 0..N {
            let label = labels.get(v).unwrap();
            // the label is the id of some vertex in the same component, and no vertex
            // in the component has a smaller id than its label
            prop_assert!(label as usize <= v);
            prop_assert_eq!(labels.get(label as usize), Some(label));
        }
    }

    #[test]
    fn incremental_cc_matches_batch_unionfind(edges in edges_strategy()) {
        let mut inc = IncrementalConnectedComponents::new();
        let mut uf = UnionFind::new(N);
        for v in 0..N {
            inc.add_vertex(v as u64);
        }
        for &(a, b) in &edges {
            if a == b {
                continue;
            }
            inc.add_edge(a as u64, b as u64);
            uf.union(a, b);
        }
        prop_assert_eq!(inc.component_count(), uf.component_count());
        prop_assert_eq!(
            inc.sum_of_squared_component_sizes(),
            uf.sum_of_squared_component_sizes()
        );
    }

    #[test]
    fn bfs_reaches_exactly_the_source_component(
        edges in edges_strategy(),
        source in 0..N,
    ) {
        let g = symmetric_matrix(N, &edges);
        let labels = connected_components(&g).unwrap();
        let levels = bfs_levels(&g, source).unwrap();
        for v in 0..N {
            let same_component = labels.get(v) == labels.get(source);
            prop_assert_eq!(levels.get(v).is_some(), same_component);
        }
    }
}

// ---------------------------------------------------------------------------
// Properties of the extended algorithm set (SSSP, k-core, clustering coefficients,
// label propagation).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn sssp_hop_distances_match_bfs_levels(
        edges in edges_strategy(),
        source in 0..N,
    ) {
        let g = symmetric_matrix(N, &edges);
        let hops = lagraph::sssp_hops(&g, source).unwrap();
        let levels = bfs_levels(&g, source).unwrap();
        prop_assert_eq!(hops, levels);
    }

    #[test]
    fn weighted_sssp_is_bounded_by_hop_count_times_max_weight(
        edges in edges_strategy(),
        source in 0..N,
    ) {
        // every edge gets weight 3, so dist(v) = 3 * hops(v)
        let mut weighted_edges: Vec<(usize, usize, u64)> = Vec::new();
        for &(a, b) in &edges {
            if a != b {
                weighted_edges.push((a, b, 3));
                weighted_edges.push((b, a, 3));
            }
        }
        let g = Matrix::from_tuples(N, N, &weighted_edges, graphblas::ops_traits::First::new()).unwrap();
        let pattern = symmetric_matrix(N, &edges);
        let dist = lagraph::sssp(&g, source).unwrap();
        let hops = lagraph::sssp_hops(&pattern, source).unwrap();
        prop_assert_eq!(dist.nvals(), hops.nvals());
        for (v, d) in dist.iter() {
            prop_assert_eq!(d, hops.get(v).unwrap() * 3);
        }
    }

    #[test]
    fn core_numbers_never_exceed_degree(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let cores = lagraph::kcore_decomposition(&g).unwrap();
        let degrees = lagraph::degree_vector(&g).unwrap();
        for v in 0..N {
            prop_assert!(cores.get(v).unwrap_or(0) <= degrees.get(v).unwrap_or(0));
        }
    }

    #[test]
    fn degeneracy_is_the_maximum_core_number(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let cores = lagraph::kcore_decomposition(&g).unwrap();
        let max_core = cores.values().iter().copied().max().unwrap_or(0);
        prop_assert_eq!(lagraph::degeneracy(&g).unwrap(), max_core);
    }

    #[test]
    fn local_clustering_coefficients_are_in_unit_interval(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let local = lagraph::local_clustering_coefficient(&g).unwrap();
        for (_, c) in local.iter() {
            prop_assert!((0.0..=1.0).contains(&c));
        }
        let global = lagraph::global_clustering_coefficient(&g).unwrap();
        prop_assert!((0.0..=1.0).contains(&global));
    }

    #[test]
    fn per_vertex_triangles_sum_to_three_times_total(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let per_vertex = lagraph::triangles_per_vertex(&g).unwrap();
        let total: u64 = per_vertex.values().iter().sum();
        prop_assert_eq!(total, 3 * lagraph::triangle_count(&g).unwrap());
    }

    #[test]
    fn label_propagation_communities_refine_connected_components(edges in edges_strategy()) {
        let g = symmetric_matrix(N, &edges);
        let communities =
            lagraph::label_propagation(&g, lagraph::LabelPropagationOptions::default()).unwrap();
        let components = connected_components(&g).unwrap();
        // two vertices in the same community are necessarily in the same component
        for a in 0..N {
            for b in 0..N {
                if communities.get(a) == communities.get(b) && components.get(a) != components.get(b) {
                    prop_assert!(false, "community spans two components: {} and {}", a, b);
                }
            }
        }
        // every vertex gets a label
        prop_assert_eq!(communities.nvals(), N);
    }

    #[test]
    fn kcore_subgraph_vertices_all_have_core_at_least_k(
        edges in edges_strategy(),
        k in 0u64..4,
    ) {
        let g = symmetric_matrix(N, &edges);
        let cores = lagraph::kcore_decomposition(&g).unwrap();
        let (vertices, sub) = lagraph::kcore_subgraph(&g, k).unwrap();
        prop_assert_eq!(sub.nrows(), vertices.len());
        for &v in &vertices {
            prop_assert!(cores.get(v).unwrap_or(0) >= k);
        }
        for v in 0..N {
            if cores.get(v).unwrap_or(0) >= k {
                prop_assert!(vertices.contains(&v));
            }
        }
    }
}
