//! PageRank — part of the standard LAGraph algorithm collection.
//!
//! A straightforward power-iteration PageRank over the GraphBLAS primitives: the rank
//! vector is repeatedly multiplied with the column-normalised adjacency matrix
//! (expressed as `vxm` over the `plus_times` semiring on `f64`), with uniform
//! teleportation and dangling-node correction. Not required by the case study, but a
//! standard member of the algorithm layer and a good stress test for the `f64`
//! semiring path of the substrate.

use graphblas::ops::{apply_matrix, reduce_matrix_rows, vxm};
use graphblas::ops_traits::{One, UnaryFn};
use graphblas::semiring::stock;
use graphblas::{Error, Matrix, Result, Scalar, Vector};

/// Options for [`pagerank`].
#[derive(Copy, Clone, Debug)]
pub struct PageRankOptions {
    /// Damping factor (probability of following an out-edge). The classic value is 0.85.
    pub damping: f64,
    /// Maximum number of power iterations.
    pub max_iterations: usize,
    /// Convergence threshold on the L1 norm of the rank change.
    pub tolerance: f64,
}

impl Default for PageRankOptions {
    fn default() -> Self {
        PageRankOptions {
            damping: 0.85,
            max_iterations: 100,
            tolerance: 1e-9,
        }
    }
}

/// Compute PageRank over a directed adjacency matrix (`A[i][j]` = edge `i → j`).
/// Returns a dense vector of ranks summing to 1 (for a non-empty graph).
pub fn pagerank<T: Scalar>(adjacency: &Matrix<T>, options: PageRankOptions) -> Result<Vector<f64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "pagerank",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    if n == 0 {
        return Ok(Vector::new(0));
    }

    // Pattern as f64 and out-degrees.
    let pattern: Matrix<f64> = apply_matrix(adjacency, One::new());
    let out_degree = reduce_matrix_rows(&pattern, graphblas::monoid::stock::plus::<f64>());

    // Row-normalise: P[i][j] = 1 / outdeg(i) for every stored edge. (Row scaling via a
    // diagonal matrix product D⁻¹ · A.)
    let inv_degree = graphblas::ops::apply_vector(&out_degree, UnaryFn::new(|d: f64| 1.0 / d));
    let d_inv = Matrix::diagonal(&inv_degree);
    let transition = graphblas::ops::mxm(&d_inv, &pattern, stock::plus_times::<f64>())?;

    let teleport = (1.0 - options.damping) / n as f64;
    let mut rank: Vector<f64> = Vector::dense(n, 1.0 / n as f64);

    for _ in 0..options.max_iterations {
        // Dangling mass: rank held by vertices with no out-edges is redistributed.
        let dangling_mass: f64 = rank
            .iter()
            .filter(|&(i, _)| !out_degree.contains(i))
            .map(|(_, r)| r)
            .sum();

        let propagated = vxm(&rank, &transition, stock::plus_times::<f64>())?;
        let base = teleport + options.damping * dangling_mass / n as f64;
        let next = Vector::dense_from_fn(n, |i| {
            base + options.damping * propagated.get(i).unwrap_or(0.0)
        });

        let delta: f64 = (0..n)
            .map(|i| (next.get(i).unwrap_or(0.0) - rank.get(i).unwrap_or(0.0)).abs())
            .sum();
        rank = next;
        if delta < options.tolerance {
            break;
        }
    }
    Ok(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        Matrix::from_edges(n, n, edges).unwrap()
    }

    fn total(rank: &Vector<f64>) -> f64 {
        rank.values().iter().sum()
    }

    #[test]
    fn ranks_sum_to_one() {
        let g = directed(4, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 0)]);
        let rank = pagerank(&g, PageRankOptions::default()).unwrap();
        assert!((total(&rank) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_cycle_gives_uniform_ranks() {
        let g = directed(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]);
        let rank = pagerank(&g, PageRankOptions::default()).unwrap();
        for i in 0..4 {
            assert!((rank.get(i).unwrap() - 0.25).abs() < 1e-6);
        }
    }

    #[test]
    fn sink_heavy_vertex_ranks_highest() {
        // everything points at vertex 0
        let g = directed(5, &[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let rank = pagerank(&g, PageRankOptions::default()).unwrap();
        let r0 = rank.get(0).unwrap();
        for i in 1..5 {
            assert!(r0 > rank.get(i).unwrap());
        }
        assert!((total(&rank) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dangling_nodes_do_not_lose_mass() {
        let g = directed(3, &[(0, 1), (1, 2)]); // vertex 2 is dangling
        let rank = pagerank(&g, PageRankOptions::default()).unwrap();
        assert!((total(&rank) - 1.0).abs() < 1e-6);
        assert!(rank.get(2).unwrap() > rank.get(0).unwrap());
    }

    #[test]
    fn empty_and_invalid_inputs() {
        let empty: Matrix<bool> = Matrix::new(0, 0);
        assert_eq!(
            pagerank(&empty, PageRankOptions::default()).unwrap().size(),
            0
        );
        let rect: Matrix<bool> = Matrix::new(2, 3);
        assert!(pagerank(&rect, PageRankOptions::default()).is_err());
    }

    #[test]
    fn converges_within_iteration_budget() {
        let g = directed(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (2, 0)]);
        let quick = pagerank(
            &g,
            PageRankOptions {
                max_iterations: 200,
                tolerance: 1e-12,
                ..PageRankOptions::default()
            },
        )
        .unwrap();
        assert!((total(&quick) - 1.0).abs() < 1e-6);
    }
}
