//! Local and global clustering coefficients.
//!
//! The local clustering coefficient of a vertex is the fraction of its neighbour pairs
//! that are themselves connected; the global (transitivity) coefficient is
//! `3 · #triangles / #wedges`. Per-vertex triangle counts are obtained with the masked
//! SpGEMM formulation (`C⟨A⟩ = A ⊕.⊗ A` over `plus_pair`, then a row reduction), the
//! same linear-algebra shape LAGraph uses; wedge counts come from the degree vector.

use graphblas::monoid;
use graphblas::ops::{
    mxm_masked, mxm_masked_par, reduce_matrix_rows, reduce_vector_scalar, select_matrix,
};
use graphblas::ops_traits::{OffDiagonal, One};
use graphblas::semiring::stock;
use graphblas::{Error, Matrix, MatrixMask, Result, Scalar, Vector};

fn triangles_per_vertex_impl<T: Scalar>(
    adjacency: &Matrix<T>,
    parallel: bool,
) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "triangles_per_vertex",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let pattern: Matrix<u64> = graphblas::ops::apply_matrix(adjacency, One::new());
    let a = select_matrix(&pattern, OffDiagonal);
    // C⟨A⟩ = A ⊕.⊗ A over plus_pair: C[i][j] = number of common neighbours of i and j,
    // restricted to existing edges (the mask is pushed down into the kernel).
    // Row-summing counts each triangle through i twice (once per incident edge), so
    // divide by 2.
    let mask = MatrixMask::structural(&a);
    let semiring = stock::plus_pair::<u64, u64, u64>();
    let c = if parallel {
        mxm_masked_par(&mask, &a, &a, semiring)?
    } else {
        mxm_masked(&mask, &a, &a, semiring)?
    };
    let paths = reduce_matrix_rows(&c, monoid::stock::plus::<u64>());
    Ok(graphblas::ops::apply_vector(
        &paths,
        graphblas::ops_traits::UnaryFn::new(|v: u64| v / 2),
    ))
}

/// Per-vertex number of triangles through each vertex of an undirected graph
/// (symmetric adjacency matrix, values ignored, self loops ignored).
pub fn triangles_per_vertex<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<u64>> {
    triangles_per_vertex_impl(adjacency, false)
}

/// Parallel (rayon) variant of [`triangles_per_vertex`].
pub fn triangles_per_vertex_par<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<u64>> {
    triangles_per_vertex_impl(adjacency, true)
}

/// Local clustering coefficient of every vertex: `2·tri(v) / (deg(v)·(deg(v)−1))`,
/// defined as 0 for vertices of degree < 2. Returns a dense vector.
pub fn local_clustering_coefficient<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<f64>> {
    let n = adjacency.nrows();
    let tri = triangles_per_vertex(adjacency)?;
    let degrees = degree_vector(adjacency)?;
    Ok(Vector::dense_from_fn(n, |v| {
        let d = degrees.get(v).unwrap_or(0);
        if d < 2 {
            0.0
        } else {
            let t = tri.get(v).unwrap_or(0) as f64;
            2.0 * t / (d as f64 * (d as f64 - 1.0))
        }
    }))
}

/// Global clustering coefficient (transitivity): `3·#triangles / #wedges`, or 0 for a
/// graph with no wedge.
pub fn global_clustering_coefficient<T: Scalar>(adjacency: &Matrix<T>) -> Result<f64> {
    let tri = triangles_per_vertex(adjacency)?;
    // Each triangle is counted once per corner vertex, so the sum is 3·#triangles
    // already — exactly the numerator.
    let closed_wedges = reduce_vector_scalar(&tri, monoid::stock::plus::<u64>()) as f64;
    let degrees = degree_vector(adjacency)?;
    let wedges: f64 = degrees
        .values()
        .iter()
        .map(|&d| {
            let d = d as f64;
            d * (d - 1.0) / 2.0
        })
        .sum();
    if wedges == 0.0 {
        Ok(0.0)
    } else {
        Ok(closed_wedges / wedges)
    }
}

/// Degree of every vertex (self loops excluded). Sparse: isolated vertices are absent.
pub fn degree_vector<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "degree_vector",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let pattern: Matrix<u64> = graphblas::ops::apply_matrix(adjacency, One::new());
    let no_loops = select_matrix(&pattern, OffDiagonal);
    Ok(reduce_matrix_rows(&no_loops, monoid::stock::plus::<u64>()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym = Vec::new();
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    #[test]
    fn triangle_vertex_counts() {
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let tri = triangles_per_vertex(&g).unwrap();
        assert_eq!(tri.get(0), Some(1));
        assert_eq!(tri.get(1), Some(1));
        assert_eq!(tri.get(2), Some(1));
        assert_eq!(tri.get(3).unwrap_or(0), 0);
    }

    #[test]
    fn parallel_per_vertex_matches_serial() {
        let g = undirected(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        assert_eq!(
            triangles_per_vertex(&g).unwrap(),
            triangles_per_vertex_par(&g).unwrap()
        );
    }

    #[test]
    fn per_vertex_counts_sum_to_three_times_total() {
        let g = undirected(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5), (2, 3)]);
        let tri = triangles_per_vertex(&g).unwrap();
        let total: u64 = tri.values().iter().sum();
        let count = crate::triangle_count::triangle_count(&g).unwrap();
        assert_eq!(total, 3 * count);
    }

    #[test]
    fn clique_has_coefficient_one() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = undirected(5, &edges);
        let local = local_clustering_coefficient(&g).unwrap();
        for v in 0..5 {
            assert!((local.get(v).unwrap() - 1.0).abs() < 1e-12);
        }
        assert!((global_clustering_coefficient(&g).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_has_coefficient_zero() {
        let g = undirected(5, &[(0, 1), (0, 2), (0, 3), (0, 4)]);
        let local = local_clustering_coefficient(&g).unwrap();
        assert!(local.to_dense(0.0).iter().all(|&c| c == 0.0));
        assert_eq!(global_clustering_coefficient(&g).unwrap(), 0.0);
    }

    #[test]
    fn triangle_with_pendant_coefficients() {
        // 0-1-2 triangle, 3 pendant on 2
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let local = local_clustering_coefficient(&g).unwrap();
        assert!((local.get(0).unwrap() - 1.0).abs() < 1e-12);
        assert!((local.get(1).unwrap() - 1.0).abs() < 1e-12);
        // vertex 2 has degree 3: 1 closed pair out of 3
        assert!((local.get(2).unwrap() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(local.get(3), Some(0.0));
        // global: 3 triangles-corners / (1 + 1 + 3 + 0) wedges
        let expected = 3.0 / 5.0;
        assert!((global_clustering_coefficient(&g).unwrap() - expected).abs() < 1e-12);
    }

    #[test]
    fn degree_vector_excludes_self_loops() {
        let g = undirected(3, &[(0, 1), (1, 2), (1, 1)]);
        let deg = degree_vector(&g).unwrap();
        assert_eq!(deg.get(0), Some(1));
        assert_eq!(deg.get(1), Some(2));
        assert_eq!(deg.get(2), Some(1));
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let empty: Matrix<bool> = Matrix::new(0, 0);
        assert_eq!(global_clustering_coefficient(&empty).unwrap(), 0.0);
        let edgeless = undirected(4, &[]);
        let local = local_clustering_coefficient(&edgeless).unwrap();
        assert!(local.to_dense(0.0).iter().all(|&c| c == 0.0));
    }

    #[test]
    fn rejects_non_square() {
        let g: Matrix<bool> = Matrix::new(2, 3);
        assert!(triangles_per_vertex(&g).is_err());
        assert!(local_clustering_coefficient(&g).is_err());
        assert!(degree_vector(&g).is_err());
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let n = 16;
        let mut edges = Vec::new();
        let mut state: u64 = 31;
        for _ in 0..50 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let g = undirected(n, &edges);
        let adj: std::collections::HashSet<(usize, usize)> = edges.iter().copied().collect();
        let has = |a: usize, b: usize| adj.contains(&(a.min(b), a.max(b)));

        let tri = triangles_per_vertex(&g).unwrap();
        for v in 0..n {
            let neighbours: Vec<usize> = (0..n).filter(|&u| u != v && has(u, v)).collect();
            let mut expected = 0u64;
            for (i, &a) in neighbours.iter().enumerate() {
                for &b in &neighbours[i + 1..] {
                    if has(a, b) {
                        expected += 1;
                    }
                }
            }
            assert_eq!(tri.get(v).unwrap_or(0), expected, "vertex {v}");
        }
    }
}
