//! FastSV-style connected components in the language of linear algebra.
//!
//! The paper's Q2 runs the FastSV algorithm (Zhang, Azad & Hu, 2020) from LAGraph on
//! the friendship subgraph induced by the users who like a comment. FastSV maintains a
//! parent vector `f` and repeatedly
//!
//! 1. *hooks* every vertex onto the minimum grandparent reachable through an incident
//!    edge (computed as a `min.second` matrix–vector product), and
//! 2. *shortcuts* the parent pointers (`f ← f[f]`),
//!
//! until a fixed point is reached. The resulting `f[u]` is the smallest vertex id in
//! the component of `u`, which serves as the component label.

use graphblas::ops::{ewise_add_vector, mxv};
use graphblas::ops_traits::Min;
use graphblas::semiring::stock;
use graphblas::{Error, Index, Matrix, Result, Scalar, Vector};

/// Compute connected components of an undirected graph given by a symmetric adjacency
/// matrix. Returns a dense vector of length `n` where entry `u` is the component label
/// of vertex `u` (the smallest vertex id in its component).
///
/// The values stored in the matrix are ignored; only the structure matters. The matrix
/// is expected to be symmetric (as the paper's `Friends` matrix is); if it is not, the
/// result corresponds to the undirected closure only if both directions are present.
pub fn connected_components<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "connected_components",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    // Pattern matrix with u64 labels so the min.second semiring applies directly.
    // (The adjacency values are irrelevant; reuse the structure.)
    let pattern: Matrix<u64> =
        graphblas::ops::apply_matrix(adjacency, graphblas::ops_traits::One::new());

    // f[u] = u initially; f is kept fully shortcut (f[f[u]] = f[u]) at the top of
    // every iteration, so hooking on the neighbours' labels is hooking on their
    // grandparents, exactly as in FastSV.
    let mut f: Vector<u64> = Vector::dense_from_fn(n, |i| i as u64);

    loop {
        // Minimum neighbour (grand)parent: mngp[u] = min_{v ∈ N(u)} f[v].
        let mngp = mxv(&pattern, &f, stock::min_second::<u64>())?;

        // Hook: f_new[u] = min(f[u], mngp[u]). Labels never increase and never leave
        // the component, because mxv only propagates values along edges.
        let mut f_new = ewise_add_vector(&f, &mngp, Min::new())?;

        // Shortcut (pointer jumping) to a fully compressed parent vector:
        // f_new[u] ← f_new[f_new[u]] until stable. Terminates because labels are
        // bounded below and monotonically non-increasing (f[u] ≤ u is an invariant).
        loop {
            let jumped = index_vector(&f_new, &f_new);
            if jumped == f_new {
                break;
            }
            f_new = jumped;
        }

        if f_new == f {
            return Ok(f);
        }
        f = f_new;
    }
}

/// Dense "vector indexed by vector" helper: `out[u] = f[g[u]]`.
///
/// Both vectors must be dense (an entry for every position), which holds for the
/// parent vectors used by FastSV.
fn index_vector(f: &Vector<u64>, g: &Vector<u64>) -> Vector<u64> {
    let f_dense = f.to_dense(0);
    Vector::dense_from_fn(g.size(), |u| {
        let parent = g.get(u).unwrap_or(u as u64) as Index;
        f_dense[parent]
    })
}

/// Compute the size of each component from a component-label vector. Returns
/// `(label, size)` pairs sorted by label.
pub fn component_sizes(labels: &Vector<u64>) -> Vec<(u64, u64)> {
    let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
    for (_, label) in labels.iter() {
        *counts.entry(label).or_insert(0) += 1;
    }
    let mut sizes: Vec<(u64, u64)> = counts.into_iter().collect();
    sizes.sort_unstable();
    sizes
}

/// The Q2 score of a comment: the sum of squared component sizes, `Σᵢ csᵢ²`.
pub fn sum_of_squared_component_sizes(labels: &Vector<u64>) -> u64 {
    component_sizes(labels)
        .into_iter()
        .map(|(_, size)| size * size)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas::ops_traits::First;

    /// Build a symmetric adjacency matrix from an undirected edge list.
    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym: Vec<(usize, usize)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    #[test]
    fn single_component_path_graph() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let labels = connected_components(&g).unwrap();
        assert_eq!(labels.to_dense(99), vec![0, 0, 0, 0, 0]);
        assert_eq!(sum_of_squared_component_sizes(&labels), 25);
    }

    #[test]
    fn isolated_vertices_are_singletons() {
        let g = undirected(4, &[]);
        let labels = connected_components(&g).unwrap();
        assert_eq!(labels.to_dense(99), vec![0, 1, 2, 3]);
        assert_eq!(
            component_sizes(&labels),
            vec![(0, 1), (1, 1), (2, 1), (3, 1)]
        );
        assert_eq!(sum_of_squared_component_sizes(&labels), 4);
    }

    #[test]
    fn two_components() {
        // the paper's running example for comment c2 before the update:
        // users {u1} and {u3, u4} like c2, u3-u4 are friends -> components of size 1 and 2
        let g = undirected(3, &[(1, 2)]);
        let labels = connected_components(&g).unwrap();
        assert_eq!(labels.get(0), Some(0));
        assert_eq!(labels.get(1), labels.get(2));
        assert_ne!(labels.get(0), labels.get(1));
        assert_eq!(sum_of_squared_component_sizes(&labels), 1 + 4);
    }

    #[test]
    fn merged_component_after_extra_edge() {
        // after the update u1-u4 become friends and u2 likes c2: one component of 4
        let g = undirected(4, &[(2, 3), (0, 3)]);
        let labels = connected_components(&g).unwrap();
        // {0, 2, 3} together, {1} alone
        assert_eq!(labels.get(0), labels.get(2));
        assert_eq!(labels.get(0), labels.get(3));
        assert_ne!(labels.get(0), labels.get(1));
        assert_eq!(sum_of_squared_component_sizes(&labels), 9 + 1);
    }

    #[test]
    fn star_graph_converges_quickly() {
        let edges: Vec<(usize, usize)> = (1..50).map(|i| (0, i)).collect();
        let g = undirected(50, &edges);
        let labels = connected_components(&g).unwrap();
        assert!(labels.to_dense(99).iter().all(|&l| l == 0));
    }

    #[test]
    fn long_path_exercises_pointer_jumping() {
        let n = 200;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let g = undirected(n, &edges);
        let labels = connected_components(&g).unwrap();
        assert!(labels.to_dense(99).iter().all(|&l| l == 0));
    }

    #[test]
    fn labels_match_unionfind_on_random_graph() {
        use crate::cc_unionfind::UnionFind;
        // deterministic pseudo-random edges
        let n = 64;
        let mut edges = Vec::new();
        let mut state: u64 = 0x12345678;
        for _ in 0..80 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            if a != b {
                edges.push((a, b));
            }
        }
        let g = undirected(n, &edges);
        let labels = connected_components(&g).unwrap();

        let mut uf = UnionFind::new(n);
        for &(a, b) in &edges {
            uf.union(a, b);
        }
        // same partition: two nodes share a FastSV label iff they share a UF root
        for a in 0..n {
            for b in 0..n {
                let same_fastsv = labels.get(a) == labels.get(b);
                let same_uf = uf.find(a) == uf.find(b);
                assert_eq!(same_fastsv, same_uf, "nodes {a} and {b} disagree");
            }
        }
    }

    #[test]
    fn rejects_non_square_matrix() {
        let m: Matrix<bool> = Matrix::new(3, 4);
        assert!(connected_components(&m).is_err());
    }

    #[test]
    fn empty_graph_zero_vertices() {
        let m: Matrix<bool> = Matrix::new(0, 0);
        let labels = connected_components(&m).unwrap();
        assert_eq!(labels.size(), 0);
        assert_eq!(sum_of_squared_component_sizes(&labels), 0);
    }

    #[test]
    fn component_sizes_sorted_by_label() {
        let v = Vector::from_tuples(
            5,
            &[(0, 3u64), (1, 3), (2, 0), (3, 3), (4, 0)],
            First::new(),
        )
        .unwrap();
        assert_eq!(component_sizes(&v), vec![(0, 2), (3, 3)]);
        assert_eq!(sum_of_squared_component_sizes(&v), 4 + 9);
    }
}
