//! Single-source shortest paths over the tropical (`min.+`) semiring.
//!
//! This is the Bellman–Ford-style relaxation used by LAGraph's `SSSP` variants: the
//! distance vector is repeatedly relaxed with a `min.+` vector–matrix product until it
//! stops changing (or `n − 1` relaxations have been performed, which bounds the number
//! of edges on any shortest path). The case study does not need shortest paths, but the
//! algorithm is a canonical exercise of a non-arithmetic semiring and is used by the
//! graph-analytics example.

use graphblas::ops::{ewise_add_vector, vxm};
use graphblas::ops_traits::Min;
use graphblas::scalar::Ring;
use graphblas::semiring::stock;
use graphblas::{Error, Index, Matrix, Result, Vector};

/// Single-source shortest path distances from `source` over a non-negatively weighted,
/// directed adjacency matrix (`A[u][v]` = weight of the edge `u → v`).
///
/// Returns a sparse vector holding the distance of every reachable vertex (the source
/// has distance `W::ZERO`); unreachable vertices have no entry.
pub fn sssp<W: Ring>(adjacency: &Matrix<W>, source: Index) -> Result<Vector<W>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "sssp",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    if source >= n {
        return Err(Error::IndexOutOfBounds {
            index: source,
            bound: n,
            context: "sssp",
        });
    }

    let mut dist: Vector<W> = Vector::new(n);
    dist.set(source, W::ZERO)?;

    // Each round extends the shortest-path tree by at least one edge; n - 1 rounds
    // suffice for any simple path.
    for _ in 0..n.saturating_sub(1) {
        // candidate[v] = min_u (dist[u] + A[u][v])
        let candidate = vxm(&dist, adjacency, stock::min_plus::<W>())?;
        // relaxed = min(dist, candidate) over the union of their structures
        let relaxed = ewise_add_vector(&dist, &candidate, Min::new())?;
        if relaxed == dist {
            return Ok(dist);
        }
        dist = relaxed;
    }
    Ok(dist)
}

/// Shortest-path distances in *hops* (every edge has weight 1), for any adjacency
/// matrix regardless of its stored values. Equivalent to BFS levels but computed with
/// the tropical semiring; used by tests to cross-validate [`crate::bfs::bfs_levels`].
pub fn sssp_hops<T: graphblas::Scalar>(
    adjacency: &Matrix<T>,
    source: Index,
) -> Result<Vector<u64>> {
    let unit: Matrix<u64> =
        graphblas::ops::apply_matrix(adjacency, graphblas::ops_traits::One::new());
    sssp(&unit, source)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphblas::ops_traits::Plus;

    fn weighted(n: usize, edges: &[(usize, usize, u64)]) -> Matrix<u64> {
        Matrix::from_tuples(n, n, edges, Plus::new()).unwrap()
    }

    #[test]
    fn weighted_path_accumulates_weights() {
        let g = weighted(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 2)]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.get(0), Some(0));
        assert_eq!(d.get(1), Some(5));
        assert_eq!(d.get(2), Some(8));
        assert_eq!(d.get(3), Some(10));
    }

    #[test]
    fn picks_the_cheaper_of_two_routes() {
        // 0 -> 2 directly costs 10, via 1 costs 3 + 4 = 7
        let g = weighted(3, &[(0, 2, 10), (0, 1, 3), (1, 2, 4)]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.get(2), Some(7));
    }

    #[test]
    fn unreachable_vertices_have_no_distance() {
        let g = weighted(4, &[(0, 1, 1)]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.get(2), None);
        assert_eq!(d.get(3), None);
        assert_eq!(d.nvals(), 2);
    }

    #[test]
    fn respects_edge_direction() {
        let g = weighted(3, &[(1, 0, 1), (1, 2, 1)]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.nvals(), 1);
        assert_eq!(d.get(0), Some(0));
    }

    #[test]
    fn source_distance_is_zero_even_with_self_loop() {
        let g = weighted(2, &[(0, 0, 7), (0, 1, 2)]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.get(0), Some(0));
        assert_eq!(d.get(1), Some(2));
    }

    #[test]
    fn hop_distances_match_bfs_levels() {
        let mut sym = Vec::new();
        for &(a, b) in &[(0usize, 1usize), (1, 2), (2, 3), (1, 4), (4, 5)] {
            sym.push((a, b));
            sym.push((b, a));
        }
        let g: Matrix<bool> = Matrix::from_edges(7, 7, &sym).unwrap();
        let hops = sssp_hops(&g, 0).unwrap();
        let levels = crate::bfs::bfs_levels(&g, 0).unwrap();
        assert_eq!(hops, levels);
    }

    #[test]
    fn matches_floyd_warshall_on_random_graph() {
        let n = 12;
        let mut edges = Vec::new();
        let mut state: u64 = 7;
        for _ in 0..40 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            let w = 1 + (state >> 17) % 9;
            if a != b {
                edges.push((a, b, w));
            }
        }
        edges.sort_unstable();
        edges.dedup_by_key(|&mut (a, b, _)| (a, b));
        let g = weighted(n, &edges);

        // reference: Floyd–Warshall
        const INF: u64 = u64::MAX / 4;
        let mut dist = vec![vec![INF; n]; n];
        for (v, row) in dist.iter_mut().enumerate() {
            row[v] = 0;
        }
        for &(a, b, w) in &edges {
            dist[a][b] = dist[a][b].min(w);
        }
        for k in 0..n {
            for i in 0..n {
                for j in 0..n {
                    dist[i][j] = dist[i][j].min(dist[i][k] + dist[k][j]);
                }
            }
        }

        for (src, row) in dist.iter().enumerate() {
            let d = sssp(&g, src).unwrap();
            for (v, &reference) in row.iter().enumerate() {
                let expected = if reference >= INF {
                    None
                } else {
                    Some(reference)
                };
                assert_eq!(d.get(v), expected, "src {src} -> {v}");
            }
        }
    }

    #[test]
    fn error_cases() {
        let rect: Matrix<u64> = Matrix::new(2, 3);
        assert!(sssp(&rect, 0).is_err());
        let g = weighted(2, &[]);
        assert!(sssp(&g, 9).is_err());
    }

    #[test]
    fn single_vertex_graph() {
        let g = weighted(1, &[]);
        let d = sssp(&g, 0).unwrap();
        assert_eq!(d.get(0), Some(0));
        assert_eq!(d.nvals(), 1);
    }
}
