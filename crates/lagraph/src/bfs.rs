//! Level-synchronous breadth-first search expressed with GraphBLAS primitives.
//!
//! BFS is the "hello world" of GraphBLAS: the frontier is a sparse vector, and one
//! level expansion is a masked vector–matrix product over the boolean semiring. The
//! case study itself does not need BFS, but it is part of the standard LAGraph
//! algorithm collection, and the repository's community-detection example uses it.

use graphblas::ops::vxm_masked;
use graphblas::semiring::stock;
use graphblas::{Error, Index, Matrix, Result, Scalar, Vector, VectorMask};

/// Breadth-first search from `source` over the (directed) adjacency matrix.
///
/// Returns a sparse vector with the BFS level (0 for the source, 1 for its direct
/// neighbours, ...) of every reachable vertex; unreachable vertices have no entry.
pub fn bfs_levels<T: Scalar>(adjacency: &Matrix<T>, source: Index) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "bfs_levels",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    if source >= n {
        return Err(Error::IndexOutOfBounds {
            index: source,
            bound: n,
            context: "bfs_levels",
        });
    }

    // Work on the boolean pattern of the adjacency matrix.
    let pattern: Matrix<u8> =
        graphblas::ops::apply_matrix(adjacency, graphblas::ops_traits::One::new());

    let mut levels: Vector<u64> = Vector::new(n);
    let mut frontier: Vector<u8> = Vector::new(n);
    frontier.set(source, 1)?;
    levels.set(source, 0)?;

    let mut level: u64 = 1;
    while !frontier.is_empty() {
        // next⟨¬visited⟩ = frontier ⊕.⊗ A over the (∨, ∧) semiring. The complement
        // mask is pushed down into the kernel, so edges into already-visited
        // vertices are skipped before any product is formed — on late BFS levels
        // that is the overwhelming majority of the frontier's out-edges.
        let visited_mask = VectorMask::structural(&levels).complement();
        let next = vxm_masked(&visited_mask, &frontier, &pattern, stock::lor_land::<u8>())?;
        for (v, _) in next.iter() {
            levels.set(v, level)?;
        }
        frontier = next;
        level += 1;
    }
    Ok(levels)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directed(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        Matrix::from_edges(n, n, edges).unwrap()
    }

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    #[test]
    fn bfs_on_path_graph() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let levels = bfs_levels(&g, 0).unwrap();
        assert_eq!(levels.to_dense(99), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_from_middle_vertex() {
        let g = undirected(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let levels = bfs_levels(&g, 2).unwrap();
        assert_eq!(levels.to_dense(99), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_vertices_have_no_level() {
        let g = directed(4, &[(0, 1)]);
        let levels = bfs_levels(&g, 0).unwrap();
        assert_eq!(levels.get(0), Some(0));
        assert_eq!(levels.get(1), Some(1));
        assert_eq!(levels.get(2), None);
        assert_eq!(levels.get(3), None);
        assert_eq!(levels.nvals(), 2);
    }

    #[test]
    fn bfs_respects_edge_direction() {
        let g = directed(3, &[(1, 0), (1, 2)]);
        let levels = bfs_levels(&g, 0).unwrap();
        assert_eq!(levels.nvals(), 1); // only the source itself
        let levels_from_1 = bfs_levels(&g, 1).unwrap();
        assert_eq!(levels_from_1.to_dense(99), vec![1, 0, 1]);
    }

    #[test]
    fn bfs_handles_cycles() {
        let g = directed(3, &[(0, 1), (1, 2), (2, 0)]);
        let levels = bfs_levels(&g, 0).unwrap();
        assert_eq!(levels.to_dense(99), vec![0, 1, 2]);
    }

    #[test]
    fn bfs_errors() {
        let rect: Matrix<bool> = Matrix::new(2, 3);
        assert!(bfs_levels(&rect, 0).is_err());
        let g = directed(2, &[]);
        assert!(bfs_levels(&g, 5).is_err());
    }

    #[test]
    fn bfs_levels_match_fastsv_reachability() {
        // every vertex with a BFS level from `s` must share a component with `s`
        let g = undirected(8, &[(0, 1), (1, 2), (3, 4), (5, 6), (6, 7)]);
        let levels = bfs_levels(&g, 5).unwrap();
        let labels = crate::fastsv::connected_components(&g).unwrap();
        for v in 0..8 {
            let reachable = levels.get(v).is_some();
            let same_component = labels.get(v) == labels.get(5);
            assert_eq!(reachable, same_component);
        }
    }
}
