//! Triangle counting — part of the standard LAGraph algorithm collection.
//!
//! Uses the classic masked-SpGEMM formulation (Azad et al. / the LAGraph `TriangleCount`
//! method): with `L` the strictly lower triangular part of the symmetric adjacency
//! matrix, the number of triangles is `Σᵢⱼ (L ⊕.⊗ L)⟨L⟩ / 1` — every triangle is
//! counted exactly once. The case study does not need triangle counting, but the
//! algorithm exercises masked `mxm` and is used by the substrate micro-benches and
//! tests.

use graphblas::ops::{mxm_masked, mxm_masked_par, reduce_matrix_scalar, select_matrix};
use graphblas::ops_traits::{One, StrictLowerTriangle};
use graphblas::semiring::stock;
use graphblas::{Error, Matrix, MatrixMask, Result, Scalar};

fn triangle_count_impl<T: Scalar>(adjacency: &Matrix<T>, parallel: bool) -> Result<u64> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "triangle_count",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    // Work on the u64 pattern of the adjacency matrix.
    let pattern: Matrix<u64> = graphblas::ops::apply_matrix(adjacency, One::new());
    // L: strictly lower triangular part.
    let lower = select_matrix(&pattern, StrictLowerTriangle);
    // C⟨L⟩ = L ⊕.⊗ Lᵀ over plus_pair counts, per (i, j) edge, the common neighbours —
    // with the mask restricting the output to existing edges (pushed down into the
    // kernel, so non-edge pairs never cost a multiplication). Using L·L with the
    // L mask yields each triangle exactly once.
    let mask = MatrixMask::structural(&lower);
    let semiring = stock::plus_pair::<u64, u64, u64>();
    let c = if parallel {
        mxm_masked_par(&mask, &lower, &lower, semiring)?
    } else {
        mxm_masked(&mask, &lower, &lower, semiring)?
    };
    Ok(reduce_matrix_scalar(&c, graphblas::monoid::stock::plus()))
}

/// Count the triangles of an undirected graph given by a symmetric adjacency matrix
/// (values are ignored; only the structure matters).
pub fn triangle_count<T: Scalar>(adjacency: &Matrix<T>) -> Result<u64> {
    triangle_count_impl(adjacency, false)
}

/// Parallel (rayon) variant of [`triangle_count`]: the masked SpGEMM fans output-row
/// chunks out over the thread pool.
pub fn triangle_count_par<T: Scalar>(adjacency: &Matrix<T>) -> Result<u64> {
    triangle_count_impl(adjacency, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym = Vec::new();
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    #[test]
    fn single_triangle() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangle_count(&g).unwrap(), 1);
    }

    #[test]
    fn path_has_no_triangles() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangle_count(&g).unwrap(), 0);
    }

    #[test]
    fn complete_graph_k5_has_ten_triangles() {
        let mut edges = Vec::new();
        for a in 0..5 {
            for b in (a + 1)..5 {
                edges.push((a, b));
            }
        }
        let g = undirected(5, &edges);
        assert_eq!(triangle_count(&g).unwrap(), 10);
    }

    #[test]
    fn two_disjoint_triangles() {
        let g = undirected(6, &[(0, 1), (1, 2), (0, 2), (3, 4), (4, 5), (3, 5)]);
        assert_eq!(triangle_count(&g).unwrap(), 2);
    }

    #[test]
    fn rejects_non_square() {
        let g: Matrix<bool> = Matrix::new(2, 3);
        assert!(triangle_count(&g).is_err());
    }

    #[test]
    fn empty_graph_has_no_triangles() {
        let g: Matrix<bool> = Matrix::new(10, 10);
        assert_eq!(triangle_count(&g).unwrap(), 0);
    }

    #[test]
    fn parallel_count_matches_serial() {
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                if (a + b) % 3 != 0 {
                    edges.push((a, b));
                }
            }
        }
        let g = undirected(6, &edges);
        assert_eq!(triangle_count(&g).unwrap(), triangle_count_par(&g).unwrap());
    }

    #[test]
    fn matches_brute_force_on_random_graph() {
        let n = 20;
        let mut edges = Vec::new();
        let mut state: u64 = 99;
        for _ in 0..40 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) as usize % n;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) as usize % n;
            if a != b {
                edges.push((a.min(b), a.max(b)));
            }
        }
        edges.sort_unstable();
        edges.dedup();
        let g = undirected(n, &edges);

        // brute force
        let adj: std::collections::HashSet<(usize, usize)> = edges.iter().copied().collect();
        let has = |a: usize, b: usize| adj.contains(&(a.min(b), a.max(b)));
        let mut brute = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    if has(a, b) && has(b, c) && has(a, c) {
                        brute += 1;
                    }
                }
            }
        }
        assert_eq!(triangle_count(&g).unwrap(), brute);
    }
}
