//! Insert-only incremental connected components.
//!
//! The paper lists, as future work item (2), replacing the per-comment batch FastSV
//! run in Q2 with an *incremental* connected components algorithm in the spirit of
//! Ediger et al. ("Tracking structure of streaming social networks", IPDPS 2011).
//! Because the TTC 2018 workload only ever *inserts* edges and vertices, the
//! insertion-only case is sufficient and can be maintained exactly with a union–find
//! structure: a new edge either joins two components (merge) or is absorbed into an
//! existing one.
//!
//! The structure below maintains, per comment, the component partition of the users
//! who like that comment, together with the sum of squared component sizes — i.e. the
//! Q2 score — under three kinds of updates: new liker, new friendship, and new
//! friendship between existing likers.

use std::collections::HashMap;

use graphblas::Index;

use crate::cc_unionfind::UnionFind;

/// Incrementally maintained connected components with component-size bookkeeping.
///
/// Vertices are added explicitly; edges only ever merge components. The sum of squared
/// component sizes is maintained in O(1) per merge, so reading the Q2-style score is
/// free.
#[derive(Clone, Debug)]
pub struct IncrementalConnectedComponents {
    /// Maps external vertex ids to dense internal ids.
    external_to_internal: HashMap<u64, Index>,
    uf: UnionFind,
    /// Size of the component rooted at each internal root (only meaningful for roots).
    component_size: Vec<u64>,
    /// Maintained Σ sᵢ² over all components.
    sum_of_squares: u64,
}

impl Default for IncrementalConnectedComponents {
    fn default() -> Self {
        Self::new()
    }
}

impl IncrementalConnectedComponents {
    /// Create an empty structure.
    pub fn new() -> Self {
        IncrementalConnectedComponents {
            external_to_internal: HashMap::new(),
            uf: UnionFind::new(0),
            component_size: Vec::new(),
            sum_of_squares: 0,
        }
    }

    /// Number of tracked vertices.
    pub fn vertex_count(&self) -> usize {
        self.external_to_internal.len()
    }

    /// Reset to the empty partition, keeping the allocated capacity.
    ///
    /// Union–find cannot *un*-union, so consumers handling edge retractions (the
    /// streaming Q2 incremental-CC evaluator, and every shard of the sharded
    /// pipeline on its retraction path) rebuild affected partitions from scratch;
    /// clearing in place lets them reuse the map and size-table allocations
    /// instead of reallocating per retraction.
    pub fn clear(&mut self) {
        self.external_to_internal.clear();
        self.uf.clear();
        self.component_size.clear();
        self.sum_of_squares = 0;
    }

    /// Number of components among the tracked vertices.
    pub fn component_count(&self) -> usize {
        self.uf.component_count()
    }

    /// The maintained Q2-style score: the sum of squared component sizes.
    pub fn sum_of_squared_component_sizes(&self) -> u64 {
        self.sum_of_squares
    }

    /// Whether the vertex is already tracked.
    pub fn contains_vertex(&self, vertex: u64) -> bool {
        self.external_to_internal.contains_key(&vertex)
    }

    /// Add a vertex (as a new singleton component) if it is not yet tracked.
    /// Returns `true` if the vertex was newly added.
    pub fn add_vertex(&mut self, vertex: u64) -> bool {
        if self.external_to_internal.contains_key(&vertex) {
            return false;
        }
        let internal = self.uf.add_vertex();
        self.external_to_internal.insert(vertex, internal);
        self.component_size.push(1);
        self.sum_of_squares += 1;
        true
    }

    /// Add an undirected edge between two tracked vertices, merging their components
    /// if they differ. Vertices that are not yet tracked are added automatically.
    /// Returns `true` if two components were merged.
    pub fn add_edge(&mut self, a: u64, b: u64) -> bool {
        self.add_vertex(a);
        self.add_vertex(b);
        let ia = self.external_to_internal[&a];
        let ib = self.external_to_internal[&b];
        let ra = self.uf.find(ia);
        let rb = self.uf.find(ib);
        if ra == rb {
            return false;
        }
        let size_a = self.component_size[ra];
        let size_b = self.component_size[rb];
        self.uf.union(ia, ib);
        let new_root = self.uf.find(ia);
        let merged = size_a + size_b;
        self.component_size[new_root] = merged;
        // Σ s² changes by (a+b)² - a² - b² = 2ab.
        self.sum_of_squares += 2 * size_a * size_b;
        merged > 0
    }

    /// Whether two tracked vertices are in the same component. Untracked vertices are
    /// never connected to anything.
    pub fn connected(&mut self, a: u64, b: u64) -> bool {
        match (
            self.external_to_internal.get(&a).copied(),
            self.external_to_internal.get(&b).copied(),
        ) {
            (Some(ia), Some(ib)) => self.uf.find(ia) == self.uf.find(ib),
            _ => false,
        }
    }

    /// Sizes of all components (unordered labels, sorted by size then label for
    /// deterministic output).
    pub fn component_sizes(&mut self) -> Vec<u64> {
        let mut roots: HashMap<Index, u64> = HashMap::new();
        let internals: Vec<Index> = self.external_to_internal.values().copied().collect();
        for internal in internals {
            let root = self.uf.find(internal);
            *roots.entry(root).or_insert(0) += 1;
        }
        let mut sizes: Vec<u64> = roots.into_values().collect();
        sizes.sort_unstable();
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_structure_scores_zero() {
        let cc = IncrementalConnectedComponents::new();
        assert_eq!(cc.vertex_count(), 0);
        assert_eq!(cc.component_count(), 0);
        assert_eq!(cc.sum_of_squared_component_sizes(), 0);
    }

    #[test]
    fn singletons_score_their_count() {
        let mut cc = IncrementalConnectedComponents::new();
        assert!(cc.add_vertex(10));
        assert!(cc.add_vertex(20));
        assert!(!cc.add_vertex(10)); // duplicate
        assert_eq!(cc.vertex_count(), 2);
        assert_eq!(cc.sum_of_squared_component_sizes(), 2);
        assert_eq!(cc.component_sizes(), vec![1, 1]);
    }

    #[test]
    fn paper_example_comment_c2() {
        // Initial state: likers {u1}, {u3, u4} with u3-u4 friends -> 1² + 2² = 5
        let mut cc = IncrementalConnectedComponents::new();
        cc.add_vertex(1);
        cc.add_vertex(3);
        cc.add_vertex(4);
        cc.add_edge(3, 4);
        assert_eq!(cc.sum_of_squared_component_sizes(), 5);

        // Update: u2 likes c2, u1-u4 become friends, and (from the initial graph)
        // u1-u2 and u2-u3 are friends -> single component of 4 -> 16
        cc.add_vertex(2);
        cc.add_edge(1, 4);
        cc.add_edge(1, 2);
        cc.add_edge(2, 3);
        assert_eq!(cc.sum_of_squared_component_sizes(), 16);
        assert_eq!(cc.component_sizes(), vec![4]);
    }

    #[test]
    fn redundant_edges_do_not_change_score() {
        let mut cc = IncrementalConnectedComponents::new();
        cc.add_edge(1, 2);
        let score = cc.sum_of_squared_component_sizes();
        assert!(!cc.add_edge(2, 1));
        assert!(!cc.add_edge(1, 2));
        assert_eq!(cc.sum_of_squared_component_sizes(), score);
    }

    #[test]
    fn add_edge_auto_adds_vertices() {
        let mut cc = IncrementalConnectedComponents::new();
        assert!(cc.add_edge(7, 9));
        assert!(cc.contains_vertex(7));
        assert!(cc.contains_vertex(9));
        assert!(cc.connected(7, 9));
        assert!(!cc.connected(7, 8));
        assert_eq!(cc.sum_of_squared_component_sizes(), 4);
    }

    #[test]
    fn maintained_score_matches_recomputation() {
        // pseudo-random edge stream; compare against recomputing sizes from scratch
        let mut cc = IncrementalConnectedComponents::new();
        let mut state: u64 = 42;
        for _ in 0..200 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (state >> 33) % 40;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let b = (state >> 33) % 40;
            cc.add_edge(a, b);
            let expected: u64 = cc.component_sizes().iter().map(|s| s * s).sum();
            assert_eq!(cc.sum_of_squared_component_sizes(), expected);
        }
    }

    #[test]
    fn clear_resets_to_the_empty_partition() {
        let mut cc = IncrementalConnectedComponents::new();
        cc.add_edge(1, 2);
        cc.add_edge(3, 4);
        cc.clear();
        assert_eq!(cc.vertex_count(), 0);
        assert_eq!(cc.component_count(), 0);
        assert_eq!(cc.sum_of_squared_component_sizes(), 0);
        assert!(!cc.contains_vertex(1));
        // the structure stays usable after a clear
        cc.add_edge(1, 2);
        assert_eq!(cc.sum_of_squared_component_sizes(), 4);
    }

    #[test]
    fn component_count_tracks_merges() {
        let mut cc = IncrementalConnectedComponents::new();
        cc.add_vertex(0);
        cc.add_vertex(1);
        cc.add_vertex(2);
        assert_eq!(cc.component_count(), 3);
        cc.add_edge(0, 1);
        assert_eq!(cc.component_count(), 2);
        cc.add_edge(1, 2);
        assert_eq!(cc.component_count(), 1);
    }
}
