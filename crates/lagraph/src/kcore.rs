//! k-core decomposition (LAGraph's `KCore` family).
//!
//! The *core number* of a vertex is the largest `k` such that the vertex belongs to a
//! subgraph in which every vertex has degree at least `k`. The decomposition is
//! computed with the classic peeling algorithm (Matula–Beck / Batagelj–Zaveršnik):
//! repeatedly remove the vertex of smallest remaining degree and record the running
//! maximum of those degrees. Degrees are obtained with a GraphBLAS row reduction; the
//! peel itself uses a bucket queue, exactly as LAGraph's non-GraphBLAS fallback does.

use graphblas::monoid;
use graphblas::ops::reduce_matrix_rows;
use graphblas::ops_traits::One;
use graphblas::{Error, Matrix, Result, Scalar, Vector};

/// Compute the core number of every vertex of an undirected graph given by a symmetric
/// adjacency matrix (values ignored, self loops ignored). Returns a dense vector of
/// core numbers.
pub fn kcore_decomposition<T: Scalar>(adjacency: &Matrix<T>) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "kcore_decomposition",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    if n == 0 {
        return Ok(Vector::new(0));
    }

    // Pattern without self loops; degree[v] = number of stored neighbours.
    let pattern: Matrix<u64> = graphblas::ops::apply_matrix(adjacency, One::new());
    let no_loops = graphblas::ops::select_matrix(&pattern, graphblas::ops_traits::OffDiagonal);
    let degree_vec = reduce_matrix_rows(&no_loops, monoid::stock::plus::<u64>());
    let mut degree: Vec<usize> = (0..n)
        .map(|v| degree_vec.get(v).unwrap_or(0) as usize)
        .collect();

    // Bucket queue over degrees (bounded by n - 1).
    let max_degree = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); max_degree + 1];
    for (v, &d) in degree.iter().enumerate() {
        buckets[d].push(v);
    }

    let mut core = vec![0u64; n];
    let mut removed = vec![false; n];
    let mut current_core = 0u64;
    let mut processed = 0usize;
    let mut cursor = 0usize;

    while processed < n {
        // find the next non-empty bucket at or above the cursor, allowing re-descent
        // (degrees only decrease, so restart from 0 is never needed below current min)
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        if cursor >= buckets.len() {
            break;
        }
        let v = match buckets[cursor].pop() {
            Some(v) => v,
            None => continue,
        };
        if removed[v] || degree[v] != cursor {
            // stale bucket entry: the vertex moved to a lower bucket
            continue;
        }
        removed[v] = true;
        processed += 1;
        current_core = current_core.max(cursor as u64);
        core[v] = current_core;

        let (neighbours, _) = no_loops.row(v);
        for &u in neighbours {
            if !removed[u] && degree[u] > cursor {
                degree[u] -= 1;
                buckets[degree[u]].push(u);
                if degree[u] < cursor {
                    cursor = degree[u];
                }
            }
        }
        // removing v may have created lower-degree vertices; cursor already adjusted
    }

    Ok(Vector::dense_from_fn(n, |v| core[v]))
}

/// The degeneracy of the graph: the largest core number.
pub fn degeneracy<T: Scalar>(adjacency: &Matrix<T>) -> Result<u64> {
    let cores = kcore_decomposition(adjacency)?;
    Ok(cores.values().iter().copied().max().unwrap_or(0))
}

/// Extract the subgraph induced by the vertices whose core number is at least `k`:
/// returns the sorted vertex ids and the induced adjacency matrix (re-indexed to
/// `0..len`).
pub fn kcore_subgraph<T: Scalar>(adjacency: &Matrix<T>, k: u64) -> Result<(Vec<usize>, Matrix<T>)> {
    let cores = kcore_decomposition(adjacency)?;
    let vertices: Vec<usize> = (0..adjacency.nrows())
        .filter(|&v| cores.get(v).unwrap_or(0) >= k)
        .collect();
    let sub = graphblas::ops::extract_submatrix(
        adjacency,
        &graphblas::IndexSelection::List(&vertices),
        &graphblas::IndexSelection::List(&vertices),
    )?;
    Ok((vertices, sub))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym = Vec::new();
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    /// Naive reference: repeatedly strip vertices of degree < k to find the k-core,
    /// then the core number of v is the largest k whose k-core contains v.
    fn brute_force_cores(n: usize, edges: &[(usize, usize)]) -> Vec<u64> {
        let mut core = vec![0u64; n];
        for k in 1..=n as u64 {
            let mut alive = vec![true; n];
            loop {
                let mut changed = false;
                for v in 0..n {
                    if !alive[v] {
                        continue;
                    }
                    let deg = edges
                        .iter()
                        .filter(|&&(a, b)| (a == v && alive[b]) || (b == v && alive[a]))
                        .count() as u64;
                    if deg < k {
                        alive[v] = false;
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
            for v in 0..n {
                if alive[v] {
                    core[v] = k;
                }
            }
        }
        core
    }

    #[test]
    fn path_graph_is_one_core() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let cores = kcore_decomposition(&g).unwrap();
        assert_eq!(cores.to_dense(99), vec![1, 1, 1, 1]);
        assert_eq!(degeneracy(&g).unwrap(), 1);
    }

    #[test]
    fn triangle_with_pendant_vertex() {
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let cores = kcore_decomposition(&g).unwrap();
        assert_eq!(cores.get(0), Some(2));
        assert_eq!(cores.get(1), Some(2));
        assert_eq!(cores.get(2), Some(2));
        assert_eq!(cores.get(3), Some(1));
    }

    #[test]
    fn complete_graph_core_is_n_minus_one() {
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let g = undirected(6, &edges);
        let cores = kcore_decomposition(&g).unwrap();
        assert!(cores.to_dense(0).iter().all(|&c| c == 5));
        assert_eq!(degeneracy(&g).unwrap(), 5);
    }

    #[test]
    fn isolated_vertices_have_core_zero() {
        let g = undirected(3, &[(0, 1)]);
        let cores = kcore_decomposition(&g).unwrap();
        assert_eq!(cores.get(2), Some(0));
    }

    #[test]
    fn empty_graph() {
        let g: Matrix<bool> = Matrix::new(0, 0);
        let cores = kcore_decomposition(&g).unwrap();
        assert_eq!(cores.size(), 0);
    }

    #[test]
    fn self_loops_are_ignored() {
        let with_loop = undirected(3, &[(0, 1), (1, 2), (1, 1)]);
        let without = undirected(3, &[(0, 1), (1, 2)]);
        assert_eq!(
            kcore_decomposition(&with_loop).unwrap(),
            kcore_decomposition(&without).unwrap()
        );
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 1u64..5 {
            let n = 18;
            let mut edges = Vec::new();
            let mut state = seed;
            for _ in 0..45 {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let a = (state >> 33) as usize % n;
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let b = (state >> 33) as usize % n;
                if a != b {
                    edges.push((a.min(b), a.max(b)));
                }
            }
            edges.sort_unstable();
            edges.dedup();
            let g = undirected(n, &edges);
            let cores = kcore_decomposition(&g).unwrap();
            let brute = brute_force_cores(n, &edges);
            assert_eq!(cores.to_dense(0), brute, "seed {seed}");
        }
    }

    #[test]
    fn kcore_subgraph_extracts_dense_part() {
        // triangle 0-1-2 plus pendant 3
        let g = undirected(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        let (vertices, sub) = kcore_subgraph(&g, 2).unwrap();
        assert_eq!(vertices, vec![0, 1, 2]);
        assert_eq!(sub.nrows(), 3);
        assert_eq!(sub.nvals(), 6); // symmetric triangle
        let (all, whole) = kcore_subgraph(&g, 0).unwrap();
        assert_eq!(all.len(), 4);
        assert_eq!(whole.nvals(), g.nvals());
    }

    #[test]
    fn rejects_non_square() {
        let g: Matrix<bool> = Matrix::new(2, 3);
        assert!(kcore_decomposition(&g).is_err());
        assert!(degeneracy(&g).is_err());
    }
}
