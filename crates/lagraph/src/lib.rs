//! # lagraph — graph algorithms on top of the `graphblas` crate
//!
//! The original paper calls into the [LAGraph] library for the FastSV connected
//! components algorithm (Step 3 of Q2). This crate plays the same role for our
//! from-scratch GraphBLAS implementation:
//!
//! * [`fastsv::connected_components`] — FastSV-style connected components expressed
//!   with GraphBLAS primitives (`mxv` over the `min.second` semiring + pointer
//!   jumping), the algorithm used by the paper's Q2.
//! * [`cc_unionfind`] — a direct union–find connected components implementation used
//!   as a correctness oracle and by the object-model baseline.
//! * [`bfs`] — level-synchronous BFS built from masked `vxm` over the boolean
//!   semiring; not required by the case study, but part of the standard LAGraph
//!   algorithm set and used by the examples.
//! * [`incremental_cc`] — an insert-only streaming connected components structure
//!   (in the spirit of Ediger et al., "Tracking structure of streaming social
//!   networks"), implementing the paper's future-work item (2).
//!
//! Beyond what the case study strictly needs, the crate carries the rest of the
//! "standard LAGraph algorithm set" referenced in the paper's related work, so that
//! the substrate is exercised the way a downstream user of LAGraph would exercise it:
//!
//! * [`mod@pagerank`] — PageRank via repeated `mxv` over the arithmetic semiring.
//! * [`mod@triangle_count`] / [`clustering`] — masked-SpGEMM triangle counting, local and
//!   global clustering coefficients.
//! * [`mod@sssp`] — single-source shortest paths over the tropical (`min.+`) semiring.
//! * [`mod@label_propagation`] — LDBC Graphalytics-style community detection (CDLP).
//! * [`kcore`] — k-core decomposition / degeneracy with a peeling algorithm driven by
//!   GraphBLAS degree reductions.
//!
//! [LAGraph]: https://github.com/GraphBLAS/LAGraph

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bfs;
pub mod cc_unionfind;
pub mod clustering;
pub mod fastsv;
pub mod incremental_cc;
pub mod kcore;
pub mod label_propagation;
pub mod pagerank;
pub mod sssp;
pub mod triangle_count;

pub use bfs::bfs_levels;
pub use cc_unionfind::UnionFind;
pub use clustering::{
    degree_vector, global_clustering_coefficient, local_clustering_coefficient,
    triangles_per_vertex, triangles_per_vertex_par,
};
pub use fastsv::{component_sizes, connected_components, sum_of_squared_component_sizes};
pub use incremental_cc::IncrementalConnectedComponents;
pub use kcore::{degeneracy, kcore_decomposition, kcore_subgraph};
pub use label_propagation::{communities, label_propagation, LabelPropagationOptions};
pub use pagerank::{pagerank, PageRankOptions};
pub use sssp::{sssp, sssp_hops};
pub use triangle_count::{triangle_count, triangle_count_par};
