//! Community detection by label propagation (LAGraph's `CDLP`).
//!
//! Every vertex starts in its own community; in each synchronous round a vertex adopts
//! the most frequent label among its neighbours, breaking ties towards the smallest
//! label (the deterministic rule used by the LDBC Graphalytics specification of CDLP).
//! The iteration stops when no label changes or after `max_iterations` rounds.
//!
//! The per-vertex "mode of the neighbour labels" computation is not a semiring
//! reduction, so — exactly like LAGraph's reference implementation — the kernel walks
//! the CSR rows of the adjacency matrix directly while the label state lives in a
//! GraphBLAS vector.

use graphblas::{Error, Matrix, Result, Scalar, Vector};

/// Options for [`label_propagation`].
#[derive(Copy, Clone, Debug)]
pub struct LabelPropagationOptions {
    /// Maximum number of synchronous rounds (the LDBC Graphalytics default is 10).
    pub max_iterations: usize,
}

impl Default for LabelPropagationOptions {
    fn default() -> Self {
        LabelPropagationOptions { max_iterations: 10 }
    }
}

/// Run community detection by label propagation on an undirected graph given by a
/// symmetric adjacency matrix (values ignored). Returns a dense vector assigning a
/// community label to every vertex; labels are vertex ids, so two vertices are in the
/// same community iff their labels are equal.
pub fn label_propagation<T: Scalar>(
    adjacency: &Matrix<T>,
    options: LabelPropagationOptions,
) -> Result<Vector<u64>> {
    if !adjacency.is_square() {
        return Err(Error::DimensionMismatch {
            context: "label_propagation",
            expected: adjacency.nrows(),
            actual: adjacency.ncols(),
        });
    }
    let n = adjacency.nrows();
    let mut labels: Vec<u64> = (0..n as u64).collect();

    let mut scratch: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
    for _ in 0..options.max_iterations {
        let mut changed = false;
        let mut next = labels.clone();
        for v in 0..n {
            let (neighbours, _) = adjacency.row(v);
            if neighbours.is_empty() {
                continue;
            }
            scratch.clear();
            for &u in neighbours {
                if u == v {
                    continue; // self loops do not vote
                }
                *scratch.entry(labels[u]).or_insert(0) += 1;
            }
            if scratch.is_empty() {
                continue;
            }
            // most frequent label, ties broken towards the smallest label
            let mut best_label = labels[v];
            let mut best_count = 0usize;
            let mut have_best = false;
            for (&label, &count) in scratch.iter() {
                if !have_best || count > best_count || (count == best_count && label < best_label) {
                    best_label = label;
                    best_count = count;
                    have_best = true;
                }
            }
            if best_label != labels[v] {
                next[v] = best_label;
                changed = true;
            }
        }
        labels = next;
        if !changed {
            break;
        }
    }

    Ok(Vector::dense_from_fn(n, |v| labels[v]))
}

/// Group vertices by their community label. Returns the communities sorted by size
/// (largest first), each as a sorted list of vertex ids.
pub fn communities(labels: &Vector<u64>) -> Vec<Vec<usize>> {
    let mut groups: std::collections::HashMap<u64, Vec<usize>> = std::collections::HashMap::new();
    for (v, label) in labels.iter() {
        groups.entry(label).or_default().push(v);
    }
    let mut result: Vec<Vec<usize>> = groups.into_values().collect();
    for group in &mut result {
        group.sort_unstable();
    }
    result.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn undirected(n: usize, edges: &[(usize, usize)]) -> Matrix<bool> {
        let mut sym = Vec::new();
        for &(a, b) in edges {
            sym.push((a, b));
            sym.push((b, a));
        }
        Matrix::from_edges(n, n, &sym).unwrap()
    }

    #[test]
    fn two_cliques_joined_by_a_bridge_form_two_communities() {
        // vertices 0-3 form a clique, 4-7 form a clique, one bridge 3-4
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in (a + 1)..4 {
                edges.push((a, b));
            }
        }
        for a in 4..8 {
            for b in (a + 1)..8 {
                edges.push((a, b));
            }
        }
        edges.push((3, 4));
        let g = undirected(8, &edges);
        let labels = label_propagation(&g, LabelPropagationOptions::default()).unwrap();
        let groups = communities(&labels);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].len(), 4);
        assert_eq!(groups[1].len(), 4);
        // vertices 0..4 share a label; 4..8 share a label
        assert_eq!(labels.get(0), labels.get(1));
        assert_eq!(labels.get(0), labels.get(3));
        assert_eq!(labels.get(4), labels.get(7));
        assert_ne!(labels.get(0), labels.get(4));
    }

    #[test]
    fn isolated_vertices_keep_their_own_label() {
        let g = undirected(3, &[]);
        let labels = label_propagation(&g, LabelPropagationOptions::default()).unwrap();
        assert_eq!(labels.to_dense(99), vec![0, 1, 2]);
        assert_eq!(communities(&labels).len(), 3);
    }

    #[test]
    fn clique_converges_to_a_single_community() {
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b));
            }
        }
        let g = undirected(6, &edges);
        let labels = label_propagation(&g, LabelPropagationOptions::default()).unwrap();
        let first = labels.get(0);
        for v in 1..6 {
            assert_eq!(labels.get(v), first);
        }
    }

    #[test]
    fn communities_never_span_connected_components() {
        let g = undirected(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
        let labels = label_propagation(&g, LabelPropagationOptions::default()).unwrap();
        let cc = crate::fastsv::connected_components(&g).unwrap();
        for a in 0..6 {
            for b in 0..6 {
                if labels.get(a) == labels.get(b) {
                    assert_eq!(cc.get(a), cc.get(b), "community spans components: {a}, {b}");
                }
            }
        }
    }

    #[test]
    fn zero_iterations_returns_initial_labels() {
        let g = undirected(4, &[(0, 1), (2, 3)]);
        let labels = label_propagation(&g, LabelPropagationOptions { max_iterations: 0 }).unwrap();
        assert_eq!(labels.to_dense(99), vec![0, 1, 2, 3]);
    }

    #[test]
    fn self_loops_do_not_affect_the_result() {
        let plain = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut looped_edges = vec![(0usize, 1usize), (1, 2), (2, 3)];
        looped_edges.extend((0..4).map(|v| (v, v)));
        let looped = undirected(4, &looped_edges);
        let a = label_propagation(&plain, LabelPropagationOptions::default()).unwrap();
        let b = label_propagation(&looped, LabelPropagationOptions::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn rejects_non_square() {
        let g: Matrix<bool> = Matrix::new(2, 3);
        assert!(label_propagation(&g, LabelPropagationOptions::default()).is_err());
    }

    #[test]
    fn communities_are_sorted_by_size() {
        let g = undirected(7, &[(0, 1), (0, 2), (1, 2), (3, 4)]);
        let labels = label_propagation(&g, LabelPropagationOptions::default()).unwrap();
        let groups = communities(&labels);
        for w in groups.windows(2) {
            assert!(w[0].len() >= w[1].len());
        }
        let total: usize = groups.iter().map(|g| g.len()).sum();
        assert_eq!(total, 7);
    }
}
