//! Union–find (disjoint set union) connected components.
//!
//! This is the "conventional" pointer-based formulation of connected components. It is
//! used (a) as a correctness oracle for the GraphBLAS FastSV implementation, and
//! (b) as the building block of the insert-only incremental connected components
//! structure in [`crate::incremental_cc`].

use graphblas::Index;

/// A disjoint-set-union structure over vertices `0..n` with union by rank and path
/// compression (near-constant amortised operations).
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<Index>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Create a union–find over `n` singleton vertices.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Reset to zero vertices, keeping the parent/rank allocations for reuse
    /// (the retraction paths rebuild partitions per changeset; reallocating the
    /// two vectors every time is the dominant avoidable cost there).
    pub fn clear(&mut self) {
        self.parent.clear();
        self.rank.clear();
        self.components = 0;
    }

    /// Number of vertices managed by the structure.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure manages zero vertices.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint components.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Add a new singleton vertex and return its id.
    pub fn add_vertex(&mut self) -> Index {
        let id = self.parent.len();
        self.parent.push(id);
        self.rank.push(0);
        self.components += 1;
        id
    }

    /// Find the representative (root) of `x`, compressing the path on the way.
    pub fn find(&mut self, x: Index) -> Index {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Union the components of `a` and `b`. Returns `true` if two distinct components
    /// were merged.
    pub fn union(&mut self, a: Index, b: Index) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (high, low) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[low] = high;
        if self.rank[high] == self.rank[low] {
            self.rank[high] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same component.
    pub fn connected(&mut self, a: Index, b: Index) -> bool {
        self.find(a) == self.find(b)
    }

    /// Component label of every vertex, canonicalised to the smallest vertex id in
    /// each component (so the labels are directly comparable with
    /// [`crate::fastsv::connected_components`]).
    pub fn labels(&mut self) -> Vec<u64> {
        let n = self.len();
        let mut min_of_root: Vec<Index> = (0..n).collect();
        for v in 0..n {
            let r = self.find(v);
            if v < min_of_root[r] {
                min_of_root[r] = v;
            }
        }
        (0..n).map(|v| min_of_root[self.find(v)] as u64).collect()
    }

    /// Sizes of all components, keyed by the canonical (smallest-id) label.
    pub fn component_sizes(&mut self) -> Vec<(u64, u64)> {
        let labels = self.labels();
        let mut counts: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for l in labels {
            *counts.entry(l).or_insert(0) += 1;
        }
        let mut out: Vec<(u64, u64)> = counts.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Sum of squared component sizes (the Q2 scoring function).
    pub fn sum_of_squared_component_sizes(&mut self) -> u64 {
        self.component_sizes().into_iter().map(|(_, s)| s * s).sum()
    }
}

/// Convenience: connected-components labels for an undirected edge list over vertices
/// `0..n`, canonicalised to the smallest vertex id per component.
pub fn connected_components_from_edges(n: usize, edges: &[(Index, Index)]) -> Vec<u64> {
    let mut uf = UnionFind::new(n);
    for &(a, b) in edges {
        uf.union(a, b);
    }
    uf.labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_initially() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.component_count(), 4);
        assert_eq!(uf.labels(), vec![0, 1, 2, 3]);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.len(), 4);
        assert!(!uf.is_empty());
    }

    #[test]
    fn union_merges_components() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(3, 4));
        assert!(!uf.union(1, 0)); // already merged
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 1));
        assert!(uf.connected(3, 4));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.labels(), vec![0, 0, 2, 3, 3]);
    }

    #[test]
    fn transitive_connectivity() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(2, 3);
        assert!(uf.connected(0, 3));
        assert_eq!(uf.component_sizes(), vec![(0, 4), (4, 1), (5, 1)]);
        assert_eq!(uf.sum_of_squared_component_sizes(), 16 + 1 + 1);
    }

    #[test]
    fn add_vertex_extends_structure() {
        let mut uf = UnionFind::new(2);
        let v = uf.add_vertex();
        assert_eq!(v, 2);
        assert_eq!(uf.component_count(), 3);
        uf.union(v, 0);
        assert!(uf.connected(0, 2));
    }

    #[test]
    fn from_edges_helper() {
        let labels = connected_components_from_edges(5, &[(1, 2), (2, 4)]);
        assert_eq!(labels, vec![0, 1, 1, 3, 1]);
    }

    #[test]
    fn empty_structure() {
        let mut uf = UnionFind::new(0);
        assert!(uf.is_empty());
        assert_eq!(uf.component_count(), 0);
        assert_eq!(uf.labels(), Vec::<u64>::new());
        assert_eq!(uf.sum_of_squared_component_sizes(), 0);
    }
}
