//! The object-graph ("model repository") representation used by the baseline.
//!
//! The original reference solution of the case study is written against the .NET
//! Modeling Framework: the social network is an in-memory object graph navigated with
//! pointer-chasing traversals. This module is the Rust equivalent — hash-map backed
//! nodes with adjacency lists — deliberately *not* using any linear algebra, so the
//! comparison against the GraphBLAS solution measures two genuinely different
//! evaluation strategies on the same workload.

use std::collections::{HashMap, HashSet};

use datagen::{ChangeOperation, ChangeSet, ElementId, SocialNetwork};

/// A post node and its incoming references.
#[derive(Clone, Debug, Default)]
pub struct PostNode {
    /// Creation timestamp (used for result ordering).
    pub timestamp: u64,
    /// All comments (direct or indirect) whose `rootPost` pointer targets this post.
    pub comments: Vec<ElementId>,
}

/// A comment node and its incoming references.
#[derive(Clone, Debug, Default)]
pub struct CommentNode {
    /// Creation timestamp (used for result ordering).
    pub timestamp: u64,
    /// The root post of the discussion tree.
    pub root_post: ElementId,
    /// The parent submission (post or comment).
    pub parent: ElementId,
    /// Users who like this comment.
    pub likers: Vec<ElementId>,
}

/// A user node and its adjacency.
#[derive(Clone, Debug, Default)]
pub struct UserNode {
    /// Friends of the user (symmetric).
    pub friends: HashSet<ElementId>,
    /// Comments the user likes.
    pub likes: Vec<ElementId>,
}

/// The in-memory object graph.
#[derive(Clone, Debug, Default)]
pub struct ModelRepository {
    /// Posts by id.
    pub posts: HashMap<ElementId, PostNode>,
    /// Comments by id.
    pub comments: HashMap<ElementId, CommentNode>,
    /// Users by id.
    pub users: HashMap<ElementId, UserNode>,
}

impl ModelRepository {
    /// Build the object graph from an initial network.
    pub fn from_network(network: &SocialNetwork) -> Self {
        let mut repo = ModelRepository::default();
        for user in &network.users {
            repo.users.entry(user.id).or_default();
        }
        for post in &network.posts {
            repo.posts.insert(
                post.id,
                PostNode {
                    timestamp: post.timestamp,
                    comments: Vec::new(),
                },
            );
        }
        for comment in &network.comments {
            repo.insert_comment(
                comment.id,
                comment.timestamp,
                comment.parent,
                comment.root_post,
            );
        }
        for &(a, b) in &network.friendships {
            repo.insert_friendship(a, b);
        }
        for &(user, comment) in &network.likes {
            repo.insert_like(user, comment);
        }
        repo
    }

    /// Apply a changeset to the object graph.
    pub fn apply_changeset(&mut self, changeset: &ChangeSet) {
        for op in &changeset.operations {
            match op {
                ChangeOperation::AddUser { user } => {
                    self.users.entry(user.id).or_default();
                }
                ChangeOperation::AddPost { post } => {
                    self.posts.entry(post.id).or_insert(PostNode {
                        timestamp: post.timestamp,
                        comments: Vec::new(),
                    });
                }
                ChangeOperation::AddComment { comment } => {
                    self.insert_comment(
                        comment.id,
                        comment.timestamp,
                        comment.parent,
                        comment.root_post,
                    );
                }
                ChangeOperation::AddFriendship { a, b } => self.insert_friendship(*a, *b),
                ChangeOperation::AddLike { user, comment } => self.insert_like(*user, *comment),
                ChangeOperation::RemoveLike { user, comment } => self.remove_like(*user, *comment),
                ChangeOperation::RemoveFriendship { a, b } => self.remove_friendship(*a, *b),
            }
        }
    }

    fn insert_comment(
        &mut self,
        id: ElementId,
        timestamp: u64,
        parent: ElementId,
        root_post: ElementId,
    ) {
        if self.comments.contains_key(&id) {
            return;
        }
        self.comments.insert(
            id,
            CommentNode {
                timestamp,
                root_post,
                parent,
                likers: Vec::new(),
            },
        );
        if let Some(post) = self.posts.get_mut(&root_post) {
            post.comments.push(id);
        }
    }

    fn insert_friendship(&mut self, a: ElementId, b: ElementId) {
        if a == b {
            return;
        }
        self.users.entry(a).or_default().friends.insert(b);
        self.users.entry(b).or_default().friends.insert(a);
    }

    fn insert_like(&mut self, user: ElementId, comment: ElementId) {
        let Some(node) = self.comments.get_mut(&comment) else {
            return;
        };
        if node.likers.contains(&user) {
            return;
        }
        node.likers.push(user);
        self.users.entry(user).or_default().likes.push(comment);
    }

    fn remove_friendship(&mut self, a: ElementId, b: ElementId) {
        if let Some(user) = self.users.get_mut(&a) {
            user.friends.remove(&b);
        }
        if let Some(user) = self.users.get_mut(&b) {
            user.friends.remove(&a);
        }
    }

    fn remove_like(&mut self, user: ElementId, comment: ElementId) {
        if let Some(node) = self.comments.get_mut(&comment) {
            node.likers.retain(|&u| u != user);
        }
        if let Some(node) = self.users.get_mut(&user) {
            node.likes.retain(|&c| c != comment);
        }
    }

    /// Whether two users are friends.
    pub fn are_friends(&self, a: ElementId, b: ElementId) -> bool {
        self.users
            .get(&a)
            .map(|u| u.friends.contains(&b))
            .unwrap_or(false)
    }

    /// Number of likes received by the comments of a post.
    pub fn likes_of_post(&self, post: ElementId) -> usize {
        self.posts
            .get(&post)
            .map(|p| {
                p.comments
                    .iter()
                    .map(|c| self.comments.get(c).map(|c| c.likers.len()).unwrap_or(0))
                    .sum()
            })
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttc_social_media::graph::{paper_example_changeset, paper_example_network};

    #[test]
    fn builds_object_graph_from_paper_example() {
        let repo = ModelRepository::from_network(&paper_example_network());
        assert_eq!(repo.users.len(), 4);
        assert_eq!(repo.posts.len(), 2);
        assert_eq!(repo.comments.len(), 3);
        assert_eq!(repo.posts[&1].comments.len(), 2);
        assert_eq!(repo.posts[&2].comments.len(), 1);
        assert_eq!(repo.comments[&12].likers.len(), 3);
        assert!(repo.are_friends(101, 102));
        assert!(!repo.are_friends(101, 104));
        assert_eq!(repo.likes_of_post(1), 5);
    }

    #[test]
    fn applies_the_paper_changeset() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        repo.apply_changeset(&paper_example_changeset());
        assert!(repo.are_friends(101, 104));
        assert_eq!(repo.comments[&12].likers.len(), 4);
        assert_eq!(repo.posts[&1].comments.len(), 3);
        assert_eq!(repo.likes_of_post(1), 7);
    }

    #[test]
    fn duplicate_inserts_are_ignored() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        let before_likes = repo.comments[&11].likers.len();
        repo.apply_changeset(&datagen::ChangeSet {
            operations: vec![
                datagen::ChangeOperation::AddLike {
                    user: 102,
                    comment: 11,
                },
                datagen::ChangeOperation::AddFriendship { a: 101, b: 102 },
                datagen::ChangeOperation::AddFriendship { a: 102, b: 102 },
            ],
        });
        assert_eq!(repo.comments[&11].likers.len(), before_likes);
        assert!(!repo.users[&102].friends.contains(&102));
    }

    #[test]
    fn likes_on_unknown_comments_are_dropped() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        repo.apply_changeset(&datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::AddLike {
                user: 101,
                comment: 999,
            }],
        });
        assert_eq!(repo.comments.len(), 3);
    }
}
