//! The NMF baseline behind the sharded streaming pipeline: per-shard
//! dependency-record propagation.
//!
//! `stream_throughput --shards N` used to skip the NMF variant because the
//! baseline had no sharded backend. This module closes that gap by implementing
//! the `ttc-social-media` shard abstraction for the NMF incremental engine: each
//! shard owns a [`ModelRepository`] over its sub-network (as partitioned by
//! `ShardRouter::split_initial` — owned discussion trees, likes on owned
//! comments, friendship replicas among present likers) plus the same
//! [`Q1Dependencies`]/[`Q2Dependencies`] records the unsharded `NmfIncremental`
//! builds, so the comparison against the GraphBLAS shards measures the same
//! architectural split the paper's Fig. 5 measures unsharded.
//!
//! The partition-correctness argument is the one of `DESIGN.md` §5: both
//! queries score a submission from data wholly inside its shard (its discussion
//! tree, its likers, and the replicated friendships among them), so every
//! per-shard dependency record carries the **exact global score** and the
//! cross-shard merge policy applies unchanged.
//!
//! One deliberate difference from the GraphBLAS evaluator: the retraction flag
//! returned by [`ShardEvaluator::apply`] is *syntactic*
//! ([`ChangeSet::has_removals`]) rather than effective, because the NMF engine
//! tracks liveness inside its propagation (idempotent notifications) and does
//! not expose an effective-removal delta. Syntactic is a superset of effective,
//! and the rebuild path it triggers is exact for any batch, so the merge stays
//! correct — it just rebuilds slightly more often.

use datagen::{ChangeSet, SocialNetwork};
use ttc_social_media::model::Query;
use ttc_social_media::shard::{ShardEvaluator, ShardFactory};
use ttc_social_media::solution::TOP_K;
use ttc_social_media::top_k::RankedEntry;
use ttc_social_media::ShardedSolution;

use crate::incremental::{Q1Dependencies, Q2Dependencies};
use crate::model::ModelRepository;

enum ShardDependencies {
    Q1(Q1Dependencies),
    Q2(Q2Dependencies),
}

/// One shard of the NMF incremental baseline: the shard's object graph plus its
/// dependency records.
pub struct NmfShard {
    repo: ModelRepository,
    deps: ShardDependencies,
}

impl NmfShard {
    /// Build the shard over one sub-network (the expensive NMF initial phase,
    /// run once per shard).
    pub fn new(part: &SocialNetwork, query: Query) -> Self {
        let repo = ModelRepository::from_network(part);
        let deps = match query {
            Query::Q1 => ShardDependencies::Q1(Q1Dependencies::initialize(&repo, TOP_K).0),
            Query::Q2 => ShardDependencies::Q2(Q2Dependencies::initialize(&repo, TOP_K).0),
        };
        NmfShard { repo, deps }
    }
}

impl ShardEvaluator for NmfShard {
    fn apply(&mut self, changeset: &ChangeSet) -> bool {
        if changeset.operations.is_empty() {
            return false;
        }
        self.repo.apply_changeset(changeset);
        match &mut self.deps {
            ShardDependencies::Q1(deps) => {
                deps.propagate(&self.repo, changeset);
            }
            ShardDependencies::Q2(deps) => {
                deps.propagate(&self.repo, changeset);
            }
        }
        changeset.has_removals()
    }

    fn candidates(&self) -> &[RankedEntry] {
        match &self.deps {
            ShardDependencies::Q1(deps) => deps.candidates(),
            ShardDependencies::Q2(deps) => deps.candidates(),
        }
    }

    fn owned_sizes(&self) -> (usize, usize) {
        (self.repo.posts.len(), self.repo.comments.len())
    }
}

/// [`ShardFactory`] for the NMF incremental baseline.
#[derive(Copy, Clone, Debug)]
pub struct NmfShardFactory {
    query: Query,
}

impl NmfShardFactory {
    /// Create a factory answering `query`.
    pub fn new(query: Query) -> Self {
        NmfShardFactory { query }
    }
}

impl ShardFactory for NmfShardFactory {
    fn build(&self, part: &SocialNetwork) -> Box<dyn ShardEvaluator> {
        Box::new(NmfShard::new(part, self.query))
    }

    fn query(&self) -> Query {
        self.query
    }

    fn name(&self) -> String {
        "NMF Sharded Incremental".to_string()
    }
}

/// Convenience constructor: the NMF incremental baseline on `shards` shards
/// (default modulo partitioning), behind the same `Solution` interface as
/// `ShardedSolution::new` — so every driver, benchmark, and differential test
/// runs it unchanged.
pub fn nmf_sharded(query: Query, shards: usize) -> ShardedSolution {
    ShardedSolution::with_factory(Box::new(NmfShardFactory::new(query)), shards)
}

/// [`nmf_sharded`] with an injected partition policy (consistent-hash ring,
/// assignment table, …) — the NMF leg of the pluggable-partitioner plumbing,
/// so `stream_throughput --partitioner ring` measures this baseline too.
pub fn nmf_sharded_with_partitioner(
    query: Query,
    partitioner: Box<dyn datagen::partition::Partitioner>,
) -> ShardedSolution {
    ShardedSolution::with_factory_and_partitioner(
        Box::new(NmfShardFactory::new(query)),
        partitioner,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::NmfIncremental;
    use datagen::stream::{StreamConfig, UpdateStream};
    use datagen::{generate_workload, GeneratorConfig};
    use ttc_social_media::solution::Solution;

    fn network(seed: u64) -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(seed)).initial
    }

    fn retraction_stream(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
        UpdateStream::new(
            network,
            StreamConfig {
                seed,
                batch_size: 12,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(count)
        .collect()
    }

    #[test]
    fn sharded_nmf_agrees_with_unsharded_on_retraction_heavy_streams() {
        let network = network(101);
        let batches = retraction_stream(&network, 0x42f, 10);
        for query in [Query::Q1, Query::Q2] {
            let mut reference = NmfIncremental::new(query);
            let mut sharded: Vec<ShardedSolution> = [1usize, 2, 4]
                .iter()
                .map(|&n| nmf_sharded(query, n))
                .collect();
            let expected = reference.load_and_initial(&network);
            for s in &mut sharded {
                assert_eq!(s.load_and_initial(&network), expected, "{}", s.name());
            }
            for (batch_no, batch) in batches.iter().enumerate() {
                let expected = reference.update_and_reevaluate(batch);
                for s in &mut sharded {
                    assert_eq!(
                        s.update_and_reevaluate(batch),
                        expected,
                        "{} diverged at {query:?} batch {batch_no}",
                        s.name()
                    );
                }
            }
        }
    }

    #[test]
    fn names_identify_the_nmf_backend() {
        let s = nmf_sharded(Query::Q2, 4);
        assert_eq!(s.name(), "NMF Sharded Incremental (4 shards)");
        assert_eq!(s.query(), Query::Q2);
    }

    #[test]
    fn shard_sizes_partition_the_object_graph() {
        let network = network(103);
        let mut s = nmf_sharded(Query::Q1, 3);
        s.load_and_initial(&network);
        let sizes = s.shard_sizes();
        assert_eq!(sizes.len(), 3);
        let posts: usize = sizes.iter().map(|&(p, _)| p).sum();
        let comments: usize = sizes.iter().map(|&(_, c)| c).sum();
        assert_eq!(posts, network.posts.len());
        assert_eq!(comments, network.comments.len());
    }
}
