//! Q1 (influential posts) over the object graph: the straightforward pointer-chasing
//! formulation a model-transformation tool would use.

use ttc_social_media::top_k::{top_k, RankedEntry};

use crate::model::ModelRepository;

/// Score of one post: `10 × #comments + #likes-on-those-comments`.
pub fn post_score(repo: &ModelRepository, post: datagen::ElementId) -> u64 {
    let Some(node) = repo.posts.get(&post) else {
        return 0;
    };
    let comments = node.comments.len() as u64;
    let likes: u64 = node
        .comments
        .iter()
        .map(|c| {
            repo.comments
                .get(c)
                .map(|c| c.likers.len() as u64)
                .unwrap_or(0)
        })
        .sum();
    10 * comments + likes
}

/// Full batch evaluation of Q1: the top-`k` posts.
pub fn q1_ranked(repo: &ModelRepository, k: usize) -> Vec<RankedEntry> {
    let entries = repo.posts.iter().map(|(&id, node)| RankedEntry {
        score: post_score(repo, id),
        timestamp: node.timestamp,
        id,
    });
    top_k(entries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttc_social_media::graph::{paper_example_changeset, paper_example_network};
    use ttc_social_media::top_k::format_result;

    #[test]
    fn paper_example_scores() {
        let repo = ModelRepository::from_network(&paper_example_network());
        assert_eq!(post_score(&repo, 1), 25);
        assert_eq!(post_score(&repo, 2), 10);
        assert_eq!(post_score(&repo, 999), 0);
        assert_eq!(format_result(&q1_ranked(&repo, 3)), "1|2");
    }

    #[test]
    fn paper_example_after_update() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        repo.apply_changeset(&paper_example_changeset());
        assert_eq!(post_score(&repo, 1), 37);
        assert_eq!(post_score(&repo, 2), 10);
    }

    #[test]
    fn matches_graphblas_batch_on_synthetic_workload() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(201));
        let repo = ModelRepository::from_network(&workload.initial);
        let graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        let graphblas = ttc_social_media::q1::q1_batch_ranked(&graph, false, 3);
        let nmf = q1_ranked(&repo, 3);
        assert_eq!(format_result(&graphblas), format_result(&nmf));
    }
}
