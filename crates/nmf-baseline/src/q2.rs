//! Q2 (influential comments) over the object graph: per comment, group the likers into
//! connected components of the friendship relation using a small union–find, then sum
//! the squared component sizes.

use std::collections::HashMap;

use datagen::ElementId;
use ttc_social_media::top_k::{top_k, RankedEntry};

use crate::model::ModelRepository;

/// A minimal union–find used by the baseline (kept local so the baseline stays a
/// self-contained "different tool" and does not reuse the GraphBLAS stack).
pub(crate) struct TinyUnionFind {
    parent: Vec<usize>,
}

impl TinyUnionFind {
    pub(crate) fn new(n: usize) -> Self {
        TinyUnionFind {
            parent: (0..n).collect(),
        }
    }

    pub(crate) fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    pub(crate) fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Sum of squared component sizes over all elements.
    pub(crate) fn sum_of_squared_sizes(&mut self) -> u64 {
        let n = self.parent.len();
        let mut sizes: HashMap<usize, u64> = HashMap::new();
        for x in 0..n {
            let root = self.find(x);
            *sizes.entry(root).or_insert(0) += 1;
        }
        sizes.values().map(|&s| s * s).sum()
    }
}

/// Score of one comment: Σᵢ csᵢ² over the components of the likers' friendship
/// subgraph.
pub fn comment_score(repo: &ModelRepository, comment: ElementId) -> u64 {
    let Some(node) = repo.comments.get(&comment) else {
        return 0;
    };
    let likers = &node.likers;
    if likers.is_empty() {
        return 0;
    }
    let mut uf = TinyUnionFind::new(likers.len());
    for (i, &a) in likers.iter().enumerate() {
        for (j, &b) in likers.iter().enumerate().skip(i + 1) {
            if repo.are_friends(a, b) {
                uf.union(i, j);
            }
        }
    }
    uf.sum_of_squared_sizes()
}

/// Full batch evaluation of Q2: the top-`k` comments.
pub fn q2_ranked(repo: &ModelRepository, k: usize) -> Vec<RankedEntry> {
    let entries = repo.comments.iter().map(|(&id, node)| RankedEntry {
        score: comment_score(repo, id),
        timestamp: node.timestamp,
        id,
    });
    top_k(entries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttc_social_media::graph::{paper_example_changeset, paper_example_network};
    use ttc_social_media::top_k::format_result;

    #[test]
    fn paper_example_scores() {
        let repo = ModelRepository::from_network(&paper_example_network());
        assert_eq!(comment_score(&repo, 11), 4);
        assert_eq!(comment_score(&repo, 12), 5);
        assert_eq!(comment_score(&repo, 13), 0);
        assert_eq!(comment_score(&repo, 999), 0);
        assert_eq!(format_result(&q2_ranked(&repo, 3)), "12|11|13");
    }

    #[test]
    fn paper_example_after_update() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        repo.apply_changeset(&paper_example_changeset());
        assert_eq!(comment_score(&repo, 12), 16);
        assert_eq!(comment_score(&repo, 14), 1);
        assert_eq!(format_result(&q2_ranked(&repo, 3)), "12|11|14");
    }

    #[test]
    fn matches_graphblas_batch_on_synthetic_workload() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(203));
        let repo = ModelRepository::from_network(&workload.initial);
        let graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        let graphblas = ttc_social_media::q2::q2_batch_ranked(&graph, false, 3);
        let nmf = q2_ranked(&repo, 3);
        assert_eq!(format_result(&graphblas), format_result(&nmf));
    }

    #[test]
    fn union_find_counts_squared_sizes() {
        let mut uf = TinyUnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert_eq!(uf.sum_of_squared_sizes(), 9 + 1 + 1);
    }
}
