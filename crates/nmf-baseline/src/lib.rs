//! # nmf-baseline — the reference-solution baseline of the paper
//!
//! The paper compares its GraphBLAS solutions against the case study's reference
//! implementation written in the .NET Modeling Framework (NMF), in a batch and an
//! incremental variant. Since the original is a .NET code base, this crate provides a
//! functionally equivalent Rust baseline with the same architectural split:
//!
//! * [`model::ModelRepository`] — an object graph navigated by pointer chasing (no
//!   linear algebra anywhere in this crate);
//! * [`q1`] / [`q2`] — straightforward batch query evaluation over the object graph;
//! * [`incremental`] — dependency-record-based incremental propagation, mimicking
//!   NMF's incremental engine (expensive to set up, cheap per update);
//! * [`solution`] — the `NMF Batch` and `NMF Incremental` tool variants behind the
//!   shared [`ttc_social_media::Solution`] trait, so the Figure 5 harness can run them
//!   interchangeably with the GraphBLAS variants;
//! * [`shard`] — the incremental baseline behind the sharded streaming pipeline
//!   (per-shard dependency-record propagation), so `--shards` benchmarks compare
//!   like with like instead of silently skipping NMF.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod incremental;
pub mod model;
pub mod q1;
pub mod q2;
pub mod shard;
pub mod solution;

pub use model::ModelRepository;
pub use shard::{nmf_sharded, nmf_sharded_with_partitioner, NmfShard, NmfShardFactory};
pub use solution::{NmfBatch, NmfIncremental};
