//! The two baseline tool variants of the paper's Fig. 5: **NMF Batch** (full
//! recomputation over the object graph on every evaluation) and **NMF Incremental**
//! (dependency-record propagation).

use datagen::{ChangeSet, SocialNetwork};
use ttc_social_media::model::Query;
use ttc_social_media::solution::{Solution, TOP_K};
use ttc_social_media::top_k::format_result;

use crate::incremental::{Q1Dependencies, Q2Dependencies};
use crate::model::ModelRepository;
use crate::q1::q1_ranked;
use crate::q2::q2_ranked;

/// "NMF Batch": rebuild nothing, recompute everything on each evaluation.
pub struct NmfBatch {
    query: Query,
    repo: ModelRepository,
}

impl NmfBatch {
    /// Create a batch baseline for `query`.
    pub fn new(query: Query) -> Self {
        NmfBatch {
            query,
            repo: ModelRepository::default(),
        }
    }

    fn evaluate(&self) -> String {
        match self.query {
            Query::Q1 => format_result(&q1_ranked(&self.repo, TOP_K)),
            Query::Q2 => format_result(&q2_ranked(&self.repo, TOP_K)),
        }
    }
}

impl Solution for NmfBatch {
    fn name(&self) -> String {
        "NMF Batch".to_string()
    }

    fn query(&self) -> Query {
        self.query
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        self.repo = ModelRepository::from_network(network);
        self.evaluate()
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        self.repo.apply_changeset(changeset);
        self.evaluate()
    }
}

enum DependencyState {
    Unloaded,
    Q1(Q1Dependencies),
    Q2(Q2Dependencies),
}

/// "NMF Incremental": build dependency records during the initial evaluation, then
/// propagate changes.
pub struct NmfIncremental {
    query: Query,
    repo: ModelRepository,
    state: DependencyState,
}

impl NmfIncremental {
    /// Create an incremental baseline for `query`.
    pub fn new(query: Query) -> Self {
        NmfIncremental {
            query,
            repo: ModelRepository::default(),
            state: DependencyState::Unloaded,
        }
    }
}

impl Solution for NmfIncremental {
    fn name(&self) -> String {
        "NMF Incremental".to_string()
    }

    fn query(&self) -> Query {
        self.query
    }

    fn load_and_initial(&mut self, network: &SocialNetwork) -> String {
        self.repo = ModelRepository::from_network(network);
        match self.query {
            Query::Q1 => {
                let (deps, result) = Q1Dependencies::initialize(&self.repo, TOP_K);
                self.state = DependencyState::Q1(deps);
                result
            }
            Query::Q2 => {
                let (deps, result) = Q2Dependencies::initialize(&self.repo, TOP_K);
                self.state = DependencyState::Q2(deps);
                result
            }
        }
    }

    fn update_and_reevaluate(&mut self, changeset: &ChangeSet) -> String {
        self.repo.apply_changeset(changeset);
        match &mut self.state {
            DependencyState::Q1(deps) => deps.propagate(&self.repo, changeset),
            DependencyState::Q2(deps) => deps.propagate(&self.repo, changeset),
            DependencyState::Unloaded => {
                panic!("update_and_reevaluate called before load_and_initial")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::GeneratorConfig;
    use ttc_social_media::solution::run_solution;
    use ttc_social_media::GraphBlasIncremental;

    #[test]
    fn names_and_queries() {
        assert_eq!(NmfBatch::new(Query::Q1).name(), "NMF Batch");
        assert_eq!(NmfIncremental::new(Query::Q2).name(), "NMF Incremental");
        assert_eq!(NmfBatch::new(Query::Q2).query(), Query::Q2);
        assert_eq!(NmfIncremental::new(Query::Q1).query(), Query::Q1);
    }

    #[test]
    fn nmf_variants_agree_with_graphblas_on_q1() {
        let workload = datagen::generate_workload(&GeneratorConfig::tiny(221));
        let mut graphblas = GraphBlasIncremental::new(Query::Q1, false);
        let mut nmf_batch = NmfBatch::new(Query::Q1);
        let mut nmf_incremental = NmfIncremental::new(Query::Q1);
        let reference = run_solution(&mut graphblas, &workload);
        assert_eq!(reference, run_solution(&mut nmf_batch, &workload));
        assert_eq!(reference, run_solution(&mut nmf_incremental, &workload));
    }

    #[test]
    fn nmf_variants_agree_with_graphblas_on_q2() {
        let workload = datagen::generate_workload(&GeneratorConfig::tiny(223));
        let mut graphblas = GraphBlasIncremental::new(Query::Q2, false);
        let mut nmf_batch = NmfBatch::new(Query::Q2);
        let mut nmf_incremental = NmfIncremental::new(Query::Q2);
        let reference = run_solution(&mut graphblas, &workload);
        assert_eq!(reference, run_solution(&mut nmf_batch, &workload));
        assert_eq!(reference, run_solution(&mut nmf_incremental, &workload));
    }

    #[test]
    #[should_panic]
    fn update_before_load_panics() {
        let mut s = NmfIncremental::new(Query::Q1);
        let _ = s.update_and_reevaluate(&ChangeSet::default());
    }
}
