//! The incremental variant of the baseline.
//!
//! NMF's incremental engine builds, during the initial evaluation, a dependency graph
//! from the query expression so that later model changes can be propagated to exactly
//! the affected parts of the result (the paper observes that this makes NMF
//! Incremental the *slowest* tool in the load-and-initial-evaluation phase and much
//! faster in the update phase). This module models the same architecture explicitly:
//!
//! * at initialisation, per-element *dependency records* are materialised (post score
//!   contributions, per-comment liker sets, per-user subscription lists);
//! * each change notification walks the dependency records and updates only the
//!   affected scores.

use std::collections::{HashMap, HashSet};

use datagen::{ChangeOperation, ChangeSet, ElementId};
use ttc_social_media::top_k::{RankedEntry, TopKTracker};

use crate::model::ModelRepository;
use crate::q1::post_score;
use crate::q2::comment_score;

/// Dependency records for Q1: the maintained score of every post, plus the reverse
/// index from a comment to the post whose score depends on it.
#[derive(Clone, Debug)]
pub struct Q1Dependencies {
    scores: HashMap<ElementId, u64>,
    post_of_comment: HashMap<ElementId, ElementId>,
    /// Live `(user, comment)` likes, so add/remove notifications are idempotent:
    /// a like on a present edge or a retraction of an absent one must be a no-op,
    /// matching the model repository (and the coalesced streams, which may deliver
    /// a bare add for a present edge or a bare retraction for an absent one).
    likes: HashSet<(ElementId, ElementId)>,
    tracker: TopKTracker,
}

impl Q1Dependencies {
    /// Build the dependency records (the expensive part of NMF's initial phase) and
    /// return the initial result.
    pub fn initialize(repo: &ModelRepository, k: usize) -> (Self, String) {
        let mut deps = Q1Dependencies {
            scores: HashMap::with_capacity(repo.posts.len()),
            post_of_comment: HashMap::with_capacity(repo.comments.len()),
            likes: HashSet::new(),
            tracker: TopKTracker::new(k),
        };
        for &post in repo.posts.keys() {
            deps.scores.insert(post, post_score(repo, post));
        }
        for (&comment, node) in &repo.comments {
            deps.post_of_comment.insert(comment, node.root_post);
            for &liker in &node.likers {
                deps.likes.insert((liker, comment));
            }
        }
        let entries: Vec<RankedEntry> = repo
            .posts
            .iter()
            .map(|(&id, node)| RankedEntry {
                score: deps.scores[&id],
                timestamp: node.timestamp,
                id,
            })
            .collect();
        deps.tracker.rebuild(entries);
        let result = deps.tracker.format();
        (deps, result)
    }

    /// Propagate one changeset through the dependency records.
    pub fn propagate(&mut self, repo: &ModelRepository, changeset: &ChangeSet) -> String {
        let mut touched: HashSet<ElementId> = HashSet::new();
        for op in &changeset.operations {
            match op {
                ChangeOperation::AddPost { post } => {
                    self.scores.entry(post.id).or_insert(0);
                    touched.insert(post.id);
                }
                ChangeOperation::AddComment { comment } => {
                    self.post_of_comment.insert(comment.id, comment.root_post);
                    if let Some(score) = self.scores.get_mut(&comment.root_post) {
                        *score += 10;
                        touched.insert(comment.root_post);
                    }
                }
                ChangeOperation::AddLike { user, comment } => {
                    if self.likes.insert((*user, *comment)) {
                        if let Some(&post) = self.post_of_comment.get(comment) {
                            if let Some(score) = self.scores.get_mut(&post) {
                                *score += 1;
                                touched.insert(post);
                            }
                        }
                    }
                }
                ChangeOperation::RemoveLike { user, comment } => {
                    if self.likes.remove(&(*user, *comment)) {
                        if let Some(&post) = self.post_of_comment.get(comment) {
                            if let Some(score) = self.scores.get_mut(&post) {
                                *score = score.saturating_sub(1);
                                touched.insert(post);
                            }
                        }
                    }
                }
                ChangeOperation::AddUser { .. }
                | ChangeOperation::AddFriendship { .. }
                | ChangeOperation::RemoveFriendship { .. } => {}
            }
        }
        if changeset.has_removals() {
            // retracted likes decrease scores; merging is only exact under
            // monotone growth, so rebuild the candidates from the score records
            let entries: Vec<RankedEntry> = self
                .scores
                .iter()
                .map(|(&id, &score)| RankedEntry {
                    score,
                    timestamp: repo.posts.get(&id).map(|p| p.timestamp).unwrap_or(0),
                    id,
                })
                .collect();
            self.tracker.rebuild(entries);
            return self.tracker.format();
        }
        let changes: Vec<RankedEntry> = touched
            .into_iter()
            .map(|post| RankedEntry {
                score: self.scores[&post],
                timestamp: repo.posts.get(&post).map(|p| p.timestamp).unwrap_or(0),
                id: post,
            })
            .collect();
        self.tracker.merge_changes(changes);
        self.tracker.format()
    }

    /// Current top-k candidates, best first — what the sharded pipeline's
    /// cross-shard merge consumes (the single-shard result is their rendering).
    pub fn candidates(&self) -> &[RankedEntry] {
        self.tracker.current()
    }
}

/// Dependency records for Q2: the maintained score of every comment plus the reverse
/// index from a user to the comments whose score depends on that user's likes and
/// friendships.
#[derive(Clone, Debug)]
pub struct Q2Dependencies {
    scores: HashMap<ElementId, u64>,
    comments_of_user: HashMap<ElementId, Vec<ElementId>>,
    tracker: TopKTracker,
}

impl Q2Dependencies {
    /// Build the dependency records and return the initial result.
    pub fn initialize(repo: &ModelRepository, k: usize) -> (Self, String) {
        let mut deps = Q2Dependencies {
            scores: HashMap::with_capacity(repo.comments.len()),
            comments_of_user: HashMap::with_capacity(repo.users.len()),
            tracker: TopKTracker::new(k),
        };
        for (&comment, node) in &repo.comments {
            deps.scores.insert(comment, comment_score(repo, comment));
            for &liker in &node.likers {
                deps.comments_of_user
                    .entry(liker)
                    .or_default()
                    .push(comment);
            }
        }
        let entries: Vec<RankedEntry> = repo
            .comments
            .iter()
            .map(|(&id, node)| RankedEntry {
                score: deps.scores[&id],
                timestamp: node.timestamp,
                id,
            })
            .collect();
        deps.tracker.rebuild(entries);
        let result = deps.tracker.format();
        (deps, result)
    }

    /// Propagate one changeset: collect the affected comments from the dependency
    /// records, then recompute exactly those scores on the (already updated) object
    /// graph.
    pub fn propagate(&mut self, repo: &ModelRepository, changeset: &ChangeSet) -> String {
        let mut affected: HashSet<ElementId> = HashSet::new();
        for op in &changeset.operations {
            match op {
                ChangeOperation::AddComment { comment } => {
                    affected.insert(comment.id);
                }
                ChangeOperation::AddLike { user, comment } => {
                    affected.insert(*comment);
                    let liked = self.comments_of_user.entry(*user).or_default();
                    // coalesced streams may re-deliver a like on a present edge;
                    // the dependency records must not accumulate duplicates
                    if !liked.contains(comment) {
                        liked.push(*comment);
                    }
                }
                // comments liked by both endpoints may have merged (add) or split
                // (remove) components
                ChangeOperation::AddFriendship { a, b }
                | ChangeOperation::RemoveFriendship { a, b } => {
                    affected.extend(self.comments_liked_by_both(*a, *b));
                }
                ChangeOperation::RemoveLike { user, comment } => {
                    affected.insert(*comment);
                    if let Some(liked) = self.comments_of_user.get_mut(user) {
                        liked.retain(|&c| c != *comment);
                    }
                }
                ChangeOperation::AddUser { .. } | ChangeOperation::AddPost { .. } => {}
            }
        }
        let changes: Vec<RankedEntry> = affected
            .into_iter()
            .map(|comment| {
                let score = comment_score(repo, comment);
                self.scores.insert(comment, score);
                RankedEntry {
                    score,
                    timestamp: repo
                        .comments
                        .get(&comment)
                        .map(|c| c.timestamp)
                        .unwrap_or(0),
                    id: comment,
                }
            })
            .collect();
        if changeset.has_removals() {
            // retracted scores may have shrunk: rebuild the candidates from the
            // (just refreshed) score records
            let entries: Vec<RankedEntry> = self
                .scores
                .iter()
                .map(|(&id, &score)| RankedEntry {
                    score,
                    timestamp: repo.comments.get(&id).map(|c| c.timestamp).unwrap_or(0),
                    id,
                })
                .collect();
            self.tracker.rebuild(entries);
        } else {
            self.tracker.merge_changes(changes);
        }
        self.tracker.format()
    }

    /// Current top-k candidates, best first — what the sharded pipeline's
    /// cross-shard merge consumes (the single-shard result is their rendering).
    pub fn candidates(&self) -> &[RankedEntry] {
        self.tracker.current()
    }

    /// Comments present in both users' like records (whose component structure a
    /// friendship change between them can alter).
    fn comments_liked_by_both(&self, a: ElementId, b: ElementId) -> Vec<ElementId> {
        let liked_a: HashSet<ElementId> = self
            .comments_of_user
            .get(&a)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        self.comments_of_user
            .get(&b)
            .map(|liked_b| {
                liked_b
                    .iter()
                    .copied()
                    .filter(|c| liked_a.contains(c))
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ttc_social_media::graph::{paper_example_changeset, paper_example_network};

    #[test]
    fn q1_dependencies_track_paper_example() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        let (mut deps, initial) = Q1Dependencies::initialize(&repo, 3);
        assert_eq!(initial, "1|2");
        repo.apply_changeset(&paper_example_changeset());
        let updated = deps.propagate(&repo, &paper_example_changeset());
        assert_eq!(updated, "1|2");
        assert_eq!(deps.scores[&1], 37);
        assert_eq!(deps.scores[&2], 10);
    }

    #[test]
    fn q2_dependencies_track_paper_example() {
        let mut repo = ModelRepository::from_network(&paper_example_network());
        let (mut deps, initial) = Q2Dependencies::initialize(&repo, 3);
        assert_eq!(initial, "12|11|13");
        repo.apply_changeset(&paper_example_changeset());
        let updated = deps.propagate(&repo, &paper_example_changeset());
        assert_eq!(updated, "12|11|14");
        assert_eq!(deps.scores[&12], 16);
        assert_eq!(deps.scores[&14], 1);
    }

    #[test]
    fn q1_like_notifications_are_idempotent() {
        // A coalesced stream may deliver a bare AddLike for an edge that is
        // already present, or a bare RemoveLike for an edge that is absent
        // (last-op-wins coalescing). Both must be score no-ops.
        let mut repo = ModelRepository::from_network(&paper_example_network());
        let (mut deps, _) = Q1Dependencies::initialize(&repo, 3);
        let p1_score = deps.scores[&1];

        // u2 already likes c1 (id 11): re-adding must not bump the score
        let re_add = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::AddLike {
                user: 102,
                comment: 11,
            }],
        };
        repo.apply_changeset(&re_add);
        deps.propagate(&repo, &re_add);
        assert_eq!(deps.scores[&1], p1_score, "duplicate like must not count");

        // u1 does not like c1: retracting must not drop the score
        let phantom_remove = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::RemoveLike {
                user: 101,
                comment: 11,
            }],
        };
        repo.apply_changeset(&phantom_remove);
        deps.propagate(&repo, &phantom_remove);
        assert_eq!(
            deps.scores[&1], p1_score,
            "phantom retraction must not count"
        );

        // a real retraction still counts exactly once
        let real_remove = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::RemoveLike {
                user: 102,
                comment: 11,
            }],
        };
        repo.apply_changeset(&real_remove);
        deps.propagate(&repo, &real_remove);
        assert_eq!(deps.scores[&1], p1_score - 1);
    }

    #[test]
    fn q1_propagation_matches_full_recomputation() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(211));
        let mut repo = ModelRepository::from_network(&workload.initial);
        let (mut deps, _) = Q1Dependencies::initialize(&repo, 3);
        for cs in &workload.changesets {
            repo.apply_changeset(cs);
            let incremental = deps.propagate(&repo, cs);
            let batch = ttc_social_media::format_result(&crate::q1::q1_ranked(&repo, 3));
            assert_eq!(incremental, batch);
        }
    }

    #[test]
    fn q2_propagation_matches_full_recomputation() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(213));
        let mut repo = ModelRepository::from_network(&workload.initial);
        let (mut deps, _) = Q2Dependencies::initialize(&repo, 3);
        for cs in &workload.changesets {
            repo.apply_changeset(cs);
            let incremental = deps.propagate(&repo, cs);
            let batch = ttc_social_media::format_result(&crate::q2::q2_ranked(&repo, 3));
            assert_eq!(incremental, batch);
        }
    }
}
