//! Property-based tests for the GraphBLAS kernels: the sparse operations must agree
//! with a naive dense reference implementation on arbitrary inputs.

use graphblas::ops_traits::{Plus, Second, TimesConstant, ValueGt};
use graphblas::semiring::stock;
use graphblas::{ops, IndexSelection, Matrix, Vector};
use proptest::prelude::*;

/// Strategy: a list of (row, col, value) tuples inside an `nrows x ncols` box.
fn tuples_strategy(
    nrows: usize,
    ncols: usize,
    max_len: usize,
) -> impl Strategy<Value = Vec<(usize, usize, u64)>> {
    prop::collection::vec((0..nrows, 0..ncols, 0u64..100), 0..max_len)
}

fn vector_tuples_strategy(size: usize, max_len: usize) -> impl Strategy<Value = Vec<(usize, u64)>> {
    prop::collection::vec((0..size, 0u64..100), 0..max_len)
}

/// Dense reference: build an nrows x ncols array with duplicate-summing.
fn dense_matrix(nrows: usize, ncols: usize, tuples: &[(usize, usize, u64)]) -> Vec<Vec<u64>> {
    let mut d = vec![vec![0u64; ncols]; nrows];
    for &(r, c, v) in tuples {
        d[r][c] += v;
    }
    d
}

fn dense_vector(size: usize, tuples: &[(usize, u64)]) -> Vec<u64> {
    let mut d = vec![0u64; size];
    for &(i, v) in tuples {
        d[i] += v;
    }
    d
}

const NR: usize = 12;
const NC: usize = 9;
const NK: usize = 7;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn build_then_extract_tuples_roundtrips(tuples in tuples_strategy(NR, NC, 40)) {
        let m = Matrix::from_tuples(NR, NC, &tuples, Plus::new()).unwrap();
        let dense = dense_matrix(NR, NC, &tuples);
        // every extracted tuple matches the dense reference, and every non-zero dense
        // cell that was touched is present
        for (r, c, v) in m.extract_tuples() {
            prop_assert_eq!(dense[r][c], v);
        }
        let stored: std::collections::HashSet<(usize, usize)> =
            m.extract_tuples().into_iter().map(|(r, c, _)| (r, c)).collect();
        for &(r, c, _) in &tuples {
            prop_assert!(stored.contains(&(r, c)));
        }
    }

    #[test]
    fn transpose_matches_dense(tuples in tuples_strategy(NR, NC, 40)) {
        let m = Matrix::from_tuples(NR, NC, &tuples, Plus::new()).unwrap();
        let t = m.transpose();
        prop_assert_eq!(t.nvals(), m.nvals());
        for (r, c, v) in m.iter() {
            prop_assert_eq!(t.get(c, r), Some(v));
        }
    }

    #[test]
    fn mxv_matches_dense(
        m_tuples in tuples_strategy(NR, NK, 40),
        v_tuples in vector_tuples_strategy(NK, 15),
    ) {
        let a = Matrix::from_tuples(NR, NK, &m_tuples, Plus::new()).unwrap();
        let u = Vector::from_tuples(NK, &v_tuples, Plus::new()).unwrap();
        let w = ops::mxv(&a, &u, stock::plus_times::<u64>()).unwrap();

        let da = dense_matrix(NR, NK, &m_tuples);
        let du = dense_vector(NK, &v_tuples);
        for (r, da_row) in da.iter().enumerate().take(NR) {
            let expected: u64 = (0..NK)
                .filter(|&k| a.get(r, k).is_some() && u.get(k).is_some())
                .map(|k| da_row[k] * du[k])
                .sum();
            let has_overlap = (0..NK).any(|k| a.get(r, k).is_some() && u.get(k).is_some());
            if has_overlap {
                prop_assert_eq!(w.get(r), Some(expected));
            } else {
                prop_assert_eq!(w.get(r), None);
            }
        }
    }

    #[test]
    fn mxv_par_matches_serial(
        m_tuples in tuples_strategy(NR, NK, 40),
        v_tuples in vector_tuples_strategy(NK, 15),
    ) {
        let a = Matrix::from_tuples(NR, NK, &m_tuples, Plus::new()).unwrap();
        let u = Vector::from_tuples(NK, &v_tuples, Plus::new()).unwrap();
        let serial = ops::mxv(&a, &u, stock::plus_times::<u64>()).unwrap();
        let parallel = ops::mxv_par(&a, &u, stock::plus_times::<u64>()).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn mxm_matches_dense(
        a_tuples in tuples_strategy(NR, NK, 30),
        b_tuples in tuples_strategy(NK, NC, 30),
    ) {
        let a = Matrix::from_tuples(NR, NK, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NK, NC, &b_tuples, Plus::new()).unwrap();
        let c = ops::mxm(&a, &b, stock::plus_times::<u64>()).unwrap();

        for r in 0..NR {
            for j in 0..NC {
                let mut acc: Option<u64> = None;
                for k in 0..NK {
                    if let (Some(x), Some(y)) = (a.get(r, k), b.get(k, j)) {
                        acc = Some(acc.unwrap_or(0) + x * y);
                    }
                }
                prop_assert_eq!(c.get(r, j), acc);
            }
        }
    }

    #[test]
    fn mxm_par_matches_serial(
        a_tuples in tuples_strategy(NR, NK, 30),
        b_tuples in tuples_strategy(NK, NC, 30),
    ) {
        let a = Matrix::from_tuples(NR, NK, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NK, NC, &b_tuples, Plus::new()).unwrap();
        let serial = ops::mxm(&a, &b, stock::plus_times::<u64>()).unwrap();
        let parallel = ops::mxm_par(&a, &b, stock::plus_times::<u64>()).unwrap();
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn vxm_equals_mxv_on_transpose(
        m_tuples in tuples_strategy(NR, NC, 40),
        v_tuples in vector_tuples_strategy(NR, 15),
    ) {
        let a = Matrix::from_tuples(NR, NC, &m_tuples, Plus::new()).unwrap();
        let u = Vector::from_tuples(NR, &v_tuples, Plus::new()).unwrap();
        let via_vxm = ops::vxm(&u, &a, stock::plus_times::<u64>()).unwrap();
        let via_mxv = ops::mxv(&a.transpose(), &u, stock::plus_times::<u64>()).unwrap();
        prop_assert_eq!(via_vxm, via_mxv);
    }

    #[test]
    fn ewise_add_is_commutative_and_matches_dense(
        u_tuples in vector_tuples_strategy(NC, 15),
        v_tuples in vector_tuples_strategy(NC, 15),
    ) {
        let u = Vector::from_tuples(NC, &u_tuples, Plus::new()).unwrap();
        let v = Vector::from_tuples(NC, &v_tuples, Plus::new()).unwrap();
        let uv = ops::ewise_add_vector(&u, &v, Plus::new()).unwrap();
        let vu = ops::ewise_add_vector(&v, &u, Plus::new()).unwrap();
        prop_assert_eq!(&uv, &vu);

        for i in 0..NC {
            let expected = match (u.get(i), v.get(i)) {
                (Some(a), Some(b)) => Some(a + b),
                (Some(a), None) => Some(a),
                (None, Some(b)) => Some(b),
                (None, None) => None,
            };
            prop_assert_eq!(uv.get(i), expected);
        }
    }

    #[test]
    fn ewise_mult_structure_is_intersection(
        u_tuples in vector_tuples_strategy(NC, 15),
        v_tuples in vector_tuples_strategy(NC, 15),
    ) {
        let u = Vector::from_tuples(NC, &u_tuples, Plus::new()).unwrap();
        let v = Vector::from_tuples(NC, &v_tuples, Plus::new()).unwrap();
        let w = ops::ewise_mult_vector(&u, &v, graphblas::ops_traits::Times::new()).unwrap();
        for i in 0..NC {
            match (u.get(i), v.get(i)) {
                (Some(a), Some(b)) => prop_assert_eq!(w.get(i), Some(a * b)),
                _ => prop_assert_eq!(w.get(i), None),
            }
        }
    }

    #[test]
    fn reduce_rows_matches_dense(tuples in tuples_strategy(NR, NC, 40)) {
        let a = Matrix::from_tuples(NR, NC, &tuples, Plus::new()).unwrap();
        let w = ops::reduce_matrix_rows(&a, graphblas::monoid::stock::plus());
        for r in 0..NR {
            let (cols, vals) = a.row(r);
            if cols.is_empty() {
                prop_assert_eq!(w.get(r), None);
            } else {
                prop_assert_eq!(w.get(r), Some(vals.iter().sum::<u64>()));
            }
        }
        // scalar reduction equals the sum of the row reduction
        let total = ops::reduce_matrix_scalar(&a, graphblas::monoid::stock::plus());
        let via_rows: u64 = w.values().iter().sum();
        prop_assert_eq!(total, via_rows);
    }

    #[test]
    fn select_apply_preserve_or_filter_structure(v_tuples in vector_tuples_strategy(NC, 15)) {
        let u = Vector::from_tuples(NC, &v_tuples, Plus::new()).unwrap();
        let scaled = ops::apply_vector(&u, TimesConstant::new(10u64));
        prop_assert_eq!(scaled.indices(), u.indices());
        for (i, v) in u.iter() {
            prop_assert_eq!(scaled.get(i), Some(v * 10));
        }
        let filtered = ops::select_vector(&u, ValueGt::new(50u64));
        for (i, v) in filtered.iter() {
            prop_assert!(v > 50);
            prop_assert_eq!(u.get(i), Some(v));
        }
        prop_assert!(filtered.nvals() <= u.nvals());
    }

    #[test]
    fn extract_submatrix_matches_direct_lookup(
        tuples in tuples_strategy(NR, NC, 40),
        rows in prop::collection::vec(0..NR, 1..6),
        cols in prop::collection::vec(0..NC, 1..6),
    ) {
        // deduplicate the selections (GraphBLAS allows duplicates, our map-based
        // implementation requires distinct column targets)
        let mut rows = rows;
        rows.sort_unstable();
        rows.dedup();
        let mut cols = cols;
        cols.sort_unstable();
        cols.dedup();

        let a = Matrix::from_tuples(NR, NC, &tuples, Plus::new()).unwrap();
        let sub = ops::extract_submatrix(
            &a,
            &IndexSelection::List(&rows),
            &IndexSelection::List(&cols),
        )
        .unwrap();
        prop_assert_eq!(sub.nrows(), rows.len());
        prop_assert_eq!(sub.ncols(), cols.len());
        for (new_r, &old_r) in rows.iter().enumerate() {
            for (new_c, &old_c) in cols.iter().enumerate() {
                prop_assert_eq!(sub.get(new_r, new_c), a.get(old_r, old_c));
            }
        }
    }

    #[test]
    fn insert_tuples_matches_rebuild(
        base in tuples_strategy(NR, NC, 30),
        extra in tuples_strategy(NR, NC, 15),
    ) {
        let mut incremental = Matrix::from_tuples(NR, NC, &base, Plus::new()).unwrap();
        incremental.insert_tuples(&extra, Plus::new()).unwrap();

        let mut all = base.clone();
        all.extend_from_slice(&extra);
        let rebuilt = Matrix::from_tuples(NR, NC, &all, Plus::new()).unwrap();
        prop_assert_eq!(incremental, rebuilt);
    }

    #[test]
    fn vector_set_then_get(v_tuples in vector_tuples_strategy(NC, 20)) {
        let mut v = Vector::new(NC);
        let mut reference = std::collections::HashMap::new();
        for &(i, val) in &v_tuples {
            v.set(i, val).unwrap();
            reference.insert(i, val);
        }
        prop_assert_eq!(v.nvals(), reference.len());
        for (i, val) in reference {
            prop_assert_eq!(v.get(i), Some(val));
        }
    }

    #[test]
    fn masked_assign_only_touches_mask(
        source in vector_tuples_strategy(NC, 15),
        mask_positions in prop::collection::vec(0..NC, 0..8),
    ) {
        let source_vec = Vector::from_tuples(NC, &source, Plus::new()).unwrap();
        let mask_tuples: Vec<(usize, bool)> = mask_positions.iter().map(|&i| (i, true)).collect();
        let mask_vec = Vector::from_tuples(NC, &mask_tuples, Second::new()).unwrap();
        let mut target = Vector::<u64>::new(NC);
        ops::assign_vector_masked(
            &mut target,
            &graphblas::VectorMask::structural(&mask_vec),
            &source_vec,
        )
        .unwrap();
        for (i, v) in target.iter() {
            prop_assert!(mask_vec.contains(i));
            prop_assert_eq!(source_vec.get(i), Some(v));
        }
    }
}

// ---------------------------------------------------------------------------
// Properties of the extended operation set (kronecker, concat/split, eWiseUnion,
// parallel kernels). Each parallel kernel must be bit-identical to its serial twin,
// and the structural operations must satisfy their defining algebraic identities.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kronecker_matches_dense_definition(
        a_tuples in tuples_strategy(5, 4, 12),
        b_tuples in tuples_strategy(3, 4, 10),
    ) {
        let a = Matrix::from_tuples(5, 4, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(3, 4, &b_tuples, Plus::new()).unwrap();
        let c = ops::kronecker(&a, &b, graphblas::ops_traits::Times::new()).unwrap();
        prop_assert_eq!(c.nrows(), a.nrows() * b.nrows());
        prop_assert_eq!(c.ncols(), a.ncols() * b.ncols());
        prop_assert_eq!(c.nvals(), a.nvals() * b.nvals());
        for (ar, ac_, av) in a.iter() {
            for (br, bc, bv) in b.iter() {
                let expected = av.wrapping_mul(bv);
                prop_assert_eq!(
                    c.get(ar * b.nrows() + br, ac_ * b.ncols() + bc),
                    Some(expected)
                );
            }
        }
    }

    #[test]
    fn split_concat_roundtrip(
        tuples in tuples_strategy(NR, NC, 40),
        cut_r in 1..NR,
        cut_c in 1..NC,
    ) {
        let m = Matrix::from_tuples(NR, NC, &tuples, Plus::new()).unwrap();
        let tiles = ops::split(&m, &[cut_r, NR - cut_r], &[cut_c, NC - cut_c]).unwrap();
        let grid: Vec<Vec<&Matrix<u64>>> = tiles.iter().map(|row| row.iter().collect()).collect();
        let back = ops::concat(&grid).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn concat_rows_preserves_every_entry(
        top in tuples_strategy(4, NC, 20),
        bottom in tuples_strategy(6, NC, 20),
    ) {
        let a = Matrix::from_tuples(4, NC, &top, Plus::new()).unwrap();
        let b = Matrix::from_tuples(6, NC, &bottom, Plus::new()).unwrap();
        let stacked = ops::concat_rows(&[&a, &b]).unwrap();
        prop_assert_eq!(stacked.nrows(), 10);
        prop_assert_eq!(stacked.nvals(), a.nvals() + b.nvals());
        for (r, c, v) in a.iter() {
            prop_assert_eq!(stacked.get(r, c), Some(v));
        }
        for (r, c, v) in b.iter() {
            prop_assert_eq!(stacked.get(r + 4, c), Some(v));
        }
    }

    #[test]
    fn ewise_union_with_zero_fill_matches_ewise_add(
        a_tuples in tuples_strategy(NR, NC, 30),
        b_tuples in tuples_strategy(NR, NC, 30),
    ) {
        let a = Matrix::from_tuples(NR, NC, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NR, NC, &b_tuples, Plus::new()).unwrap();
        let union = ops::ewise_union_matrix(&a, 0u64, &b, 0u64, Plus::new()).unwrap();
        let add = ops::ewise_add_matrix(&a, &b, Plus::new()).unwrap();
        prop_assert_eq!(union, add);
    }

    #[test]
    fn ewise_union_vector_structure_is_union(
        u_tuples in vector_tuples_strategy(NC, 15),
        v_tuples in vector_tuples_strategy(NC, 15),
    ) {
        let u = Vector::from_tuples(NC, &u_tuples, Plus::new()).unwrap();
        let v = Vector::from_tuples(NC, &v_tuples, Plus::new()).unwrap();
        let w = ops::ewise_union_vector(&u, 7u64, &v, 7u64, Plus::new()).unwrap();
        for i in 0..NC {
            prop_assert_eq!(w.contains(i), u.contains(i) || v.contains(i));
        }
    }

    #[test]
    fn parallel_elementwise_kernels_match_serial(
        a_tuples in tuples_strategy(NR, NC, 40),
        b_tuples in tuples_strategy(NR, NC, 40),
    ) {
        let a = Matrix::from_tuples(NR, NC, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NR, NC, &b_tuples, Plus::new()).unwrap();
        prop_assert_eq!(
            ops::ewise_add_matrix_par(&a, &b, Plus::new()).unwrap(),
            ops::ewise_add_matrix(&a, &b, Plus::new()).unwrap()
        );
        prop_assert_eq!(
            ops::ewise_mult_matrix_par(&a, &b, graphblas::ops_traits::Times::new()).unwrap(),
            ops::ewise_mult_matrix(&a, &b, graphblas::ops_traits::Times::new()).unwrap()
        );
    }

    #[test]
    fn parallel_apply_select_transpose_match_serial(
        a_tuples in tuples_strategy(NR, NC, 40),
        threshold in 0u64..120,
    ) {
        let a = Matrix::from_tuples(NR, NC, &a_tuples, Plus::new()).unwrap();
        prop_assert_eq!(
            ops::apply_matrix_par(&a, TimesConstant::new(3u64)),
            ops::apply_matrix(&a, TimesConstant::new(3u64))
        );
        prop_assert_eq!(
            ops::select_matrix_par(&a, ValueGt::new(threshold)),
            ops::select_matrix(&a, ValueGt::new(threshold))
        );
        prop_assert_eq!(ops::transpose_par(&a), a.transpose());
    }

    #[test]
    fn kronecker_with_identity_is_block_identity(
        tuples in tuples_strategy(4, 4, 12),
    ) {
        // (I_1 ⊗ A) = A
        let a = Matrix::from_tuples(4, 4, &tuples, Plus::new()).unwrap();
        let one = Matrix::from_tuples(1, 1, &[(0usize, 0usize, 1u64)], Plus::new()).unwrap();
        let left = ops::kronecker(&one, &a, graphblas::ops_traits::Times::new()).unwrap();
        prop_assert_eq!(left, a.clone());
        let right = ops::kronecker(&a, &one, graphblas::ops_traits::Times::new()).unwrap();
        prop_assert_eq!(right, a);
    }
}

// ---------------------------------------------------------------------------
// Properties of the masked multiplication kernels (mask push-down). Every masked
// kernel must equal its unmasked serial counterpart followed by a post-filter, and
// every parallel masked variant must be bit-identical to its serial twin — for
// structural, value and complemented masks alike. The SPA Gustavson kernel must also
// agree with the retained gather–sort–combine reference on arbitrary inputs.
// ---------------------------------------------------------------------------

/// The four mask interpretations to exercise: (value-kind, complemented).
const MASK_CONFIGS: [(bool, bool); 4] =
    [(false, false), (false, true), (true, false), (true, true)];

fn matrix_mask_for(
    m: &Matrix<u64>,
    value_kind: bool,
    complemented: bool,
) -> graphblas::MatrixMask<'_, u64> {
    let mask = if value_kind {
        graphblas::MatrixMask::value(m)
    } else {
        graphblas::MatrixMask::structural(m)
    };
    if complemented {
        mask.complement()
    } else {
        mask
    }
}

fn vector_mask_for(
    v: &Vector<u64>,
    value_kind: bool,
    complemented: bool,
) -> graphblas::VectorMask<'_, u64> {
    let mask = if value_kind {
        graphblas::VectorMask::value(v)
    } else {
        graphblas::VectorMask::structural(v)
    };
    if complemented {
        mask.complement()
    } else {
        mask
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mxm_matches_gather_sort_reference(
        a_tuples in tuples_strategy(NR, NK, 30),
        b_tuples in tuples_strategy(NK, NC, 30),
    ) {
        let a = Matrix::from_tuples(NR, NK, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NK, NC, &b_tuples, Plus::new()).unwrap();
        prop_assert_eq!(
            ops::mxm(&a, &b, stock::plus_times::<u64>()).unwrap(),
            ops::mxm_reference(&a, &b, stock::plus_times::<u64>()).unwrap()
        );
    }

    #[test]
    fn mxm_masked_equals_serial_then_filter(
        a_tuples in tuples_strategy(NR, NK, 30),
        b_tuples in tuples_strategy(NK, NC, 30),
        m_tuples in tuples_strategy(NR, NC, 40),
    ) {
        let a = Matrix::from_tuples(NR, NK, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NK, NC, &b_tuples, Plus::new()).unwrap();
        let mask_matrix = Matrix::from_tuples(NR, NC, &m_tuples, Plus::new()).unwrap();
        for (value_kind, complemented) in MASK_CONFIGS {
            let mask = matrix_mask_for(&mask_matrix, value_kind, complemented);
            let masked = ops::mxm_masked(&mask, &a, &b, stock::plus_times::<u64>()).unwrap();
            // serial-then-filter reference (post-filters the gather–sort kernel)
            let reference =
                ops::mxm_masked_postfilter(&mask, &a, &b, stock::plus_times::<u64>()).unwrap();
            prop_assert_eq!(&masked, &reference);
            // parallel masked variant is identical
            let parallel =
                ops::mxm_masked_par(&mask, &a, &b, stock::plus_times::<u64>()).unwrap();
            prop_assert_eq!(&masked, &parallel);
        }
    }

    #[test]
    fn vxm_masked_equals_serial_then_filter(
        m_tuples in tuples_strategy(NR, NC, 40),
        v_tuples in vector_tuples_strategy(NR, 15),
        mask_tuples in vector_tuples_strategy(NC, 15),
    ) {
        let a = Matrix::from_tuples(NR, NC, &m_tuples, Plus::new()).unwrap();
        let u = Vector::from_tuples(NR, &v_tuples, Plus::new()).unwrap();
        let mask_vec = Vector::from_tuples(NC, &mask_tuples, Plus::new()).unwrap();
        for (value_kind, complemented) in MASK_CONFIGS {
            let mask = vector_mask_for(&mask_vec, value_kind, complemented);
            let masked = ops::vxm_masked(&mask, &u, &a, stock::plus_times::<u64>()).unwrap();
            // serial-then-filter reference
            let mut reference = ops::vxm(&u, &a, stock::plus_times::<u64>()).unwrap();
            reference.retain(|i, _| mask.allows(i));
            prop_assert_eq!(&masked, &reference);
            // parallel masked variant is identical
            let parallel =
                ops::vxm_masked_par(&mask, &u, &a, stock::plus_times::<u64>()).unwrap();
            prop_assert_eq!(&masked, &parallel);
        }
    }

    #[test]
    fn mxv_masked_equals_serial_then_filter(
        m_tuples in tuples_strategy(NR, NC, 40),
        v_tuples in vector_tuples_strategy(NC, 15),
        mask_tuples in vector_tuples_strategy(NR, 15),
    ) {
        let a = Matrix::from_tuples(NR, NC, &m_tuples, Plus::new()).unwrap();
        let u = Vector::from_tuples(NC, &v_tuples, Plus::new()).unwrap();
        let mask_vec = Vector::from_tuples(NR, &mask_tuples, Plus::new()).unwrap();
        for (value_kind, complemented) in MASK_CONFIGS {
            let mask = vector_mask_for(&mask_vec, value_kind, complemented);
            let masked = ops::mxv_masked(&mask, &a, &u, stock::plus_times::<u64>()).unwrap();
            // serial-then-filter reference
            let mut reference = ops::mxv(&a, &u, stock::plus_times::<u64>()).unwrap();
            reference.retain(|i, _| mask.allows(i));
            prop_assert_eq!(&masked, &reference);
            // parallel masked variant is identical
            let parallel =
                ops::mxv_masked_par(&mask, &a, &u, stock::plus_times::<u64>()).unwrap();
            prop_assert_eq!(&masked, &parallel);
        }
    }
}

/// Strategy: a sorted, deduplicated key slice drawn from one of the distributions the
/// learned index has to cope with — uniform, clustered runs, exponential gaps, or a
/// single key. (The vendored proptest has no `prop_oneof!`, so the distribution is
/// picked by a generated mode selector.)
fn sorted_keys_strategy() -> impl Strategy<Value = Vec<usize>> {
    (
        0u8..4,
        prop::collection::vec((0usize..5_000, 1usize..40), 1..60),
        0usize..1_000,
    )
        .prop_map(|(mode, raw, start)| {
            let mut keys: Vec<usize> = match mode {
                // uniform: the raw draws themselves
                0 => raw.iter().map(|&(k, _)| k).collect(),
                // clustered: short dense runs separated by irregular gaps
                1 => {
                    let mut keys = Vec::new();
                    let mut base = start;
                    for &(gap, run) in raw.iter().take(12) {
                        base += 100 + gap % 50 * 37;
                        for i in 0..run {
                            keys.push(base + i);
                        }
                    }
                    keys
                }
                // exponential gaps: doubling distance between keys
                2 => {
                    let mut keys = Vec::new();
                    let mut k = start;
                    let mut gap = 1usize;
                    for _ in 0..raw.len().min(30) {
                        keys.push(k);
                        k += gap;
                        gap = gap.saturating_mul(2).min(1 << 20);
                    }
                    keys
                }
                // single key
                _ => vec![start],
            };
            keys.sort_unstable();
            keys.dedup();
            keys
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn learned_locate_agrees_with_binary_search(
        keys in sorted_keys_strategy(),
        probes in prop::collection::vec(0usize..6_000, 1..40),
        epsilon in 1usize..64,
    ) {
        let segments = graphblas::LearnedSegments::build(&keys, epsilon);
        // every stored key is found at its exact position
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(segments.locate(&keys, k), Some(i));
        }
        // arbitrary probes agree with binary_search, hit or miss
        for &p in &probes {
            prop_assert_eq!(segments.locate(&keys, p), keys.binary_search(&p).ok());
        }
    }

    #[test]
    fn gapped_dynamic_matrix_matches_csr_schedule(
        base_tuples in tuples_strategy(NR, NC, 30),
        ops_list in prop::collection::vec(
            (0..NR, 0..NC, 1u64..50, 0u8..4), 0..120),
    ) {
        // the same interleaved insert/read/compact schedule applied to a plain CSR
        // matrix and to DynamicMatrix in both delta layouts must stay byte-identical
        let base = Matrix::from_tuples(NR, NC, &base_tuples, Plus::new()).unwrap();
        let mut csr = base.clone();
        let mut sorted = graphblas::DynamicMatrix::with_layout(
            base.clone(), graphblas::DeltaLayout::Sorted);
        let mut gapped = graphblas::DynamicMatrix::with_layout(
            base, graphblas::DeltaLayout::Gapped);
        for &(r, c, v, action) in &ops_list {
            match action {
                0 | 1 => {
                    csr.set(r, c, v).unwrap();
                    sorted.set(r, c, v).unwrap();
                    gapped.set(r, c, v).unwrap();
                }
                2 => {
                    csr.accumulate(r, c, v, Plus::new()).unwrap();
                    sorted.accumulate(r, c, v, Plus::new()).unwrap();
                    gapped.accumulate(r, c, v, Plus::new()).unwrap();
                }
                _ => {
                    prop_assert_eq!(csr.get(r, c), gapped.get(r, c));
                    if v % 7 == 0 {
                        sorted.compact();
                        gapped.compact();
                    }
                }
            }
            prop_assert_eq!(csr.nvals(), gapped.nvals());
        }
        prop_assert_eq!(&sorted.to_matrix(), &csr);
        prop_assert_eq!(&gapped.to_matrix(), &csr);
    }

    #[test]
    fn mxm_masked_matches_reference_spa(
        a_tuples in tuples_strategy(NR, NK, 30),
        b_tuples in tuples_strategy(NK, NC, 30),
        m_tuples in tuples_strategy(NR, NC, 40),
    ) {
        // the stamped SoA accumulators must be byte-identical to the frozen AoS
        // reference kernel, for plain and complemented masks
        let a = Matrix::from_tuples(NR, NK, &a_tuples, Plus::new()).unwrap();
        let b = Matrix::from_tuples(NK, NC, &b_tuples, Plus::new()).unwrap();
        let mask_matrix = Matrix::from_tuples(NR, NC, &m_tuples, Plus::new()).unwrap();
        for complemented in [false, true] {
            let mask = if complemented {
                graphblas::MatrixMask::structural(&mask_matrix).complement()
            } else {
                graphblas::MatrixMask::structural(&mask_matrix)
            };
            prop_assert_eq!(
                ops::mxm_masked(&mask, &a, &b, stock::plus_times::<u64>()).unwrap(),
                ops::mxm_masked_reference_spa(&mask, &a, &b, stock::plus_times::<u64>())
                    .unwrap()
            );
        }
    }

    #[test]
    fn frozen_index_never_changes_results(
        tuples in tuples_strategy(4, 600, 250),
        v_tuples in vector_tuples_strategy(600, 12),
        probes in prop::collection::vec((0usize..4, 0usize..600), 1..30),
    ) {
        // freezing the learned row index is a pure cache: get() and the mxv probe
        // path must answer exactly as the unfrozen matrix does
        let plain = Matrix::from_tuples(4, 600, &tuples, Plus::new()).unwrap();
        let mut frozen = plain.clone();
        frozen.freeze_index();
        for &(r, c) in &probes {
            prop_assert_eq!(frozen.get(r, c), plain.get(r, c));
        }
        let u = Vector::from_tuples(600, &v_tuples, Plus::new()).unwrap();
        prop_assert_eq!(
            ops::mxv(&frozen, &u, stock::plus_times::<u64>()).unwrap(),
            ops::mxv(&plain, &u, stock::plus_times::<u64>()).unwrap()
        );
        prop_assert_eq!(&frozen, &plain);
    }
}
