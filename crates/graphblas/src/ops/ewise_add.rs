//! Element-wise "addition" over the set **union** of the structures
//! (`GrB_eWiseAdd`).
//!
//! Positions present in only one operand copy that operand's value; positions present
//! in both are combined with the supplied binary operator.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;
use crate::vector::Vector;

/// `w = u ⊕ v` over the union of the stored positions.
pub fn ewise_add_vector<T, Op>(u: &Vector<T>, v: &Vector<T>, op: Op) -> Result<Vector<T>>
where
    T: Scalar,
    Op: BinaryOp<T, T, Output = T>,
{
    if u.size() != v.size() {
        return Err(Error::DimensionMismatch {
            context: "ewise_add_vector",
            expected: u.size(),
            actual: v.size(),
        });
    }
    let (ui, uv) = (u.indices(), u.values());
    let (vi, vv) = (v.indices(), v.values());
    let mut indices = Vec::with_capacity(ui.len() + vi.len());
    let mut values = Vec::with_capacity(ui.len() + vi.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ui.len() || j < vi.len() {
        if j >= vi.len() || (i < ui.len() && ui[i] < vi[j]) {
            indices.push(ui[i]);
            values.push(uv[i]);
            i += 1;
        } else if i >= ui.len() || vi[j] < ui[i] {
            indices.push(vi[j]);
            values.push(vv[j]);
            j += 1;
        } else {
            indices.push(ui[i]);
            values.push(op.apply(uv[i], vv[j]));
            i += 1;
            j += 1;
        }
    }
    Ok(Vector::from_sorted_parts(u.size(), indices, values))
}

/// `C = A ⊕ B` over the union of the stored positions, row by row.
pub fn ewise_add_matrix<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> Result<Matrix<T>>
where
    T: Scalar,
    Op: BinaryOp<T, T, Output = T>,
{
    super::check_same_shape("ewise_add_matrix (rows)", "ewise_add_matrix (cols)", a, b)?;
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx: Vec<Index> = Vec::with_capacity(a.nvals() + b.nvals());
    let mut values: Vec<T> = Vec::with_capacity(a.nvals() + b.nvals());
    row_ptr.push(0);
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                col_idx.push(ac[i]);
                values.push(av[i]);
                i += 1;
            } else if i >= ac.len() || bc[j] < ac[i] {
                col_idx.push(bc[j]);
                values.push(bv[j]);
                j += 1;
            } else {
                col_idx.push(ac[i]);
                values.push(op.apply(av[i], bv[j]));
                i += 1;
                j += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        row_ptr,
        col_idx,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Max, Plus, Second};

    #[test]
    fn vector_union_semantics() {
        let u = Vector::from_tuples(6, &[(0, 1u64), (2, 2), (4, 4)], Plus::new()).unwrap();
        let v = Vector::from_tuples(6, &[(2, 10u64), (3, 3)], Plus::new()).unwrap();
        let w = ewise_add_vector(&u, &v, Plus::new()).unwrap();
        assert_eq!(w.extract_tuples(), vec![(0, 1), (2, 12), (3, 3), (4, 4)]);
    }

    #[test]
    fn vector_second_overwrites_on_overlap() {
        // "new scores overwrite existing ones" — the paper's merge of top-3 results
        let old = Vector::from_tuples(4, &[(0, 5u64), (1, 7)], Plus::new()).unwrap();
        let new = Vector::from_tuples(4, &[(1, 9u64), (3, 2)], Plus::new()).unwrap();
        let merged = ewise_add_vector(&old, &new, Second::new()).unwrap();
        assert_eq!(merged.extract_tuples(), vec![(0, 5), (1, 9), (3, 2)]);
    }

    #[test]
    fn vector_dimension_mismatch() {
        let u = Vector::<u64>::new(3);
        let v = Vector::<u64>::new(4);
        assert!(ewise_add_vector(&u, &v, Plus::new()).is_err());
    }

    #[test]
    fn vector_with_empty_operand_copies_other() {
        let u = Vector::from_tuples(3, &[(1, 5u64)], Plus::new()).unwrap();
        let empty = Vector::<u64>::new(3);
        assert_eq!(ewise_add_vector(&u, &empty, Plus::new()).unwrap(), u);
        assert_eq!(ewise_add_vector(&empty, &u, Plus::new()).unwrap(), u);
    }

    #[test]
    fn matrix_union_semantics() {
        let a = Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (1, 2, 3)], Plus::new()).unwrap();
        let b = Matrix::from_tuples(2, 3, &[(0, 0, 5u64), (0, 1, 2)], Plus::new()).unwrap();
        let c = ewise_add_matrix(&a, &b, Plus::new()).unwrap();
        assert_eq!(c.get(0, 0), Some(6));
        assert_eq!(c.get(0, 1), Some(2));
        assert_eq!(c.get(1, 2), Some(3));
        assert_eq!(c.nvals(), 3);
    }

    #[test]
    fn matrix_max_combiner() {
        let a = Matrix::from_tuples(1, 2, &[(0, 0, 9u64), (0, 1, 1)], Plus::new()).unwrap();
        let b = Matrix::from_tuples(1, 2, &[(0, 0, 3u64), (0, 1, 7)], Plus::new()).unwrap();
        let c = ewise_add_matrix(&a, &b, Max::new()).unwrap();
        assert_eq!(c.get(0, 0), Some(9));
        assert_eq!(c.get(0, 1), Some(7));
    }

    #[test]
    fn matrix_dimension_mismatch() {
        let a: Matrix<u64> = Matrix::new(2, 2);
        let b: Matrix<u64> = Matrix::new(2, 3);
        assert!(ewise_add_matrix(&a, &b, Plus::new()).is_err());
    }
}
