//! Matrix–vector multiplication `w⟨m⟩ = A ⊕.⊗ u` (`GrB_mxv`).
//!
//! This is the "pull" direction: every output element is a sorted-merge dot product
//! of one CSR row with `u`, so no accumulator is needed. The mask is pushed down at
//! row granularity — disallowed rows are skipped before their dot product is
//! computed, the strongest form of push-down this kernel admits.

use rayon::prelude::*;

use crate::error::{Error, Result};
use crate::index::LearnedSegments;
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;
use crate::vector::Vector;

/// A learned-probe dot product pays one `locate` per `u` entry; the merge walks the
/// whole row. Probe only when the row is this many times wider than `u`.
const PROBE_WIDTH_RATIO: usize = 8;

/// Compute one output element: the semiring "dot product" of one row of `A` with `u`.
///
/// Default is a sorted merge of the two index lists. When the matrix carries a frozen
/// learned index for this row ([`Matrix::row_segments`]) and the row is far wider
/// than `u`, the kernel instead probes each `u` entry through
/// [`LearnedSegments::locate`] — `O(|u|)` bounded-window probes instead of an
/// `O(|row| + |u|)` walk. `u` is sorted, so products still accumulate in increasing
/// column order and the result is bit-identical to the merge.
#[inline]
fn row_dot<A, B, S>(
    cols: &[Index],
    vals: &[A],
    segments: Option<&LearnedSegments>,
    u: &Vector<B>,
    semiring: &S,
) -> Option<S::Output>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    let u_idx = u.indices();
    let u_val = u.values();

    let mut acc: Option<S::Output> = None;
    if let Some(model) = segments {
        if !u_idx.is_empty() && cols.len() >= PROBE_WIDTH_RATIO * u_idx.len() {
            for (j, &col) in u_idx.iter().enumerate() {
                if let Some(pos) = model.locate(cols, col) {
                    let product = mul.apply(vals[pos], u_val[j]);
                    acc = Some(match acc {
                        None => product,
                        Some(a) => add.apply(a, product),
                    });
                }
            }
            return acc;
        }
    }
    let (mut i, mut j) = (0usize, 0usize);
    while i < cols.len() && j < u_idx.len() {
        match cols[i].cmp(&u_idx[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let product = mul.apply(vals[i], u_val[j]);
                acc = Some(match acc {
                    None => product,
                    Some(a) => add.apply(a, product),
                });
                i += 1;
                j += 1;
            }
        }
    }
    acc
}

fn check_dims<A, B>(a: &Matrix<A>, u: &Vector<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
{
    if a.ncols() != u.size() {
        return Err(Error::DimensionMismatch {
            context: "mxv",
            expected: a.ncols(),
            actual: u.size(),
        });
    }
    Ok(())
}

/// `w = A ⊕.⊗ u`: multiply a sparse matrix by a sparse vector over a semiring.
///
/// The output stores an element for row `i` only if the structural intersection of
/// row `i` and `u` is non-empty (no implicit zeros are materialised).
pub fn mxv<A, B, S>(a: &Matrix<A>, u: &Vector<B>, semiring: S) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(a, u)?;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        if cols.is_empty() {
            continue;
        }
        if let Some(v) = row_dot(cols, vals, a.row_segments(r), u, &semiring) {
            indices.push(r);
            values.push(v);
        }
    }
    Ok(Vector::from_sorted_parts(a.nrows(), indices, values))
}

/// Check that the operands conform and that the mask lives in the output (row) space.
fn check_mask_dims<A, B, M>(mask: &VectorMask<'_, M>, a: &Matrix<A>, u: &Vector<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
{
    check_dims(a, u)?;
    if mask.size() != a.nrows() {
        return Err(Error::DimensionMismatch {
            context: "mxv (mask)",
            expected: a.nrows(),
            actual: mask.size(),
        });
    }
    Ok(())
}

/// Masked variant: `w⟨m⟩ = A ⊕.⊗ u`. Rows not allowed by the mask are skipped
/// entirely (and therefore not even computed).
pub fn mxv_masked<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    a: &Matrix<A>,
    u: &Vector<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_mask_dims(mask, a, u)?;
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        if !mask.allows(r) {
            continue;
        }
        let (cols, vals) = a.row(r);
        if let Some(v) = row_dot(cols, vals, a.row_segments(r), u, &semiring) {
            indices.push(r);
            values.push(v);
        }
    }
    Ok(Vector::from_sorted_parts(a.nrows(), indices, values))
}

/// Parallel (rayon) variant of [`mxv_masked`], used by [`super::par::mxv_masked_par`]:
/// the mask still skips disallowed rows before any dot product is formed.
pub(crate) fn mxv_masked_par_impl<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    a: &Matrix<A>,
    u: &Vector<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue + Sync,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    check_mask_dims(mask, a, u)?;
    let results: Vec<(Index, S::Output)> = (0..a.nrows())
        .into_par_iter()
        .filter_map(|r| {
            if !mask.allows(r) {
                return None;
            }
            let (cols, vals) = a.row(r);
            row_dot(cols, vals, a.row_segments(r), u, &semiring).map(|v| (r, v))
        })
        .collect();
    let mut indices = Vec::with_capacity(results.len());
    let mut values = Vec::with_capacity(results.len());
    for (i, v) in results {
        indices.push(i);
        values.push(v);
    }
    Ok(Vector::from_sorted_parts(a.nrows(), indices, values))
}

/// Parallel (rayon) variant of [`mxv`]: output rows are computed independently.
pub fn mxv_par<A, B, S>(a: &Matrix<A>, u: &Vector<B>, semiring: S) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    check_dims(a, u)?;
    let results: Vec<(Index, S::Output)> = (0..a.nrows())
        .into_par_iter()
        .filter_map(|r| {
            let (cols, vals) = a.row(r);
            if cols.is_empty() {
                return None;
            }
            row_dot(cols, vals, a.row_segments(r), u, &semiring).map(|v| (r, v))
        })
        .collect();
    let mut indices = Vec::with_capacity(results.len());
    let mut values = Vec::with_capacity(results.len());
    for (i, v) in results {
        indices.push(i);
        values.push(v);
    }
    Ok(Vector::from_sorted_parts(a.nrows(), indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;
    use crate::semiring::stock;

    fn matrix() -> Matrix<u64> {
        // 3x4
        // [ .  2  .  1 ]
        // [ 3  .  .  . ]
        // [ .  .  .  . ]
        Matrix::from_tuples(3, 4, &[(0, 1, 2u64), (0, 3, 1), (1, 0, 3)], Plus::new()).unwrap()
    }

    fn vector() -> Vector<u64> {
        Vector::from_tuples(4, &[(1, 10u64), (3, 5)], Plus::new()).unwrap()
    }

    #[test]
    fn mxv_plus_times() {
        let w = mxv(&matrix(), &vector(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.size(), 3);
        assert_eq!(w.get(0), Some(2 * 10 + 5));
        assert_eq!(w.get(1), None); // row 1 only hits column 0, not stored in u
        assert_eq!(w.get(2), None); // empty row
        assert_eq!(w.nvals(), 1);
    }

    #[test]
    fn mxv_plus_second_sums_vector_values() {
        let w = mxv(&matrix(), &vector(), stock::plus_second::<u64>()).unwrap();
        assert_eq!(w.get(0), Some(15));
    }

    #[test]
    fn mxv_dimension_mismatch() {
        let u = Vector::<u64>::new(3);
        assert!(mxv(&matrix(), &u, stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxv_masked_skips_disallowed_rows() {
        let mask_vec =
            Vector::from_tuples(3, &[(1, true)], crate::ops_traits::First::new()).unwrap();
        let mask = VectorMask::structural(&mask_vec);
        let w = mxv_masked(&mask, &matrix(), &vector(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.nvals(), 0); // row 0 would have a value but is masked out

        let mask = VectorMask::structural(&mask_vec).complement();
        let w = mxv_masked(&mask, &matrix(), &vector(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.get(0), Some(25));
    }

    #[test]
    fn mxv_masked_mask_dimension_checked() {
        let mask_vec = Vector::<bool>::new(7);
        let mask = VectorMask::structural(&mask_vec);
        assert!(mxv_masked(&mask, &matrix(), &vector(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxv_par_matches_serial() {
        let a = matrix();
        let u = vector();
        let serial = mxv(&a, &u, stock::plus_times::<u64>()).unwrap();
        let parallel = mxv_par(&a, &u, stock::plus_times::<u64>()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn mxv_empty_vector_gives_empty_result() {
        let u = Vector::<u64>::new(4);
        let w = mxv(&matrix(), &u, stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.nvals(), 0);
    }

    #[test]
    fn mxv_learned_probe_matches_merge() {
        // one wide row (past the learned-index cutoff) and a narrow u: the frozen
        // matrix takes the probe path, the unfrozen copy takes the merge path
        let tuples: Vec<(usize, usize, u64)> = (0..500).map(|c| (0, c * 3, c as u64 + 1)).collect();
        let mut frozen = Matrix::from_tuples(2, 1500, &tuples, Plus::new()).unwrap();
        let plain = frozen.clone();
        frozen.freeze_index();
        assert!(frozen.has_frozen_index());
        // hits (multiples of 3) and misses interleaved, well under width/8 entries
        let u_tuples: Vec<(usize, u64)> = (0..20).map(|i| (i * 71, i as u64 + 2)).collect();
        let u = Vector::from_tuples(1500, &u_tuples, Plus::new()).unwrap();
        let probed = mxv(&frozen, &u, stock::plus_times::<u64>()).unwrap();
        let merged = mxv(&plain, &u, stock::plus_times::<u64>()).unwrap();
        assert_eq!(probed, merged);
        assert!(probed.nvals() > 0);
    }
}
