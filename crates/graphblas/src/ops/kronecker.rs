//! Kronecker product of two sparse matrices (`GrB_kronecker`).
//!
//! The Kronecker product of an `m×n` matrix `A` and a `p×q` matrix `B` is the
//! `(m·p)×(n·q)` matrix whose block at block-row `i`, block-column `j` is `A(i,j) ⊗ B`.
//! It is the standard construction for synthetic power-law graph generators (R-MAT /
//! Graph500 style), which is how the benchmark harness uses it to build scale-free
//! matrices for the GraphBLAS micro-benches.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

/// `C = A ⊗ B` where the scalar products are formed with `mul`.
///
/// The output has `A.nrows() * B.nrows()` rows and `A.ncols() * B.ncols()` columns;
/// `C[i·p + k, j·q + l] = mul(A[i,j], B[k,l])` for every stored pair of entries.
///
/// # Errors
///
/// Returns [`Error::DimensionMismatch`] if either output dimension would overflow
/// `usize`.
pub fn kronecker<A, B, Op>(a: &Matrix<A>, b: &Matrix<B>, mul: Op) -> Result<Matrix<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    let nrows = a
        .nrows()
        .checked_mul(b.nrows())
        .ok_or(Error::DimensionMismatch {
            context: "kronecker (row dimension overflow)",
            expected: a.nrows(),
            actual: b.nrows(),
        })?;
    let ncols = a
        .ncols()
        .checked_mul(b.ncols())
        .ok_or(Error::DimensionMismatch {
            context: "kronecker (column dimension overflow)",
            expected: a.ncols(),
            actual: b.ncols(),
        })?;

    let nvals = a.nvals().saturating_mul(b.nvals());
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx: Vec<Index> = Vec::with_capacity(nvals);
    let mut values: Vec<Op::Output> = Vec::with_capacity(nvals);
    row_ptr.push(0);

    let bq = b.ncols();
    // Output row i*p + k is produced by pairing row i of A with row k of B. Iterating
    // A's row in column order and B's row in column order yields sorted output columns
    // because the output column is j*q + l and j is the major key.
    for ai in 0..a.nrows() {
        let (a_cols, a_vals) = a.row(ai);
        for bk in 0..b.nrows() {
            let (b_cols, b_vals) = b.row(bk);
            for (a_pos, &aj) in a_cols.iter().enumerate() {
                let base = aj * bq;
                for (b_pos, &bl) in b_cols.iter().enumerate() {
                    col_idx.push(base + bl);
                    values.push(mul.apply(a_vals[a_pos], b_vals[b_pos]));
                }
            }
            row_ptr.push(col_idx.len());
        }
    }
    // An empty B (zero rows) still needs the row pointer filled out.
    if b.nrows() == 0 {
        row_ptr.resize(nrows + 1, 0);
    }

    Ok(Matrix::from_csr_parts(
        nrows, ncols, row_ptr, col_idx, values,
    ))
}

/// Repeated Kronecker power `A ⊗ A ⊗ ... ⊗ A` (`k` factors), the R-MAT/Graph500 style
/// construction for scale-free synthetic graphs.
///
/// `k = 0` yields the `1×1` multiplicative-identity matrix; `k = 1` yields a copy of
/// `A`.
pub fn kronecker_power<T, Op>(a: &Matrix<T>, k: u32, mul: Op) -> Result<Matrix<T>>
where
    T: crate::scalar::Ring,
    Op: BinaryOp<T, T, Output = T>,
{
    if k == 0 {
        return Matrix::from_tuples(1, 1, &[(0, 0, T::ONE)], crate::ops_traits::First::new());
    }
    let mut acc = a.clone();
    for _ in 1..k {
        acc = kronecker(&acc, a, mul)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Pair, Plus, Times};

    fn small(values: &[(Index, Index, u64)], nrows: Index, ncols: Index) -> Matrix<u64> {
        Matrix::from_tuples(nrows, ncols, values, Plus::new()).unwrap()
    }

    #[test]
    fn kronecker_of_identity_blocks() {
        // I2 ⊗ B places B on the block diagonal.
        let identity = small(&[(0, 0, 1), (1, 1, 1)], 2, 2);
        let b = small(&[(0, 1, 3), (1, 0, 5)], 2, 2);
        let c = kronecker(&identity, &b, Times::new()).unwrap();
        assert_eq!(c.nrows(), 4);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.nvals(), 4);
        assert_eq!(c.get(0, 1), Some(3));
        assert_eq!(c.get(1, 0), Some(5));
        assert_eq!(c.get(2, 3), Some(3));
        assert_eq!(c.get(3, 2), Some(5));
        assert_eq!(c.get(0, 3), None);
    }

    #[test]
    fn kronecker_values_multiply() {
        let a = small(&[(0, 0, 2), (0, 1, 3)], 1, 2);
        let b = small(&[(0, 0, 5), (1, 1, 7)], 2, 2);
        let c = kronecker(&a, &b, Times::new()).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 4);
        assert_eq!(c.get(0, 0), Some(10)); // 2*5
        assert_eq!(c.get(1, 1), Some(14)); // 2*7
        assert_eq!(c.get(0, 2), Some(15)); // 3*5
        assert_eq!(c.get(1, 3), Some(21)); // 3*7
    }

    #[test]
    fn kronecker_dimensions_multiply() {
        let a = small(&[(0, 0, 1)], 3, 4);
        let b = small(&[(0, 0, 1)], 5, 6);
        let c = kronecker(&a, &b, Times::new()).unwrap();
        assert_eq!(c.nrows(), 15);
        assert_eq!(c.ncols(), 24);
        assert_eq!(c.nvals(), 1);
    }

    #[test]
    fn kronecker_with_empty_operand_is_empty() {
        let a = small(&[(0, 0, 1)], 2, 2);
        let empty: Matrix<u64> = Matrix::new(3, 3);
        let c = kronecker(&a, &empty, Times::new()).unwrap();
        assert_eq!(c.nrows(), 6);
        assert_eq!(c.ncols(), 6);
        assert_eq!(c.nvals(), 0);
        let d = kronecker(&empty, &a, Times::new()).unwrap();
        assert_eq!(d.nrows(), 6);
        assert_eq!(d.nvals(), 0);
    }

    #[test]
    fn kronecker_rows_stay_sorted() {
        let a = small(&[(0, 0, 1), (0, 2, 1)], 1, 3);
        let b = small(&[(0, 0, 1), (0, 1, 1)], 1, 2);
        let c = kronecker(&a, &b, Times::new()).unwrap();
        let (cols, _) = c.row(0);
        assert_eq!(cols, &[0, 1, 4, 5]);
    }

    #[test]
    fn kronecker_pattern_counts_with_pair() {
        let a: Matrix<bool> = Matrix::from_edges(2, 2, &[(0, 1), (1, 0)]).unwrap();
        let b: Matrix<bool> = Matrix::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let c = kronecker(&a, &b, Pair::<u64>::new()).unwrap();
        assert_eq!(c.nvals(), 4);
        assert!(c.values().iter().all(|&v| v == 1));
    }

    #[test]
    fn kronecker_power_builds_rmat_style_matrix() {
        // The classic 2×2 initiator: nvals^k entries, 2^k dimensions.
        let initiator = small(&[(0, 0, 1), (0, 1, 1), (1, 1, 1)], 2, 2);
        let k3 = kronecker_power(&initiator, 3, Times::new()).unwrap();
        assert_eq!(k3.nrows(), 8);
        assert_eq!(k3.ncols(), 8);
        assert_eq!(k3.nvals(), 27);
    }

    #[test]
    fn kronecker_power_base_cases() {
        let a = small(&[(0, 1, 4)], 2, 2);
        let k0 = kronecker_power(&a, 0, Times::new()).unwrap();
        assert_eq!(k0.nrows(), 1);
        assert_eq!(k0.get(0, 0), Some(1));
        let k1 = kronecker_power(&a, 1, Times::new()).unwrap();
        assert_eq!(k1, a);
    }

    #[test]
    fn kronecker_mixed_types() {
        let pattern: Matrix<bool> = Matrix::from_edges(1, 2, &[(0, 0), (0, 1)]).unwrap();
        let weights = small(&[(0, 0, 9)], 1, 1);
        let c = kronecker(&pattern, &weights, crate::ops_traits::Second::new()).unwrap();
        assert_eq!(c.get(0, 0), Some(9));
        assert_eq!(c.get(0, 1), Some(9));
    }
}
