//! Concatenate a grid of matrices into one matrix, and split a matrix back into tiles
//! (`GxB_Matrix_concat` / `GxB_Matrix_split`).
//!
//! Concatenation is how the solution grows its adjacency matrices when a changeset
//! introduces new nodes: the old matrix becomes the top-left tile and the new
//! rows/columns arrive as (mostly empty) border tiles. Splitting is the inverse and is
//! used by tests to check the round trip.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::types::Index;

/// `C = [tiles]`: assemble a dense grid of tiles into a single matrix.
///
/// `tiles` is a row-major grid: `tiles[i][j]` is the tile at block-row `i` and
/// block-column `j`. Every row of the grid must have the same number of tiles, tiles
/// in the same block-row must agree on `nrows`, and tiles in the same block-column
/// must agree on `ncols`.
pub fn concat<T: Scalar>(tiles: &[Vec<&Matrix<T>>]) -> Result<Matrix<T>> {
    if tiles.is_empty() || tiles[0].is_empty() {
        return Err(Error::InvalidValue(
            "concat requires a non-empty grid of tiles".to_string(),
        ));
    }
    let block_cols = tiles[0].len();
    for (i, row) in tiles.iter().enumerate() {
        if row.len() != block_cols {
            return Err(Error::InvalidValue(format!(
                "concat: block-row {i} has {} tiles, expected {block_cols}",
                row.len()
            )));
        }
    }

    // Validate dimensions and compute block offsets.
    let mut row_offsets = Vec::with_capacity(tiles.len() + 1);
    row_offsets.push(0usize);
    for (i, row) in tiles.iter().enumerate() {
        let h = row[0].nrows();
        for (j, tile) in row.iter().enumerate() {
            if tile.nrows() != h {
                return Err(Error::DimensionMismatch {
                    context: "concat (tile row heights disagree)",
                    expected: h,
                    actual: tile.nrows(),
                });
            }
            let w = tiles[0][j].ncols();
            if tile.ncols() != w {
                return Err(Error::DimensionMismatch {
                    context: "concat (tile column widths disagree)",
                    expected: w,
                    actual: tile.ncols(),
                });
            }
        }
        row_offsets.push(row_offsets[i] + h);
    }
    let mut col_offsets = Vec::with_capacity(block_cols + 1);
    col_offsets.push(0usize);
    for j in 0..block_cols {
        col_offsets.push(col_offsets[j] + tiles[0][j].ncols());
    }

    let nrows = *row_offsets.last().expect("offsets never empty"); // lint: allow(panic) — offset vectors start with 0 and are never empty
    let ncols = *col_offsets.last().expect("offsets never empty"); // lint: allow(panic) — offset vectors start with 0 and are never empty
    let total_nvals: usize = tiles
        .iter()
        .flat_map(|row| row.iter())
        .map(|t| t.nvals())
        .sum();

    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx: Vec<Index> = Vec::with_capacity(total_nvals);
    let mut values: Vec<T> = Vec::with_capacity(total_nvals);
    row_ptr.push(0);

    for row_of_tiles in tiles {
        let tile_height = row_of_tiles[0].nrows();
        for local_r in 0..tile_height {
            for (bj, tile) in row_of_tiles.iter().enumerate() {
                let (cols, vals) = tile.row(local_r);
                let offset = col_offsets[bj];
                for (pos, &c) in cols.iter().enumerate() {
                    col_idx.push(offset + c);
                    values.push(vals[pos]);
                }
            }
            row_ptr.push(col_idx.len());
        }
    }

    Ok(Matrix::from_csr_parts(
        nrows, ncols, row_ptr, col_idx, values,
    ))
}

/// Stack matrices vertically: `C = [A; B; ...]`. All operands must agree on `ncols`.
pub fn concat_rows<T: Scalar>(blocks: &[&Matrix<T>]) -> Result<Matrix<T>> {
    let grid: Vec<Vec<&Matrix<T>>> = blocks.iter().map(|&m| vec![m]).collect();
    concat(&grid)
}

/// Stack matrices horizontally: `C = [A, B, ...]`. All operands must agree on `nrows`.
pub fn concat_cols<T: Scalar>(blocks: &[&Matrix<T>]) -> Result<Matrix<T>> {
    if blocks.is_empty() {
        return Err(Error::InvalidValue(
            "concat_cols requires at least one block".to_string(),
        ));
    }
    let grid: Vec<Vec<&Matrix<T>>> = vec![blocks.to_vec()];
    concat(&grid)
}

/// `tiles = split(A)`: cut a matrix into a grid of tiles with the given block heights
/// and widths. The heights must sum to `A.nrows()` and the widths to `A.ncols()`.
pub fn split<T: Scalar>(
    a: &Matrix<T>,
    row_sizes: &[Index],
    col_sizes: &[Index],
) -> Result<Vec<Vec<Matrix<T>>>> {
    let total_rows: Index = row_sizes.iter().sum();
    if total_rows != a.nrows() {
        return Err(Error::DimensionMismatch {
            context: "split (row sizes must sum to nrows)",
            expected: a.nrows(),
            actual: total_rows,
        });
    }
    let total_cols: Index = col_sizes.iter().sum();
    if total_cols != a.ncols() {
        return Err(Error::DimensionMismatch {
            context: "split (col sizes must sum to ncols)",
            expected: a.ncols(),
            actual: total_cols,
        });
    }

    let mut col_offsets = Vec::with_capacity(col_sizes.len() + 1);
    col_offsets.push(0usize);
    for &w in col_sizes {
        col_offsets.push(col_offsets.last().unwrap() + w); // lint: allow(panic) — col_offsets starts with 0 pushed above
    }

    let mut result = Vec::with_capacity(row_sizes.len());
    let mut row_base = 0usize;
    for &h in row_sizes {
        let mut block_row: Vec<(Vec<usize>, Vec<Index>, Vec<T>)> = col_sizes
            .iter()
            .map(|_| (vec![0usize], Vec::new(), Vec::new()))
            .collect();
        for local_r in 0..h {
            let (cols, vals) = a.row(row_base + local_r);
            for (pos, &c) in cols.iter().enumerate() {
                // Find the block column containing c.
                let bj = match col_offsets.binary_search(&c) {
                    Ok(exact) => exact.min(col_sizes.len() - 1),
                    Err(ins) => ins - 1,
                };
                let (_, ref mut ci, ref mut vv) = block_row[bj];
                ci.push(c - col_offsets[bj]);
                vv.push(vals[pos]);
            }
            for (rp, ci, _) in block_row.iter_mut() {
                rp.push(ci.len());
            }
        }
        let tiles_row: Vec<Matrix<T>> = block_row
            .into_iter()
            .enumerate()
            .map(|(bj, (rp, ci, vv))| Matrix::from_csr_parts(h, col_sizes[bj], rp, ci, vv))
            .collect();
        result.push(tiles_row);
        row_base += h;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    fn m(nrows: Index, ncols: Index, t: &[(Index, Index, u64)]) -> Matrix<u64> {
        Matrix::from_tuples(nrows, ncols, t, Plus::new()).unwrap()
    }

    #[test]
    fn concat_two_by_two_grid() {
        let a = m(2, 2, &[(0, 0, 1), (1, 1, 2)]);
        let b = m(2, 3, &[(0, 2, 3)]);
        let c = m(1, 2, &[(0, 1, 4)]);
        let d = m(1, 3, &[(0, 0, 5)]);
        let out = concat(&[vec![&a, &b], vec![&c, &d]]).unwrap();
        assert_eq!(out.nrows(), 3);
        assert_eq!(out.ncols(), 5);
        assert_eq!(out.get(0, 0), Some(1));
        assert_eq!(out.get(1, 1), Some(2));
        assert_eq!(out.get(0, 4), Some(3)); // b's (0,2) shifted by 2 cols
        assert_eq!(out.get(2, 1), Some(4)); // c's (0,1) shifted by 2 rows
        assert_eq!(out.get(2, 2), Some(5)); // d's (0,0) shifted by 2 rows, 2 cols
        assert_eq!(out.nvals(), 5);
    }

    #[test]
    fn concat_rows_and_cols_helpers() {
        let a = m(1, 2, &[(0, 0, 1)]);
        let b = m(2, 2, &[(1, 1, 2)]);
        let stacked = concat_rows(&[&a, &b]).unwrap();
        assert_eq!(stacked.nrows(), 3);
        assert_eq!(stacked.ncols(), 2);
        assert_eq!(stacked.get(0, 0), Some(1));
        assert_eq!(stacked.get(2, 1), Some(2));

        let c = m(1, 3, &[(0, 2, 3)]);
        let wide = concat_cols(&[&a, &c]).unwrap();
        assert_eq!(wide.nrows(), 1);
        assert_eq!(wide.ncols(), 5);
        assert_eq!(wide.get(0, 4), Some(3));
    }

    #[test]
    fn concat_rejects_ragged_grid() {
        let a = m(1, 1, &[]);
        let b = m(1, 1, &[]);
        assert!(concat(&[vec![&a, &b], vec![&a]]).is_err());
        assert!(concat::<u64>(&[]).is_err());
    }

    #[test]
    fn concat_rejects_mismatched_tile_dimensions() {
        let a = m(2, 2, &[]);
        let tall = m(3, 2, &[]);
        assert!(concat(&[vec![&a, &tall]]).is_err());
        let wide = m(2, 4, &[]);
        assert!(concat(&[vec![&a], vec![&wide]]).is_err());
    }

    #[test]
    fn split_then_concat_round_trips() {
        let a = m(
            4,
            5,
            &[
                (0, 0, 1),
                (0, 4, 2),
                (1, 2, 3),
                (2, 1, 4),
                (3, 3, 5),
                (3, 4, 6),
            ],
        );
        let tiles = split(&a, &[2, 2], &[3, 2]).unwrap();
        assert_eq!(tiles.len(), 2);
        assert_eq!(tiles[0].len(), 2);
        assert_eq!(tiles[0][0].nrows(), 2);
        assert_eq!(tiles[0][0].ncols(), 3);
        assert_eq!(tiles[0][1].get(0, 1), Some(2)); // a(0,4) -> tile (0,1) at (0, 4-3)
        let grid: Vec<Vec<&Matrix<u64>>> = tiles.iter().map(|row| row.iter().collect()).collect();
        let back = concat(&grid).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn split_rejects_wrong_partition() {
        let a = m(3, 3, &[]);
        assert!(split(&a, &[2, 2], &[3]).is_err());
        assert!(split(&a, &[3], &[2, 2]).is_err());
    }

    #[test]
    fn concat_grow_matrix_with_empty_border() {
        // The "matrix growth" pattern used when changesets introduce new nodes.
        let old = m(2, 2, &[(0, 1, 7), (1, 0, 8)]);
        let right = Matrix::<u64>::new(2, 1);
        let bottom = Matrix::<u64>::new(1, 2);
        let corner = Matrix::<u64>::new(1, 1);
        let grown = concat(&[vec![&old, &right], vec![&bottom, &corner]]).unwrap();
        assert_eq!(grown.nrows(), 3);
        assert_eq!(grown.ncols(), 3);
        assert_eq!(grown.nvals(), 2);
        assert_eq!(grown.get(0, 1), Some(7));
        assert_eq!(grown.get(2, 2), None);
    }

    #[test]
    fn split_single_tile_is_identity() {
        let a = m(2, 3, &[(0, 2, 9), (1, 0, 1)]);
        let tiles = split(&a, &[2], &[3]).unwrap();
        assert_eq!(tiles[0][0], a);
    }
}
