//! Masked assignment (`GrB_assign`): `w⟨m⟩ = u` and `w⟨m⟩ = s`.
//!
//! The paper's Q1 incremental algorithm (Alg. 2, line 14) uses
//! `∆scores⟨scores⁺⟩ ← scores′` to output only the scores that changed: the updated
//! score vector is written through a mask formed by the score-increment vector.

use crate::error::{Error, Result};
use crate::mask::VectorMask;
use crate::scalar::{MaskValue, Scalar};
use crate::vector::Vector;

/// `target⟨mask⟩ = source`: copy the stored elements of `source` whose position is
/// allowed by the mask into `target`. Positions of `target` not allowed by the mask
/// are left untouched (non-replace semantics, the GraphBLAS default).
pub fn assign_vector_masked<T, M>(
    target: &mut Vector<T>,
    mask: &VectorMask<'_, M>,
    source: &Vector<T>,
) -> Result<()>
where
    T: Scalar,
    M: MaskValue,
{
    if target.size() != source.size() {
        return Err(Error::DimensionMismatch {
            context: "assign_vector_masked",
            expected: target.size(),
            actual: source.size(),
        });
    }
    if mask.size() != target.size() {
        return Err(Error::DimensionMismatch {
            context: "assign_vector_masked (mask)",
            expected: target.size(),
            actual: mask.size(),
        });
    }
    for (i, v) in source.iter() {
        if mask.allows(i) {
            target.set(i, v).expect("index within target size"); // lint: allow(panic) — i iterates the target dimension
        }
    }
    Ok(())
}

/// `target⟨mask⟩ = s`: write the scalar `s` to every position allowed by the mask.
///
/// For non-complemented masks the allowed positions are enumerated from the mask; for
/// complemented masks every position of the vector is tested.
pub fn assign_scalar_vector_masked<T, M>(
    target: &mut Vector<T>,
    mask: &VectorMask<'_, M>,
    scalar: T,
) -> Result<()>
where
    T: Scalar,
    M: MaskValue,
{
    if mask.size() != target.size() {
        return Err(Error::DimensionMismatch {
            context: "assign_scalar_vector_masked",
            expected: target.size(),
            actual: mask.size(),
        });
    }
    if let Some(positions) = mask.allowed_positions() {
        for i in positions {
            target.set(i, scalar).expect("mask position within size"); // lint: allow(panic) — mask positions were validated against the target size
        }
    } else {
        for i in 0..target.size() {
            if mask.allows(i) {
                target.set(i, scalar).expect("index within size"); // lint: allow(panic) — i iterates the target dimension
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn masked_assign_writes_only_allowed_positions() {
        // ∆scores⟨scores⁺⟩ ← scores′
        let scores_plus = Vector::from_tuples(5, &[(1, 12u64), (3, 4)], Plus::new()).unwrap();
        let scores_new =
            Vector::from_tuples(5, &[(0, 10u64), (1, 25), (3, 8), (4, 2)], Plus::new()).unwrap();
        let mut delta = Vector::new(5);
        let mask = VectorMask::structural(&scores_plus);
        assign_vector_masked(&mut delta, &mask, &scores_new).unwrap();
        assert_eq!(delta.extract_tuples(), vec![(1, 25), (3, 8)]);
    }

    #[test]
    fn masked_assign_preserves_existing_entries() {
        let mask_vec = Vector::from_tuples(4, &[(2, true)], Plus::new()).unwrap();
        let source = Vector::from_tuples(4, &[(1, 7u64), (2, 9)], Plus::new()).unwrap();
        let mut target = Vector::from_tuples(4, &[(0, 100u64)], Plus::new()).unwrap();
        let mask = VectorMask::structural(&mask_vec);
        assign_vector_masked(&mut target, &mask, &source).unwrap();
        assert_eq!(target.extract_tuples(), vec![(0, 100), (2, 9)]);
    }

    #[test]
    fn masked_assign_dimension_checks() {
        let mask_vec = Vector::<bool>::new(3);
        let mask = VectorMask::structural(&mask_vec);
        let source = Vector::<u64>::new(4);
        let mut target = Vector::<u64>::new(4);
        assert!(assign_vector_masked(&mut target, &mask, &source).is_err());
        let source = Vector::<u64>::new(3);
        let mut target3 = Vector::<u64>::new(3);
        assert!(assign_vector_masked(&mut target3, &mask, &source).is_ok());
        let source_bad = Vector::<u64>::new(5);
        assert!(assign_vector_masked(&mut target3, &mask, &source_bad).is_err());
    }

    #[test]
    fn scalar_assign_with_structural_mask() {
        let mask_vec = Vector::from_tuples(5, &[(0, 1u8), (4, 0)], Plus::new()).unwrap();
        let mut target = Vector::<u64>::new(5);
        assign_scalar_vector_masked(&mut target, &VectorMask::structural(&mask_vec), 7).unwrap();
        assert_eq!(target.extract_tuples(), vec![(0, 7), (4, 7)]);
    }

    #[test]
    fn scalar_assign_with_complemented_mask_touches_the_rest() {
        let mask_vec = Vector::from_tuples(4, &[(1, true)], Plus::new()).unwrap();
        let mut target = Vector::<u64>::new(4);
        let mask = VectorMask::structural(&mask_vec).complement();
        assign_scalar_vector_masked(&mut target, &mask, 3).unwrap();
        assert_eq!(target.extract_tuples(), vec![(0, 3), (2, 3), (3, 3)]);
    }

    #[test]
    fn scalar_assign_dimension_check() {
        let mask_vec = Vector::<bool>::new(2);
        let mut target = Vector::<u64>::new(3);
        assert!(
            assign_scalar_vector_masked(&mut target, &VectorMask::structural(&mask_vec), 1)
                .is_err()
        );
    }
}
