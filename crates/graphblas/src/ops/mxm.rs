//! Matrix–matrix multiplication `C⟨M⟩ = A ⊕.⊗ B` (`GrB_mxm`).
//!
//! The kernel is a row-wise Gustavson SpGEMM: for each row `i` of `A`, the partial
//! products `A[i,k] ⊗ B[k,j]` are gathered and combined with the additive monoid.
//! The parallel variant distributes output rows over the rayon thread pool, which is
//! how SuiteSparse:GraphBLAS parallelises the same kernel with OpenMP.

use rayon::prelude::*;

use crate::error::{Error, Result};
use crate::mask::MatrixMask;
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;

use super::combine_products;

fn check_dims<A, B>(a: &Matrix<A>, b: &Matrix<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
{
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: "mxm",
            expected: a.ncols(),
            actual: b.nrows(),
        });
    }
    Ok(())
}

/// Compute one output row of `A ⊕.⊗ B` (sorted columns + values).
#[inline]
fn multiply_row<A, B, S>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: &S,
    row: Index,
) -> (Vec<Index>, Vec<S::Output>)
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    let mul = semiring.mul();
    let (a_cols, a_vals) = a.row(row);
    let mut products: Vec<(Index, S::Output)> = Vec::new();
    for (pos, &k) in a_cols.iter().enumerate() {
        let aik = a_vals[pos];
        let (b_cols, b_vals) = b.row(k);
        products.reserve(b_cols.len());
        for (bpos, &j) in b_cols.iter().enumerate() {
            products.push((j, mul.apply(aik, b_vals[bpos])));
        }
    }
    combine_products(products, semiring.add())
}

fn assemble<T: Scalar>(
    nrows: Index,
    ncols: Index,
    rows: Vec<(Vec<Index>, Vec<T>)>,
) -> Matrix<T> {
    let nvals: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx = Vec::with_capacity(nvals);
    let mut values = Vec::with_capacity(nvals);
    row_ptr.push(0);
    for (cols, vals) in rows {
        col_idx.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        row_ptr.push(col_idx.len());
    }
    Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// `C = A ⊕.⊗ B`: sparse matrix–matrix product over a semiring (serial kernel).
pub fn mxm<A, B, S>(a: &Matrix<A>, b: &Matrix<B>, semiring: S) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = (0..a.nrows())
        .map(|r| multiply_row(a, b, &semiring, r))
        .collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Parallel (rayon) variant of [`mxm`]: output rows are computed independently on the
/// current rayon thread pool.
pub fn mxm_par<A, B, S>(a: &Matrix<A>, b: &Matrix<B>, semiring: S) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    check_dims(a, b)?;
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = (0..a.nrows())
        .into_par_iter()
        .map(|r| multiply_row(a, b, &semiring, r))
        .collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Masked variant: `C⟨M⟩ = A ⊕.⊗ B`. Output positions not allowed by the mask are
/// discarded after the row product is formed.
pub fn mxm_masked<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    if mask.nrows() != a.nrows() || mask.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            context: "mxm (mask)",
            expected: a.nrows(),
            actual: mask.nrows(),
        });
    }
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = (0..a.nrows())
        .map(|r| {
            let (cols, vals) = multiply_row(a, b, &semiring, r);
            let mut fcols = Vec::with_capacity(cols.len());
            let mut fvals = Vec::with_capacity(vals.len());
            for (pos, &c) in cols.iter().enumerate() {
                if mask.allows(r, c) {
                    fcols.push(c);
                    fvals.push(vals[pos]);
                }
            }
            (fcols, fvals)
        })
        .collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;
    use crate::semiring::stock;

    fn a() -> Matrix<u64> {
        // 2x3
        // [ 1  2  . ]
        // [ .  .  3 ]
        Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (0, 1, 2), (1, 2, 3)], Plus::new()).unwrap()
    }

    fn b() -> Matrix<u64> {
        // 3x2
        // [ 4  . ]
        // [ .  5 ]
        // [ 6  7 ]
        Matrix::from_tuples(
            3,
            2,
            &[(0, 0, 4u64), (1, 1, 5), (2, 0, 6), (2, 1, 7)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn mxm_plus_times() {
        let c = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(0, 1), Some(10));
        assert_eq!(c.get(1, 0), Some(18));
        assert_eq!(c.get(1, 1), Some(21));
    }

    #[test]
    fn mxm_dimension_mismatch() {
        assert!(mxm(&a(), &a(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxm_par_matches_serial() {
        let serial = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        let parallel = mxm_par(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn mxm_with_empty_operand() {
        let empty: Matrix<u64> = Matrix::new(3, 2);
        let c = mxm(&a(), &empty, stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn mxm_plus_pair_counts_overlaps() {
        // C[i][j] = number of k such that A[i,k] and B[k,j] are both present
        let c = mxm(&a(), &b(), stock::plus_pair::<u64, u64, u64>()).unwrap();
        assert_eq!(c.get(0, 0), Some(1));
        assert_eq!(c.get(0, 1), Some(1));
        assert_eq!(c.get(1, 0), Some(1));
        assert_eq!(c.get(1, 1), Some(1));
    }

    #[test]
    fn mxm_masked_restricts_output() {
        let mask_matrix =
            Matrix::from_tuples(2, 2, &[(0, 0, true), (1, 1, true)], crate::ops_traits::First::new())
                .unwrap();
        let mask = MatrixMask::structural(&mask_matrix);
        let c = mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(1, 1), Some(21));
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn mxm_masked_checks_mask_dims() {
        let mask_matrix: Matrix<bool> = Matrix::new(3, 3);
        let mask = MatrixMask::structural(&mask_matrix);
        assert!(mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxm_associativity_on_small_chain() {
        // (A*B)*A' == A*(B*A') with plus_times over u64
        let ab = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        let abat = mxm(&ab, &a(), stock::plus_times::<u64>()).unwrap();
        let ba = mxm(&b(), &a(), stock::plus_times::<u64>()).unwrap();
        let abat2 = mxm(&a(), &ba, stock::plus_times::<u64>()).unwrap();
        assert_eq!(abat, abat2);
    }
}
