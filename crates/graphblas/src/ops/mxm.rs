//! Matrix–matrix multiplication `C⟨M⟩ = A ⊕.⊗ B` (`GrB_mxm`).
//!
//! The kernel is a row-wise Gustavson SpGEMM: for each row `i` of `A`, the partial
//! products `A[i,k] ⊗ B[k,j]` are accumulated with the additive monoid into a sparse
//! accumulator. Per output row the kernel picks, by flop estimate, between a dense
//! value+marker SPA (wide rows) and a gather–sort–combine merge (very sparse rows) —
//! the same Gustavson/saxpy workspace selection SuiteSparse:GraphBLAS performs per
//! task. Masks are pushed down into the kernel: partial products whose output
//! position the mask disallows are skipped *before* the multiplication is applied,
//! for plain and complemented, structural and value masks alike.
//!
//! The parallel variants distribute contiguous row chunks over the rayon thread pool
//! (one accumulator per chunk), which is how SuiteSparse parallelises the same kernel
//! with OpenMP.
//!
//! [`mxm_reference`] keeps the pre-SPA gather–sort–combine kernel (and its
//! post-filtering masked counterpart [`mxm_masked_postfilter`]) as an unoptimised
//! baseline for differential tests and the `ablation_spgemm` benchmark.

use rayon::prelude::*;

use crate::error::{Error, Result};
use crate::mask::MatrixMask;
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;

use super::accum::{reference, spa_is_profitable, MaskFilter, SparseAccumulator};
use super::combine_products;

/// Row results of the parallel kernels: per contiguous row chunk, one
/// `(column indices, values)` pair per output row.
type RowChunkResults<T> = Vec<Vec<(Vec<Index>, Vec<T>)>>;

fn check_dims<A, B>(a: &Matrix<A>, b: &Matrix<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
{
    if a.ncols() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: "mxm",
            expected: a.ncols(),
            actual: b.nrows(),
        });
    }
    Ok(())
}

fn check_mask_dims<A, B, M>(mask: &MatrixMask<'_, M>, a: &Matrix<A>, b: &Matrix<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
{
    if mask.nrows() != a.nrows() {
        return Err(Error::DimensionMismatch {
            context: "mxm (mask rows)",
            expected: a.nrows(),
            actual: mask.nrows(),
        });
    }
    if mask.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            context: "mxm (mask cols)",
            expected: b.ncols(),
            actual: mask.ncols(),
        });
    }
    Ok(())
}

/// Number of semiring multiplications row `row` of `A ⊕.⊗ B` performs.
#[inline]
fn row_flops<A, B>(a: &Matrix<A>, b: &Matrix<B>, row: Index) -> usize
where
    A: Scalar,
    B: Scalar,
{
    let (a_cols, _) = a.row(row);
    a_cols.iter().map(|&k| b.row_nvals(k)).sum()
}

/// Compute one output row of `A ⊕.⊗ B` with the Gustavson kernel, optionally
/// restricted by a preloaded mask row filter.
#[inline]
fn multiply_row<A, B, S>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: &S,
    row: Index,
    spa: &mut SparseAccumulator<S::Output>,
    filter: Option<&MaskFilter>,
) -> (Vec<Index>, Vec<S::Output>)
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    let (a_cols, a_vals) = a.row(row);
    let flops = row_flops(a, b, row);
    if flops == 0 {
        return (Vec::new(), Vec::new());
    }

    // Single-term rows need no accumulation at all: B's row is already sorted and
    // duplicate-free, so the product row is a straight (filtered) map over it.
    if a_cols.len() == 1 {
        let aik = a_vals[0];
        let (b_cols, b_vals) = b.row(a_cols[0]);
        let mut cols = Vec::with_capacity(b_cols.len());
        let mut vals = Vec::with_capacity(b_cols.len());
        for (pos, &j) in b_cols.iter().enumerate() {
            if filter.is_none_or(|f| f.allows(j)) {
                cols.push(j);
                vals.push(mul.apply(aik, b_vals[pos]));
            }
        }
        return (cols, vals);
    }

    if spa_is_profitable(flops, b.ncols()) {
        for (pos, &k) in a_cols.iter().enumerate() {
            let aik = a_vals[pos];
            let (b_cols, b_vals) = b.row(k);
            for (bpos, &j) in b_cols.iter().enumerate() {
                if filter.is_none_or(|f| f.allows(j)) {
                    spa.scatter(j, mul.apply(aik, b_vals[bpos]), &add);
                }
            }
        }
        spa.extract_sorted()
    } else {
        let mut products: Vec<(Index, S::Output)> = Vec::with_capacity(flops);
        for (pos, &k) in a_cols.iter().enumerate() {
            let aik = a_vals[pos];
            let (b_cols, b_vals) = b.row(k);
            for (bpos, &j) in b_cols.iter().enumerate() {
                if filter.is_none_or(|f| f.allows(j)) {
                    products.push((j, mul.apply(aik, b_vals[bpos])));
                }
            }
        }
        combine_products(products, add)
    }
}

/// Compute the output rows `lo..hi`, reusing one accumulator (and, when masked, one
/// row filter) across the whole range. Shared by the serial kernels (full range) and
/// the rayon variants (one contiguous chunk per worker).
fn multiply_row_range<A, B, S, M>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: &S,
    mask: Option<&MatrixMask<'_, M>>,
    lo: Index,
    hi: Index,
) -> Vec<(Vec<Index>, Vec<S::Output>)>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    let mut spa = SparseAccumulator::new(b.ncols());
    let mut filter = mask.map(|m| MaskFilter::new(b.ncols(), m.is_complemented()));
    let mut rows = Vec::with_capacity(hi - lo);
    for r in lo..hi {
        if let (Some(f), Some(m)) = (filter.as_mut(), mask) {
            f.load(m.row_present_positions(r));
            if f.allowed_is_empty() {
                rows.push((Vec::new(), Vec::new()));
                continue;
            }
        }
        rows.push(multiply_row(a, b, semiring, r, &mut spa, filter.as_ref()));
    }
    rows
}

/// Split `0..nrows` into one contiguous chunk per rayon worker.
pub(crate) fn row_chunks(nrows: Index) -> Vec<(Index, Index)> {
    let chunk = nrows.div_ceil(rayon::current_num_threads().max(1)).max(1);
    (0..nrows)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(nrows)))
        .collect()
}

fn assemble<T: Scalar>(nrows: Index, ncols: Index, rows: Vec<(Vec<Index>, Vec<T>)>) -> Matrix<T> {
    let nvals: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx = Vec::with_capacity(nvals);
    let mut values = Vec::with_capacity(nvals);
    row_ptr.push(0);
    for (cols, vals) in rows {
        col_idx.extend_from_slice(&cols);
        values.extend_from_slice(&vals);
        row_ptr.push(col_idx.len());
    }
    Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// The mask type of the unmasked kernels: a [`MatrixMask`] is never constructed for
/// them, this only instantiates the generic plumbing.
type NoMask = bool;

/// `C = A ⊕.⊗ B`: sparse matrix–matrix product over a semiring (serial kernel).
pub fn mxm<A, B, S>(a: &Matrix<A>, b: &Matrix<B>, semiring: S) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    let rows = multiply_row_range::<A, B, S, NoMask>(a, b, &semiring, None, 0, a.nrows());
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Parallel (rayon) variant of [`mxm`]: contiguous row chunks are computed
/// independently on the current rayon thread pool, one accumulator per chunk.
pub fn mxm_par<A, B, S>(a: &Matrix<A>, b: &Matrix<B>, semiring: S) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    check_dims(a, b)?;
    let chunks: RowChunkResults<S::Output> = row_chunks(a.nrows())
        .into_par_iter()
        .map(|(lo, hi)| multiply_row_range::<A, B, S, NoMask>(a, b, &semiring, None, lo, hi))
        .collect();
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = chunks.into_iter().flatten().collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Masked variant: `C⟨M⟩ = A ⊕.⊗ B`. The mask is pushed down into the kernel:
/// partial products for disallowed output positions are skipped before they are
/// computed, and rows whose (non-complemented) mask row is empty are skipped
/// entirely.
pub fn mxm_masked<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    check_mask_dims(mask, a, b)?;
    let rows = multiply_row_range(a, b, &semiring, Some(mask), 0, a.nrows());
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Parallel (rayon) variant of [`mxm_masked`], used by [`super::par::mxm_masked_par`].
pub(crate) fn mxm_masked_par_impl<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue + Sync,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    check_dims(a, b)?;
    check_mask_dims(mask, a, b)?;
    let chunks: RowChunkResults<S::Output> = row_chunks(a.nrows())
        .into_par_iter()
        .map(|(lo, hi)| multiply_row_range(a, b, &semiring, Some(mask), lo, hi))
        .collect();
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = chunks.into_iter().flatten().collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// The pre-SPA gather–sort–combine kernel, kept as the unoptimised reference for
/// differential tests and the `ablation_spgemm` benchmark. Produces exactly the same
/// matrix as [`mxm`].
pub fn mxm_reference<A, B, S>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    let mul = semiring.mul();
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = (0..a.nrows())
        .map(|r| {
            let (a_cols, a_vals) = a.row(r);
            let mut products: Vec<(Index, S::Output)> = Vec::new();
            for (pos, &k) in a_cols.iter().enumerate() {
                let aik = a_vals[pos];
                let (b_cols, b_vals) = b.row(k);
                products.reserve(b_cols.len());
                for (bpos, &j) in b_cols.iter().enumerate() {
                    products.push((j, mul.apply(aik, b_vals[bpos])));
                }
            }
            combine_products(products, semiring.add())
        })
        .collect();
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

/// Reference masked multiply that applies the mask *after* materialising each full
/// row product (the pre-push-down behaviour). Same result as [`mxm_masked`]; kept for
/// differential tests and the `ablation_spgemm` benchmark.
pub fn mxm_masked_postfilter<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_mask_dims(mask, a, b)?;
    let full = mxm_reference(a, b, semiring)?;
    let rows: Vec<(Vec<Index>, Vec<S::Output>)> = (0..full.nrows())
        .map(|r| {
            let (cols, vals) = full.row(r);
            let mut fcols = Vec::with_capacity(cols.len());
            let mut fvals = Vec::with_capacity(vals.len());
            for (pos, &c) in cols.iter().enumerate() {
                if mask.allows(r, c) {
                    fcols.push(c);
                    fvals.push(vals[pos]);
                }
            }
            (fcols, fvals)
        })
        .collect();
    Ok(assemble(full.nrows(), full.ncols(), rows))
}

/// The pre-stamp masked push-down kernel: identical control flow to [`mxm_masked`],
/// but accumulating through the frozen AoS `accum::reference` structures
/// (`Option`-slot SPA, `bool`-flag mask filter). Same result as [`mxm_masked`]; kept
/// so differential tests can prove the stamped SoA rewrite byte-identical and the
/// `ablation_spgemm` bench can measure the two accumulator layouts against each other.
pub fn mxm_masked_reference_spa<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_dims(a, b)?;
    check_mask_dims(mask, a, b)?;
    let add = semiring.add();
    let mul = semiring.mul();
    let mut spa = reference::OptionSlotAccumulator::new(b.ncols());
    let mut filter = reference::BoolMaskFilter::new(b.ncols(), mask.is_complemented());
    let mut rows = Vec::with_capacity(a.nrows());
    for r in 0..a.nrows() {
        filter.load(mask.row_present_positions(r));
        if filter.allowed_is_empty() {
            rows.push((Vec::new(), Vec::new()));
            continue;
        }
        let (a_cols, a_vals) = a.row(r);
        let flops = row_flops(a, b, r);
        if flops == 0 {
            rows.push((Vec::new(), Vec::new()));
            continue;
        }
        if a_cols.len() == 1 {
            let aik = a_vals[0];
            let (b_cols, b_vals) = b.row(a_cols[0]);
            let mut cols = Vec::with_capacity(b_cols.len());
            let mut vals = Vec::with_capacity(b_cols.len());
            for (pos, &j) in b_cols.iter().enumerate() {
                if filter.allows(j) {
                    cols.push(j);
                    vals.push(mul.apply(aik, b_vals[pos]));
                }
            }
            rows.push((cols, vals));
        } else if spa_is_profitable(flops, b.ncols()) {
            for (pos, &k) in a_cols.iter().enumerate() {
                let aik = a_vals[pos];
                let (b_cols, b_vals) = b.row(k);
                for (bpos, &j) in b_cols.iter().enumerate() {
                    if filter.allows(j) {
                        spa.scatter(j, mul.apply(aik, b_vals[bpos]), &add);
                    }
                }
            }
            rows.push(spa.extract_sorted());
        } else {
            let mut products: Vec<(Index, S::Output)> = Vec::with_capacity(flops);
            for (pos, &k) in a_cols.iter().enumerate() {
                let aik = a_vals[pos];
                let (b_cols, b_vals) = b.row(k);
                for (bpos, &j) in b_cols.iter().enumerate() {
                    if filter.allows(j) {
                        products.push((j, mul.apply(aik, b_vals[bpos])));
                    }
                }
            }
            rows.push(combine_products(products, semiring.add()));
        }
    }
    Ok(assemble(a.nrows(), b.ncols(), rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;
    use crate::semiring::stock;

    fn a() -> Matrix<u64> {
        // 2x3
        // [ 1  2  . ]
        // [ .  .  3 ]
        Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (0, 1, 2), (1, 2, 3)], Plus::new()).unwrap()
    }

    fn b() -> Matrix<u64> {
        // 3x2
        // [ 4  . ]
        // [ .  5 ]
        // [ 6  7 ]
        Matrix::from_tuples(
            3,
            2,
            &[(0, 0, 4u64), (1, 1, 5), (2, 0, 6), (2, 1, 7)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn mxm_plus_times() {
        let c = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(0, 1), Some(10));
        assert_eq!(c.get(1, 0), Some(18));
        assert_eq!(c.get(1, 1), Some(21));
    }

    #[test]
    fn mxm_dimension_mismatch() {
        assert!(mxm(&a(), &a(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxm_par_matches_serial() {
        let serial = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        let parallel = mxm_par(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn mxm_with_empty_operand() {
        let empty: Matrix<u64> = Matrix::new(3, 2);
        let c = mxm(&a(), &empty, stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 2);
        assert_eq!(c.nvals(), 0);
    }

    #[test]
    fn mxm_plus_pair_counts_overlaps() {
        // C[i][j] = number of k such that A[i,k] and B[k,j] are both present
        let c = mxm(&a(), &b(), stock::plus_pair::<u64, u64, u64>()).unwrap();
        assert_eq!(c.get(0, 0), Some(1));
        assert_eq!(c.get(0, 1), Some(1));
        assert_eq!(c.get(1, 0), Some(1));
        assert_eq!(c.get(1, 1), Some(1));
    }

    #[test]
    fn mxm_masked_restricts_output() {
        let mask_matrix = Matrix::from_tuples(
            2,
            2,
            &[(0, 0, true), (1, 1, true)],
            crate::ops_traits::First::new(),
        )
        .unwrap();
        let mask = MatrixMask::structural(&mask_matrix);
        let c = mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.get(0, 0), Some(4));
        assert_eq!(c.get(1, 1), Some(21));
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.get(1, 0), None);
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn mxm_masked_complemented_mask() {
        let mask_matrix = Matrix::from_tuples(
            2,
            2,
            &[(0, 0, true), (1, 1, true)],
            crate::ops_traits::First::new(),
        )
        .unwrap();
        let mask = MatrixMask::structural(&mask_matrix).complement();
        let c = mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c.get(0, 0), None);
        assert_eq!(c.get(1, 1), None);
        assert_eq!(c.get(0, 1), Some(10));
        assert_eq!(c.get(1, 0), Some(18));
    }

    #[test]
    fn mxm_masked_checks_mask_dims() {
        let mask_matrix: Matrix<bool> = Matrix::new(3, 3);
        let mask = MatrixMask::structural(&mask_matrix);
        assert!(mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn mxm_masked_reports_the_mismatched_axis() {
        // rows match (2), columns do not (3 vs 2)
        let mask_matrix: Matrix<bool> = Matrix::new(2, 3);
        let mask = MatrixMask::structural(&mask_matrix);
        let err = mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap_err();
        match err {
            Error::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                assert_eq!(context, "mxm (mask cols)");
                assert_eq!(expected, 2);
                assert_eq!(actual, 3);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn mxm_associativity_on_small_chain() {
        // (A*B)*A' == A*(B*A') with plus_times over u64
        let ab = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        let abat = mxm(&ab, &a(), stock::plus_times::<u64>()).unwrap();
        let ba = mxm(&b(), &a(), stock::plus_times::<u64>()).unwrap();
        let abat2 = mxm(&a(), &ba, stock::plus_times::<u64>()).unwrap();
        assert_eq!(abat, abat2);
    }

    #[test]
    fn reference_kernels_match_optimised() {
        let c = mxm(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        let r = mxm_reference(&a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(c, r);

        let mask_matrix = Matrix::from_tuples(
            2,
            2,
            &[(0, 1, true), (1, 0, true)],
            crate::ops_traits::First::new(),
        )
        .unwrap();
        let mask = MatrixMask::structural(&mask_matrix);
        let m = mxm_masked(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        let p = mxm_masked_postfilter(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(m, p);
        let s = mxm_masked_reference_spa(&mask, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(m, s);
        let comp = MatrixMask::structural(&mask_matrix).complement();
        let mc = mxm_masked(&comp, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        let sc = mxm_masked_reference_spa(&comp, &a(), &b(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(mc, sc);
    }
}
