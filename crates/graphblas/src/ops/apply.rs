//! Apply a unary operator to every stored element (`GrB_apply`).
//!
//! The structure (set of stored positions) is preserved; only the values change.
//! Binding one argument of a binary operator (the `GrB_apply` + `BinaryOp` + scalar
//! form of the C API) is provided by [`apply_vector_binop_left`] /
//! [`apply_vector_binop_right`].

use crate::matrix::Matrix;
use crate::ops_traits::{BinaryOp, UnaryOp};
use crate::scalar::Scalar;
use crate::vector::Vector;

/// `w = f(u)`: apply a unary operator to every stored element of a vector.
pub fn apply_vector<A, Op>(u: &Vector<A>, op: Op) -> Vector<Op::Output>
where
    A: Scalar,
    Op: UnaryOp<A>,
{
    let indices = u.indices().to_vec();
    let values = u.values().iter().map(|&v| op.apply(v)).collect();
    Vector::from_sorted_parts(u.size(), indices, values)
}

/// `C = f(A)`: apply a unary operator to every stored element of a matrix.
pub fn apply_matrix<A, Op>(a: &Matrix<A>, op: Op) -> Matrix<Op::Output>
where
    A: Scalar,
    Op: UnaryOp<A>,
{
    let row_ptr = a.row_ptr().to_vec();
    let col_idx = a.col_indices().to_vec();
    let values = a.values().iter().map(|&v| op.apply(v)).collect();
    Matrix::from_csr_parts(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

/// `w = f(x, u)`: apply a binary operator with the scalar bound as the *left* operand.
pub fn apply_vector_binop_left<A, B, Op>(scalar: A, u: &Vector<B>, op: Op) -> Vector<Op::Output>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    let indices = u.indices().to_vec();
    let values = u.values().iter().map(|&v| op.apply(scalar, v)).collect();
    Vector::from_sorted_parts(u.size(), indices, values)
}

/// `w = f(u, x)`: apply a binary operator with the scalar bound as the *right* operand.
pub fn apply_vector_binop_right<A, B, Op>(u: &Vector<A>, scalar: B, op: Op) -> Vector<Op::Output>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    let indices = u.indices().to_vec();
    let values = u.values().iter().map(|&v| op.apply(v, scalar)).collect();
    Vector::from_sorted_parts(u.size(), indices, values)
}

/// `C = f(x, A)`: apply a binary operator with the scalar bound as the *left* operand,
/// element-wise over the stored entries of a matrix.
pub fn apply_matrix_binop_left<A, B, Op>(scalar: A, a: &Matrix<B>, op: Op) -> Matrix<Op::Output>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    let values = a.values().iter().map(|&v| op.apply(scalar, v)).collect();
    Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_indices().to_vec(),
        values,
    )
}

/// `C = f(A, x)`: apply a binary operator with the scalar bound as the *right* operand,
/// element-wise over the stored entries of a matrix.
pub fn apply_matrix_binop_right<A, B, Op>(a: &Matrix<A>, scalar: B, op: Op) -> Matrix<Op::Output>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    let values = a.values().iter().map(|&v| op.apply(v, scalar)).collect();
    Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_indices().to_vec(),
        values,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Plus, Square, Times, TimesConstant, UnaryFn};

    #[test]
    fn apply_vector_times_constant() {
        // the "multiply by 10" step of Q1
        let u = Vector::from_tuples(4, &[(0, 2u64), (2, 1)], Plus::new()).unwrap();
        let w = apply_vector(&u, TimesConstant::new(10));
        assert_eq!(w.extract_tuples(), vec![(0, 20), (2, 10)]);
    }

    #[test]
    fn apply_vector_preserves_structure() {
        let u = Vector::from_tuples(4, &[(1, 0u64), (3, 7)], Plus::new()).unwrap();
        let w = apply_vector(&u, Square::new());
        assert_eq!(w.indices(), u.indices());
        assert_eq!(w.get(1), Some(0));
        assert_eq!(w.get(3), Some(49));
    }

    #[test]
    fn apply_vector_changes_type() {
        let u = Vector::from_tuples(3, &[(0, 3u64)], Plus::new()).unwrap();
        let w = apply_vector(&u, UnaryFn::new(|v: u64| v as f64 / 2.0));
        assert_eq!(w.get(0), Some(1.5));
    }

    #[test]
    fn apply_matrix_squares_values() {
        let a = Matrix::from_tuples(2, 2, &[(0, 1, 3u64), (1, 0, 4)], Plus::new()).unwrap();
        let c = apply_matrix(&a, Square::new());
        assert_eq!(c.get(0, 1), Some(9));
        assert_eq!(c.get(1, 0), Some(16));
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn apply_binop_bound_scalar() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (1, 5)], Plus::new()).unwrap();
        let left = apply_vector_binop_left(10u64, &u, Times::new());
        assert_eq!(left.get(1), Some(50));
        let right = apply_vector_binop_right(&u, 3u64, Plus::new());
        assert_eq!(right.get(0), Some(5));
        assert_eq!(right.get(1), Some(8));
    }

    #[test]
    fn apply_on_empty_vector() {
        let u = Vector::<u64>::new(5);
        let w = apply_vector(&u, TimesConstant::new(10));
        assert_eq!(w.size(), 5);
        assert_eq!(w.nvals(), 0);
    }

    #[test]
    fn apply_matrix_binop_bound_scalar() {
        let a = Matrix::from_tuples(2, 2, &[(0, 1, 3u64), (1, 0, 4)], Plus::new()).unwrap();
        let left = apply_matrix_binop_left(10u64, &a, Times::new());
        assert_eq!(left.get(0, 1), Some(30));
        assert_eq!(left.get(1, 0), Some(40));
        let right = apply_matrix_binop_right(&a, 1u64, Plus::new());
        assert_eq!(right.get(0, 1), Some(4));
        assert_eq!(right.get(1, 0), Some(5));
        // structure preserved
        assert_eq!(left.nvals(), a.nvals());
        assert_eq!(right.nvals(), a.nvals());
    }

    #[test]
    fn apply_matrix_binop_changes_type() {
        let pattern: Matrix<bool> = Matrix::from_edges(2, 2, &[(0, 0), (1, 1)]).unwrap();
        let scaled = apply_matrix_binop_left(
            2.5f64,
            &pattern,
            crate::ops_traits::BinaryFn::new(|s: f64, p: bool| if p { s } else { 0.0 }),
        );
        assert_eq!(scaled.get(0, 0), Some(2.5));
        assert_eq!(scaled.get(1, 1), Some(2.5));
    }
}
