//! Rayon-parallel variants of the row-independent kernels.
//!
//! SuiteSparse:GraphBLAS parallelises its operators internally with OpenMP (the
//! "built-in parallelization of the operators" the paper relies on for the 8-thread
//! variants of Fig. 5). The CSR kernels in this crate are row-independent, so the same
//! effect is obtained by fanning the per-row work out with rayon. Each function here
//! produces exactly the same result as its serial counterpart — asserted by the
//! property tests — and only differs in how the rows are scheduled. (The one
//! exception is [`vxm_masked_par`], whose additive reductions may associate
//! differently across workers; for the commutative monoids used throughout this
//! workspace the result is still identical.)
//!
//! The multiplication kernels ([`crate::ops::mxm_par`], [`crate::ops::mxv_par`]) and
//! the row reduction ([`crate::ops::reduce_matrix_rows_par`]) live next to their serial
//! versions; this module adds the element-wise, apply and select kernels plus the
//! masked multiplication variants ([`mxm_masked_par`], [`mxv_masked_par`],
//! [`vxm_masked_par`]) — all with the mask pushed down into the kernel.

use rayon::prelude::*;

use crate::error::Result;
use crate::mask::{MatrixMask, VectorMask};
use crate::matrix::Matrix;
use crate::ops_traits::{BinaryOp, IndexUnaryOp, UnaryOp};
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;
use crate::vector::Vector;

use super::check_same_shape;

/// Assemble per-row `(columns, values)` results into a CSR matrix.
fn assemble_rows<T: Scalar>(
    nrows: Index,
    ncols: Index,
    rows: Vec<(Vec<Index>, Vec<T>)>,
) -> Matrix<T> {
    let total: usize = rows.iter().map(|(c, _)| c.len()).sum();
    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    row_ptr.push(0);
    for (cols, vals) in rows {
        col_idx.extend(cols);
        values.extend(vals);
        row_ptr.push(col_idx.len());
    }
    Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values)
}

/// Parallel masked `C⟨M⟩ = A ⊕.⊗ B` (see [`crate::ops::mxm_masked`]): contiguous row
/// chunks are computed independently, each with its own sparse accumulator and mask
/// row filter, and the mask is pushed down into the kernel.
pub fn mxm_masked_par<A, B, S, M>(
    mask: &MatrixMask<'_, M>,
    a: &Matrix<A>,
    b: &Matrix<B>,
    semiring: S,
) -> Result<Matrix<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue + Sync,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    super::mxm::mxm_masked_par_impl(mask, a, b, semiring)
}

/// Parallel masked `w⟨m⟩ = A ⊕.⊗ u` (see [`crate::ops::mxv_masked`]): rows the mask
/// disallows are skipped before their dot product is computed.
pub fn mxv_masked_par<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    a: &Matrix<A>,
    u: &Vector<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue + Sync,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    super::mxv::mxv_masked_par_impl(mask, a, u, semiring)
}

/// Parallel masked `w⟨m⟩ = uᵀ ⊕.⊗ A` (see [`crate::ops::vxm_masked`]): the stored
/// entries of `u` are split into contiguous chunks, each chunk scatters its (masked)
/// partial products independently, and the sorted partials are merged with the
/// additive monoid.
pub fn vxm_masked_par<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    u: &Vector<A>,
    a: &Matrix<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue + Sync,
    S: Semiring<A, B> + Sync,
    S::Output: Send,
{
    super::vxm::check_mask_dims(mask, u, a)?;
    let filter = super::vxm::vector_mask_filter(mask, a.ncols());
    if filter.allowed_is_empty() {
        return Ok(Vector::new(a.ncols()));
    }
    let u_idx = u.indices();
    let u_val = u.values();
    let partials: Vec<(Vec<Index>, Vec<S::Output>)> = super::mxm::row_chunks(u_idx.len())
        .into_par_iter()
        .map(|(lo, hi)| {
            super::vxm::scatter_entries(&u_idx[lo..hi], &u_val[lo..hi], a, &semiring, Some(&filter))
        })
        .collect();
    // Merge the sorted partials with the additive monoid. Each partial covers a
    // disjoint slice of u, so overlapping output positions combine with ⊕ exactly as
    // the serial kernel would (up to association order).
    let add = semiring.add();
    let mut merged: Option<(Vec<Index>, Vec<S::Output>)> = None;
    for (p_idx, p_val) in partials {
        merged = Some(match merged {
            None => (p_idx, p_val),
            Some((m_idx, m_val)) => merge_sorted(&m_idx, &m_val, &p_idx, &p_val, &add),
        });
    }
    let (indices, values) = merged.unwrap_or_default();
    Ok(Vector::from_sorted_parts(a.ncols(), indices, values))
}

/// Union-merge two sorted `(index, value)` lists, combining shared positions with the
/// monoid `add`.
fn merge_sorted<T: Scalar, M: crate::monoid::Monoid<T>>(
    a_idx: &[Index],
    a_val: &[T],
    b_idx: &[Index],
    b_val: &[T],
    add: &M,
) -> (Vec<Index>, Vec<T>) {
    let mut indices = Vec::with_capacity(a_idx.len() + b_idx.len());
    let mut values = Vec::with_capacity(a_idx.len() + b_idx.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a_idx.len() || j < b_idx.len() {
        if j >= b_idx.len() || (i < a_idx.len() && a_idx[i] < b_idx[j]) {
            indices.push(a_idx[i]);
            values.push(a_val[i]);
            i += 1;
        } else if i >= a_idx.len() || b_idx[j] < a_idx[i] {
            indices.push(b_idx[j]);
            values.push(b_val[j]);
            j += 1;
        } else {
            indices.push(a_idx[i]);
            values.push(add.apply(a_val[i], b_val[j]));
            i += 1;
            j += 1;
        }
    }
    (indices, values)
}

/// Parallel `C = A ⊕ B` over the union of the stored positions (see
/// [`crate::ops::ewise_add_matrix`]).
pub fn ewise_add_matrix_par<T, Op>(a: &Matrix<T>, b: &Matrix<T>, op: Op) -> Result<Matrix<T>>
where
    T: Scalar,
    Op: BinaryOp<T, T, Output = T>,
{
    check_same_shape(
        "ewise_add_matrix_par (rows)",
        "ewise_add_matrix_par (cols)",
        a,
        b,
    )?;
    let rows: Vec<(Vec<Index>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let (ac, av) = a.row(r);
            let (bc, bv) = b.row(r);
            let mut cols = Vec::with_capacity(ac.len() + bc.len());
            let mut vals = Vec::with_capacity(ac.len() + bc.len());
            let (mut i, mut j) = (0usize, 0usize);
            while i < ac.len() || j < bc.len() {
                if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                    cols.push(ac[i]);
                    vals.push(av[i]);
                    i += 1;
                } else if i >= ac.len() || bc[j] < ac[i] {
                    cols.push(bc[j]);
                    vals.push(bv[j]);
                    j += 1;
                } else {
                    cols.push(ac[i]);
                    vals.push(op.apply(av[i], bv[j]));
                    i += 1;
                    j += 1;
                }
            }
            (cols, vals)
        })
        .collect();
    Ok(assemble_rows(a.nrows(), a.ncols(), rows))
}

/// Parallel `C = A ⊗ B` over the intersection of the stored positions (see
/// [`crate::ops::ewise_mult_matrix`]).
pub fn ewise_mult_matrix_par<A, B, Op>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    op: Op,
) -> Result<Matrix<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    check_same_shape(
        "ewise_mult_matrix_par (rows)",
        "ewise_mult_matrix_par (cols)",
        a,
        b,
    )?;
    let rows: Vec<(Vec<Index>, Vec<Op::Output>)> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let (ac, av) = a.row(r);
            let (bc, bv) = b.row(r);
            let mut cols = Vec::new();
            let mut vals = Vec::new();
            let (mut i, mut j) = (0usize, 0usize);
            while i < ac.len() && j < bc.len() {
                if ac[i] < bc[j] {
                    i += 1;
                } else if bc[j] < ac[i] {
                    j += 1;
                } else {
                    cols.push(ac[i]);
                    vals.push(op.apply(av[i], bv[j]));
                    i += 1;
                    j += 1;
                }
            }
            (cols, vals)
        })
        .collect();
    Ok(assemble_rows(a.nrows(), a.ncols(), rows))
}

/// Parallel `C = f(A)` (see [`crate::ops::apply_matrix`]).
pub fn apply_matrix_par<A, Op>(a: &Matrix<A>, op: Op) -> Matrix<Op::Output>
where
    A: Scalar,
    Op: UnaryOp<A>,
{
    let values: Vec<Op::Output> = a.values().par_iter().map(|&v| op.apply(v)).collect();
    Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        a.row_ptr().to_vec(),
        a.col_indices().to_vec(),
        values,
    )
}

/// Parallel `C = f(A, k)` selection (see [`crate::ops::select_matrix`]).
pub fn select_matrix_par<T, Op>(a: &Matrix<T>, op: Op) -> Matrix<T>
where
    T: Scalar,
    Op: IndexUnaryOp<T>,
{
    let rows: Vec<(Vec<Index>, Vec<T>)> = (0..a.nrows())
        .into_par_iter()
        .map(|r| {
            let (cols, vals) = a.row(r);
            let mut out_cols = Vec::new();
            let mut out_vals = Vec::new();
            for (pos, &c) in cols.iter().enumerate() {
                if op.keep(r, c, vals[pos]) {
                    out_cols.push(c);
                    out_vals.push(vals[pos]);
                }
            }
            (out_cols, out_vals)
        })
        .collect();
    assemble_rows(a.nrows(), a.ncols(), rows)
}

/// Parallel transpose: identical result to [`Matrix::transpose`], but the scatter of
/// each output row is gathered in parallel over output rows (i.e. input columns).
pub fn transpose_par<T: Scalar>(a: &Matrix<T>) -> Matrix<T> {
    let new_nrows = a.ncols();
    let new_ncols = a.nrows();
    if a.nvals() == 0 {
        return Matrix::new(new_nrows, new_ncols);
    }
    // Gather, per output row (input column), the (input row, value) pairs. This does
    // O(nvals) work per thread chunk by scanning the CSR arrays once per chunk of
    // output columns; for the matrix sizes in the benchmark this trades a little extra
    // scanning for zero synchronisation.
    let chunk = (new_nrows / rayon::current_num_threads().max(1)).max(1);
    let ranges: Vec<(Index, Index)> = (0..new_nrows)
        .step_by(chunk)
        .map(|start| (start, (start + chunk).min(new_nrows)))
        .collect();
    let partials: Vec<Vec<(Vec<Index>, Vec<T>)>> = ranges
        .par_iter()
        .map(|&(lo, hi)| {
            let mut local: Vec<(Vec<Index>, Vec<T>)> = vec![(Vec::new(), Vec::new()); hi - lo];
            for r in 0..a.nrows() {
                let (cols, vals) = a.row(r);
                // restrict to columns within [lo, hi)
                let start = cols.partition_point(|&c| c < lo);
                let end = cols.partition_point(|&c| c < hi);
                for pos in start..end {
                    let c = cols[pos];
                    local[c - lo].0.push(r);
                    local[c - lo].1.push(vals[pos]);
                }
            }
            local
        })
        .collect();
    let rows: Vec<(Vec<Index>, Vec<T>)> = partials.into_iter().flatten().collect();
    assemble_rows(new_nrows, new_ncols, rows)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Error;
    use crate::ops_traits::{First, NonZero, Plus, Square, Times, ValueGt};
    use crate::semiring::stock;

    fn random_like(nrows: Index, ncols: Index, seed: u64) -> Matrix<u64> {
        // Small deterministic pseudo-random matrix without pulling in rand here.
        let mut tuples = Vec::new();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for r in 0..nrows {
            for c in 0..ncols {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                if state.is_multiple_of(5) {
                    tuples.push((r, c, state % 100));
                }
            }
        }
        Matrix::from_tuples(nrows, ncols, &tuples, Plus::new()).unwrap()
    }

    fn random_vector(size: Index, seed: u64) -> Vector<u64> {
        let mut tuples = Vec::new();
        let mut state = seed.wrapping_mul(2862933555777941757).wrapping_add(3);
        for i in 0..size {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            if state.is_multiple_of(3) {
                tuples.push((i, state % 50));
            }
        }
        Vector::from_tuples(size, &tuples, Plus::new()).unwrap()
    }

    #[test]
    fn parallel_ewise_add_matches_serial() {
        let a = random_like(40, 30, 1);
        let b = random_like(40, 30, 2);
        let serial = crate::ops::ewise_add_matrix(&a, &b, Plus::new()).unwrap();
        let parallel = ewise_add_matrix_par(&a, &b, Plus::new()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_ewise_mult_matches_serial() {
        let a = random_like(25, 25, 3);
        let b = random_like(25, 25, 4);
        let serial = crate::ops::ewise_mult_matrix(&a, &b, Times::new()).unwrap();
        let parallel = ewise_mult_matrix_par(&a, &b, Times::new()).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_apply_matches_serial() {
        let a = random_like(30, 20, 5);
        let serial = crate::ops::apply_matrix(&a, Square::new());
        let parallel = apply_matrix_par(&a, Square::new());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_select_matches_serial() {
        let a = random_like(30, 20, 6);
        let serial = crate::ops::select_matrix(&a, ValueGt::new(50u64));
        let parallel = select_matrix_par(&a, ValueGt::new(50u64));
        assert_eq!(serial, parallel);
        let nz_serial = crate::ops::select_matrix(&a, NonZero::new());
        let nz_parallel = select_matrix_par(&a, NonZero::new());
        assert_eq!(nz_serial, nz_parallel);
    }

    #[test]
    fn parallel_transpose_matches_serial() {
        let a = random_like(37, 23, 7);
        assert_eq!(a.transpose(), transpose_par(&a));
        let empty: Matrix<u64> = Matrix::new(5, 9);
        assert_eq!(empty.transpose(), transpose_par(&empty));
    }

    #[test]
    fn parallel_ewise_dimension_mismatch() {
        let a: Matrix<u64> = Matrix::new(2, 2);
        let b: Matrix<u64> = Matrix::new(3, 2);
        assert!(ewise_add_matrix_par(&a, &b, Plus::new()).is_err());
        assert!(ewise_mult_matrix_par(&a, &b, Times::new()).is_err());
    }

    #[test]
    fn parallel_ewise_reports_the_mismatched_axis() {
        // rows agree (2), columns differ (2 vs 5)
        let a: Matrix<u64> = Matrix::new(2, 2);
        let b: Matrix<u64> = Matrix::new(2, 5);
        match ewise_add_matrix_par(&a, &b, Plus::new()).unwrap_err() {
            Error::DimensionMismatch {
                context,
                expected,
                actual,
            } => {
                assert_eq!(context, "ewise_add_matrix_par (cols)");
                assert_eq!(expected, 2);
                assert_eq!(actual, 5);
            }
            other => panic!("unexpected error {other:?}"),
        }
        match ewise_mult_matrix_par(&a, &b, Times::new()).unwrap_err() {
            Error::DimensionMismatch { context, .. } => {
                assert_eq!(context, "ewise_mult_matrix_par (cols)");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn parallel_masked_mxm_matches_serial() {
        let a = random_like(30, 25, 8);
        let b = random_like(25, 20, 9);
        let mask_matrix = random_like(30, 20, 10);
        for mask in [
            MatrixMask::structural(&mask_matrix),
            MatrixMask::structural(&mask_matrix).complement(),
            MatrixMask::value(&mask_matrix),
        ] {
            let serial = crate::ops::mxm_masked(&mask, &a, &b, stock::plus_times::<u64>()).unwrap();
            let parallel = mxm_masked_par(&mask, &a, &b, stock::plus_times::<u64>()).unwrap();
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn parallel_masked_mxv_matches_serial() {
        let a = random_like(35, 20, 11);
        let u = random_vector(20, 12);
        let mask_vec = random_vector(35, 13);
        for mask in [
            VectorMask::structural(&mask_vec),
            VectorMask::structural(&mask_vec).complement(),
        ] {
            let serial = crate::ops::mxv_masked(&mask, &a, &u, stock::plus_times::<u64>()).unwrap();
            let parallel = mxv_masked_par(&mask, &a, &u, stock::plus_times::<u64>()).unwrap();
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn parallel_masked_vxm_matches_serial() {
        let a = random_like(20, 35, 14);
        let u = random_vector(20, 15);
        let mask_vec = random_vector(35, 16);
        for mask in [
            VectorMask::structural(&mask_vec),
            VectorMask::structural(&mask_vec).complement(),
        ] {
            let serial = crate::ops::vxm_masked(&mask, &u, &a, stock::plus_times::<u64>()).unwrap();
            let parallel = vxm_masked_par(&mask, &u, &a, stock::plus_times::<u64>()).unwrap();
            assert_eq!(serial, parallel);
        }
    }

    #[test]
    fn parallel_masked_vxm_empty_mask_and_dims() {
        let a = random_like(20, 35, 17);
        let u = random_vector(20, 18);
        let empty = Vector::<bool>::new(35);
        let mask = VectorMask::structural(&empty);
        let w = vxm_masked_par(&mask, &u, &a, stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.nvals(), 0);

        let wrong = Vector::from_tuples(3, &[(0, true)], First::new()).unwrap();
        let mask = VectorMask::structural(&wrong);
        assert!(vxm_masked_par(&mask, &u, &a, stock::plus_times::<u64>()).is_err());
        assert!(mxv_masked_par(&mask, &a, &u, stock::plus_times::<u64>()).is_err());
    }
}
