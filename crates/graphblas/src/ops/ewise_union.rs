//! Element-wise union with fill values (`GxB_eWiseUnion`).
//!
//! Like [`crate::ops::ewise_add`], the output structure is the union of the operand
//! structures — but where `eWiseAdd` copies the lone operand's value unchanged when a
//! position is present in only one input, `eWiseUnion` substitutes a caller-provided
//! fill value for the missing side and always applies the binary operator. This makes
//! non-commutative combinations such as subtraction well defined over sparse operands.

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;
use crate::vector::Vector;

/// `w = u ⊕ v` over the union of the stored positions, substituting `u_fill` / `v_fill`
/// for the missing operand.
pub fn ewise_union_vector<A, B, Op>(
    u: &Vector<A>,
    u_fill: A,
    v: &Vector<B>,
    v_fill: B,
    op: Op,
) -> Result<Vector<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    if u.size() != v.size() {
        return Err(Error::DimensionMismatch {
            context: "ewise_union_vector",
            expected: u.size(),
            actual: v.size(),
        });
    }
    let (ui, uv) = (u.indices(), u.values());
    let (vi, vv) = (v.indices(), v.values());
    let mut indices = Vec::with_capacity(ui.len() + vi.len());
    let mut values = Vec::with_capacity(ui.len() + vi.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < ui.len() || j < vi.len() {
        if j >= vi.len() || (i < ui.len() && ui[i] < vi[j]) {
            indices.push(ui[i]);
            values.push(op.apply(uv[i], v_fill));
            i += 1;
        } else if i >= ui.len() || vi[j] < ui[i] {
            indices.push(vi[j]);
            values.push(op.apply(u_fill, vv[j]));
            j += 1;
        } else {
            indices.push(ui[i]);
            values.push(op.apply(uv[i], vv[j]));
            i += 1;
            j += 1;
        }
    }
    Ok(Vector::from_sorted_parts(u.size(), indices, values))
}

/// `C = A ⊕ B` over the union of the stored positions, substituting `a_fill` / `b_fill`
/// for the missing operand.
pub fn ewise_union_matrix<A, B, Op>(
    a: &Matrix<A>,
    a_fill: A,
    b: &Matrix<B>,
    b_fill: B,
    op: Op,
) -> Result<Matrix<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    super::check_same_shape(
        "ewise_union_matrix (rows)",
        "ewise_union_matrix (cols)",
        a,
        b,
    )?;
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx: Vec<Index> = Vec::with_capacity(a.nvals() + b.nvals());
    let mut values = Vec::with_capacity(a.nvals() + b.nvals());
    row_ptr.push(0);
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() || j < bc.len() {
            if j >= bc.len() || (i < ac.len() && ac[i] < bc[j]) {
                col_idx.push(ac[i]);
                values.push(op.apply(av[i], b_fill));
                i += 1;
            } else if i >= ac.len() || bc[j] < ac[i] {
                col_idx.push(bc[j]);
                values.push(op.apply(a_fill, bv[j]));
                j += 1;
            } else {
                col_idx.push(ac[i]);
                values.push(op.apply(av[i], bv[j]));
                i += 1;
                j += 1;
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        row_ptr,
        col_idx,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Minus, Plus};

    #[test]
    fn union_vector_subtraction_is_well_defined() {
        let u = Vector::from_tuples(5, &[(0, 10i64), (2, 7)], Plus::new()).unwrap();
        let v = Vector::from_tuples(5, &[(2, 3i64), (4, 4)], Plus::new()).unwrap();
        let w = ewise_union_vector(&u, 0, &v, 0, Minus::new()).unwrap();
        assert_eq!(w.extract_tuples(), vec![(0, 10), (2, 4), (4, -4)]);
    }

    #[test]
    fn union_vector_with_nonzero_fill() {
        let u = Vector::from_tuples(3, &[(0, 2u64)], Plus::new()).unwrap();
        let v = Vector::from_tuples(3, &[(1, 5u64)], Plus::new()).unwrap();
        let w = ewise_union_vector(&u, 100, &v, 100, Plus::new()).unwrap();
        assert_eq!(w.get(0), Some(102)); // 2 + fill(100)
        assert_eq!(w.get(1), Some(105)); // fill(100) + 5
        assert_eq!(w.get(2), None); // absent from both stays absent
    }

    #[test]
    fn union_vector_dimension_mismatch() {
        let u = Vector::<u64>::new(3);
        let v = Vector::<u64>::new(4);
        assert!(ewise_union_vector(&u, 0, &v, 0, Plus::new()).is_err());
    }

    #[test]
    fn union_matrix_subtraction() {
        let a = Matrix::from_tuples(2, 2, &[(0, 0, 5i64), (1, 1, 3)], Plus::new()).unwrap();
        let b = Matrix::from_tuples(2, 2, &[(0, 0, 2i64), (0, 1, 8)], Plus::new()).unwrap();
        let c = ewise_union_matrix(&a, 0, &b, 0, Minus::new()).unwrap();
        assert_eq!(c.get(0, 0), Some(3));
        assert_eq!(c.get(0, 1), Some(-8));
        assert_eq!(c.get(1, 1), Some(3));
        assert_eq!(c.nvals(), 3);
    }

    #[test]
    fn union_matrix_dimension_mismatch() {
        let a: Matrix<u64> = Matrix::new(2, 3);
        let b: Matrix<u64> = Matrix::new(3, 2);
        assert!(ewise_union_matrix(&a, 0, &b, 0, Plus::new()).is_err());
    }

    #[test]
    fn union_matches_ewise_add_for_commutative_plus_with_zero_fill() {
        let a = Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (1, 2, 3)], Plus::new()).unwrap();
        let b = Matrix::from_tuples(2, 3, &[(0, 0, 5u64), (0, 1, 2)], Plus::new()).unwrap();
        let via_union = ewise_union_matrix(&a, 0, &b, 0, Plus::new()).unwrap();
        let via_add = crate::ops::ewise_add_matrix(&a, &b, Plus::new()).unwrap();
        assert_eq!(via_union, via_add);
    }

    #[test]
    fn union_mixed_types() {
        let pattern: Matrix<bool> = Matrix::from_edges(1, 3, &[(0, 0), (0, 2)]).unwrap();
        let counts = Matrix::from_tuples(1, 3, &[(0, 1, 4u64), (0, 2, 9)], Plus::new()).unwrap();
        let combined = ewise_union_matrix(
            &pattern,
            false,
            &counts,
            0u64,
            crate::ops_traits::BinaryFn::new(|p: bool, c: u64| if p { c + 1 } else { c }),
        )
        .unwrap();
        assert_eq!(combined.get(0, 0), Some(1)); // pattern only: 0 + 1
        assert_eq!(combined.get(0, 1), Some(4)); // count only
        assert_eq!(combined.get(0, 2), Some(10)); // both: 9 + 1
    }
}
