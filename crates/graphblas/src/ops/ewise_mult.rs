//! Element-wise "multiplication" over the set **intersection** of the structures
//! (`GrB_eWiseMult`).
//!
//! Only positions present in both operands produce an output element; the operand
//! types may differ (the output type is determined by the operator).

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;
use crate::vector::Vector;

/// `w = u ⊗ v` over the intersection of the stored positions.
pub fn ewise_mult_vector<A, B, Op>(
    u: &Vector<A>,
    v: &Vector<B>,
    op: Op,
) -> Result<Vector<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    if u.size() != v.size() {
        return Err(Error::DimensionMismatch {
            context: "ewise_mult_vector",
            expected: u.size(),
            actual: v.size(),
        });
    }
    let (ui, uv) = (u.indices(), u.values());
    let (vi, vv) = (v.indices(), v.values());
    let mut indices = Vec::new();
    let mut values = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < ui.len() && j < vi.len() {
        match ui[i].cmp(&vi[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                indices.push(ui[i]);
                values.push(op.apply(uv[i], vv[j]));
                i += 1;
                j += 1;
            }
        }
    }
    Ok(Vector::from_sorted_parts(u.size(), indices, values))
}

/// `C = A ⊗ B` over the intersection of the stored positions, row by row.
pub fn ewise_mult_matrix<A, B, Op>(
    a: &Matrix<A>,
    b: &Matrix<B>,
    op: Op,
) -> Result<Matrix<Op::Output>>
where
    A: Scalar,
    B: Scalar,
    Op: BinaryOp<A, B>,
{
    super::check_same_shape("ewise_mult_matrix (rows)", "ewise_mult_matrix (cols)", a, b)?;
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx: Vec<Index> = Vec::new();
    let mut values: Vec<Op::Output> = Vec::new();
    row_ptr.push(0);
    for r in 0..a.nrows() {
        let (ac, av) = a.row(r);
        let (bc, bv) = b.row(r);
        let (mut i, mut j) = (0usize, 0usize);
        while i < ac.len() && j < bc.len() {
            match ac[i].cmp(&bc[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    col_idx.push(ac[i]);
                    values.push(op.apply(av[i], bv[j]));
                    i += 1;
                    j += 1;
                }
            }
        }
        row_ptr.push(col_idx.len());
    }
    Ok(Matrix::from_csr_parts(
        a.nrows(),
        a.ncols(),
        row_ptr,
        col_idx,
        values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Pair, Plus, Times};

    #[test]
    fn vector_intersection_semantics() {
        let u = Vector::from_tuples(6, &[(0, 2u64), (2, 3), (4, 4)], Plus::new()).unwrap();
        let v = Vector::from_tuples(6, &[(2, 10u64), (4, 5), (5, 9)], Plus::new()).unwrap();
        let w = ewise_mult_vector(&u, &v, Times::new()).unwrap();
        assert_eq!(w.extract_tuples(), vec![(2, 30), (4, 20)]);
    }

    #[test]
    fn vector_mixed_types_with_pair() {
        let u = Vector::from_tuples(3, &[(0, true), (1, true)], crate::ops_traits::First::new())
            .unwrap();
        let v = Vector::from_tuples(3, &[(1, 7u64), (2, 8)], Plus::new()).unwrap();
        let w = ewise_mult_vector(&u, &v, Pair::<u32>::new()).unwrap();
        assert_eq!(w.extract_tuples(), vec![(1, 1u32)]);
    }

    #[test]
    fn vector_dimension_mismatch() {
        let u = Vector::<u64>::new(3);
        let v = Vector::<u64>::new(4);
        assert!(ewise_mult_vector(&u, &v, Times::new()).is_err());
    }

    #[test]
    fn vector_disjoint_structures_give_empty() {
        let u = Vector::from_tuples(4, &[(0, 1u64)], Plus::new()).unwrap();
        let v = Vector::from_tuples(4, &[(1, 1u64)], Plus::new()).unwrap();
        assert_eq!(ewise_mult_vector(&u, &v, Times::new()).unwrap().nvals(), 0);
    }

    #[test]
    fn matrix_intersection_semantics() {
        let a =
            Matrix::from_tuples(2, 2, &[(0, 0, 2u64), (0, 1, 3), (1, 1, 4)], Plus::new()).unwrap();
        let b = Matrix::from_tuples(2, 2, &[(0, 1, 10u64), (1, 1, 5)], Plus::new()).unwrap();
        let c = ewise_mult_matrix(&a, &b, Times::new()).unwrap();
        assert_eq!(c.get(0, 1), Some(30));
        assert_eq!(c.get(1, 1), Some(20));
        assert_eq!(c.nvals(), 2);
    }

    #[test]
    fn matrix_dimension_mismatch() {
        let a: Matrix<u64> = Matrix::new(2, 2);
        let b: Matrix<u64> = Matrix::new(3, 2);
        assert!(ewise_mult_matrix(&a, &b, Times::new()).is_err());
    }
}
