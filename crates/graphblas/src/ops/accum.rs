//! Sparse accumulators for the multiplication kernels.
//!
//! Gustavson's row-wise SpGEMM needs a place to accumulate the partial products
//! `A[i,k] ⊗ B[k,j]` of one output row. SuiteSparse:GraphBLAS picks between several
//! accumulator ("saxpy") workspaces per task; this module provides the two that matter
//! at our scales:
//!
//! * a **dense SPA** ([`SparseAccumulator`]) — an `ncols`-sized value array plus a
//!   list of touched positions. Scatter is `O(1)` per product, extraction sorts only
//!   the touched positions, and the arrays are reused across rows so the dense
//!   allocation is paid once per kernel invocation (or once per rayon chunk);
//! * a **sorted-merge fallback** (the `combine_products` gather–sort–combine in
//!   [`super`]) — for rows whose flop count is tiny relative to `ncols`, where even
//!   walking a touched-list is dominated by cache-missing into a cold dense array.
//!
//! [`spa_is_profitable`] is the per-row selection heuristic, and [`MaskFilter`] turns
//! one mask row into an `O(1)`-per-product allowed-position test so masks can be
//! pushed *into* the kernels (products for disallowed output positions are never
//! accumulated — for value and structural masks, plain and complemented alike).

use crate::monoid::Monoid;
use crate::scalar::Scalar;
use crate::types::Index;

/// Per-row flop threshold below which the gather–sort–combine fallback wins over the
/// dense SPA. The SPA touches `O(flops)` random positions of an `ncols`-sized array;
/// sorting a handful of products is cheaper than faulting that array into cache, so
/// very sparse rows (relative to the output width) take the merge path.
///
/// Chosen like SuiteSparse's coarse Gustavson/hash cutover: the SPA is used once the
/// row's products would touch at least 1/16th of the output width, or in absolute
/// terms enough products that the `O(flops log flops)` sort loses.
#[inline]
pub(crate) fn spa_is_profitable(flops: usize, ncols: Index) -> bool {
    flops >= 256 || flops * 16 >= ncols
}

/// A dense sparse accumulator (SPA): `values[j]` holds the running `⊕`-sum of the
/// products landing on output position `j`, `touched` remembers which positions are
/// live. Extraction resets exactly the touched positions, so a single accumulator is
/// reused across all rows of a kernel invocation without `O(ncols)` clearing.
#[derive(Debug)]
pub(crate) struct SparseAccumulator<T> {
    values: Vec<Option<T>>,
    touched: Vec<Index>,
}

impl<T: Scalar> SparseAccumulator<T> {
    /// An accumulator for output rows of width `ncols`.
    pub(crate) fn new(ncols: Index) -> Self {
        SparseAccumulator {
            values: vec![None; ncols],
            touched: Vec::new(),
        }
    }

    /// Accumulate `value` into position `j` with the monoid `add`.
    #[inline]
    pub(crate) fn scatter<M: Monoid<T>>(&mut self, j: Index, value: T, add: &M) {
        match &mut self.values[j] {
            Some(slot) => *slot = add.apply(*slot, value),
            slot @ None => {
                *slot = Some(value);
                self.touched.push(j);
            }
        }
    }

    /// Drain the accumulated row as sorted `(indices, values)` and reset the
    /// accumulator for the next row.
    pub(crate) fn extract_sorted(&mut self) -> (Vec<Index>, Vec<T>) {
        self.touched.sort_unstable();
        let mut indices = Vec::with_capacity(self.touched.len());
        let mut values = Vec::with_capacity(self.touched.len());
        for &j in &self.touched {
            let slot = self.values[j]
                .take()
                .expect("touched position holds a value"); // lint: allow(panic) — the touched set only records positions that hold values
            indices.push(j);
            values.push(slot);
        }
        self.touched.clear();
        (indices, values)
    }
}

/// An `O(1)`-per-position view of one mask row (or of a vector mask), used to push
/// masks down into the multiplication kernels.
///
/// The *present* positions of the mask (stored positions for a structural mask,
/// stored-truthy positions for a value mask) are marked in a dense flag array;
/// [`MaskFilter::allows`] then answers in constant time for plain and complemented
/// masks alike — `allowed = marked ≠ complemented`. Like the SPA, the flag array is
/// reused across rows: [`MaskFilter::load`] resets only the previously marked
/// positions.
#[derive(Debug)]
pub(crate) struct MaskFilter {
    marked: Vec<bool>,
    touched: Vec<Index>,
    complemented: bool,
}

impl MaskFilter {
    /// A filter over output positions `0..ncols`.
    pub(crate) fn new(ncols: Index, complemented: bool) -> Self {
        MaskFilter {
            marked: vec![false; ncols],
            touched: Vec::new(),
            complemented,
        }
    }

    /// Replace the marked set with the mask's present positions for the current row.
    pub(crate) fn load(&mut self, present: impl IntoIterator<Item = Index>) {
        for &j in &self.touched {
            self.marked[j] = false;
        }
        self.touched.clear();
        for j in present {
            if !self.marked[j] {
                self.marked[j] = true;
                self.touched.push(j);
            }
        }
    }

    /// Whether the mask allows writing to output position `j`.
    #[inline]
    pub(crate) fn allows(&self, j: Index) -> bool {
        self.marked[j] != self.complemented
    }

    /// The number of positions a non-complemented filter allows (used to skip rows
    /// whose mask is empty before any product is formed).
    #[inline]
    pub(crate) fn allowed_is_empty(&self) -> bool {
        !self.complemented && self.touched.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn spa_scatter_accumulates_and_sorts() {
        let mut spa = SparseAccumulator::new(10);
        let add = Plus::<u64>::new();
        spa.scatter(7, 1, &add);
        spa.scatter(2, 2, &add);
        spa.scatter(7, 3, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!(idx, vec![2, 7]);
        assert_eq!(vals, vec![2, 4]);
        // reusable after extraction
        spa.scatter(7, 5, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!(idx, vec![7]);
        assert_eq!(vals, vec![5]);
    }

    #[test]
    fn mask_filter_plain_and_complemented() {
        let mut plain = MaskFilter::new(5, false);
        plain.load([1, 3]);
        assert!(plain.allows(1));
        assert!(plain.allows(3));
        assert!(!plain.allows(0));
        assert!(!plain.allowed_is_empty());

        let mut comp = MaskFilter::new(5, true);
        comp.load([1, 3]);
        assert!(!comp.allows(1));
        assert!(comp.allows(0));
        assert!(!comp.allowed_is_empty());

        // reloading clears previous marks
        plain.load([0]);
        assert!(plain.allows(0));
        assert!(!plain.allows(1));
        plain.load([]);
        assert!(plain.allowed_is_empty());
    }

    #[test]
    fn heuristic_prefers_merge_for_sparse_rows() {
        assert!(!spa_is_profitable(2, 1000));
        assert!(spa_is_profitable(300, 1_000_000));
        assert!(spa_is_profitable(10, 64));
    }
}
