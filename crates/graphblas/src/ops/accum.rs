//! Sparse accumulators for the multiplication kernels.
//!
//! Gustavson's row-wise SpGEMM needs a place to accumulate the partial products
//! `A[i,k] ⊗ B[k,j]` of one output row. SuiteSparse:GraphBLAS picks between several
//! accumulator ("saxpy") workspaces per task; this module provides the two that matter
//! at our scales:
//!
//! * a **dense SPA** ([`SparseAccumulator`]) — an `ncols`-sized value array plus a
//!   list of touched positions. Scatter is `O(1)` per product, extraction sorts only
//!   the touched positions, and the arrays are reused across rows so the dense
//!   allocation is paid once per kernel invocation (or once per rayon chunk);
//! * a **sorted-merge fallback** (the `combine_products` gather–sort–combine in
//!   [`super`]) — for rows whose flop count is tiny relative to `ncols`, where even
//!   walking a touched-list is dominated by cache-missing into a cold dense array.
//!
//! Both the SPA and [`MaskFilter`] are laid out **SoA with generation stamps**: the
//! liveness of slot `j` is `stamp[j] == epoch`, not an `Option` discriminant or a
//! `bool` that has to be reset. The inner scatter loop reads/writes plain `T` values
//! (half the bytes of `Option<u64>` slots, no branch on a discriminant), extraction
//! copies values out instead of `take()`-ing each slot back to `None`, and resetting
//! for the next row is a single epoch bump instead of a walk over the touched set.
//! The pre-stamp AoS implementations are kept in [`reference`] so the `_reference`
//! kernels and the `ablation_spgemm` bench can measure exactly what changed.
//!
//! [`spa_is_profitable`] is the per-row selection heuristic, and [`MaskFilter`] turns
//! one mask row into an `O(1)`-per-product allowed-position test so masks can be
//! pushed *into* the kernels (products for disallowed output positions are never
//! accumulated — for value and structural masks, plain and complemented alike).

use crate::monoid::Monoid;
use crate::scalar::Scalar;
use crate::types::Index;

/// Per-row flop threshold below which the gather–sort–combine fallback wins over the
/// dense SPA. The SPA touches `O(flops)` random positions of an `ncols`-sized array;
/// sorting a handful of products is cheaper than faulting that array into cache, so
/// very sparse rows (relative to the output width) take the merge path.
///
/// Chosen like SuiteSparse's coarse Gustavson/hash cutover: the SPA is used once the
/// row's products would touch at least 1/16th of the output width, or in absolute
/// terms enough products that the `O(flops log flops)` sort loses.
#[inline]
pub(crate) fn spa_is_profitable(flops: usize, ncols: Index) -> bool {
    flops >= 256 || flops * 16 >= ncols
}

/// A dense sparse accumulator (SPA): `values[j]` holds the running `⊕`-sum of the
/// products landing on output position `j`, and `j` is live iff `stamp[j]` equals the
/// current epoch. Extraction bumps the epoch, which retires every slot at once, so a
/// single accumulator is reused across all rows of a kernel invocation without
/// `O(ncols)` clearing *and* without revisiting the touched set to reset it.
#[derive(Debug)]
pub(crate) struct SparseAccumulator<T> {
    /// Slot values; only meaningful where `stamp[j] == epoch`. Allocated lazily on
    /// the first scatter because `T: Scalar` has no zero/default to prefill with.
    values: Vec<T>,
    /// Generation tag per slot: `stamp[j] == epoch` ⇔ slot `j` is live.
    stamp: Vec<u32>,
    /// Current generation; starts at 1 so a zeroed `stamp` array means "all dead".
    epoch: u32,
    touched: Vec<Index>,
    ncols: usize,
}

impl<T: Scalar> SparseAccumulator<T> {
    /// An accumulator for output rows of width `ncols`.
    pub(crate) fn new(ncols: Index) -> Self {
        SparseAccumulator {
            values: Vec::new(),
            stamp: vec![0; ncols],
            epoch: 1,
            touched: Vec::new(),
            ncols,
        }
    }

    /// Accumulate `value` into position `j` with the monoid `add`.
    #[inline]
    pub(crate) fn scatter<M: Monoid<T>>(&mut self, j: Index, value: T, add: &M) {
        if self.stamp[j] == self.epoch {
            self.values[j] = add.apply(self.values[j], value);
        } else {
            if self.values.is_empty() {
                // first scatter ever: fill with the first value (any T works — the
                // stamps gate every read, so prefill junk is never observed)
                self.values.resize(self.ncols, value);
            }
            self.stamp[j] = self.epoch;
            self.values[j] = value;
            self.touched.push(j);
        }
    }

    /// Drain the accumulated row as sorted `(indices, values)` and reset the
    /// accumulator for the next row (one epoch bump — no per-slot writes).
    pub(crate) fn extract_sorted(&mut self) -> (Vec<Index>, Vec<T>) {
        self.touched.sort_unstable();
        let mut indices = Vec::with_capacity(self.touched.len());
        let mut values = Vec::with_capacity(self.touched.len());
        for &j in &self.touched {
            indices.push(j);
            values.push(self.values[j]);
        }
        self.touched.clear();
        self.advance_epoch();
        (indices, values)
    }

    /// Retire all live slots. On `u32` wrap the stamps are rewritten once — a
    /// once-per-4-billion-rows `O(ncols)` pass.
    #[inline]
    fn advance_epoch(&mut self) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }
}

/// An `O(1)`-per-position view of one mask row (or of a vector mask), used to push
/// masks down into the multiplication kernels.
///
/// The *present* positions of the mask (stored positions for a structural mask,
/// stored-truthy positions for a value mask) are stamped with the current epoch in a
/// dense generation array; [`MaskFilter::allows`] then answers in constant time for
/// plain and complemented masks alike — `allowed = (stamp[j] == epoch) ≠ complemented`.
/// Unlike a `bool` flag array, [`MaskFilter::load`] needs no reset walk over the
/// previous row's marks: bumping the epoch retires them all at once.
#[derive(Debug)]
pub(crate) struct MaskFilter {
    stamp: Vec<u32>,
    epoch: u32,
    /// Number of positions marked in the current epoch.
    present: usize,
    complemented: bool,
}

impl MaskFilter {
    /// A filter over output positions `0..ncols`.
    pub(crate) fn new(ncols: Index, complemented: bool) -> Self {
        MaskFilter {
            stamp: vec![0; ncols],
            epoch: 0,
            present: 0,
            complemented,
        }
    }

    /// Replace the marked set with the mask's present positions for the current row.
    pub(crate) fn load(&mut self, present: impl IntoIterator<Item = Index>) {
        if self.epoch == u32::MAX {
            self.stamp.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.present = 0;
        for j in present {
            if self.stamp[j] != self.epoch {
                self.stamp[j] = self.epoch;
                self.present += 1;
            }
        }
    }

    /// Whether the mask allows writing to output position `j`.
    #[inline]
    pub(crate) fn allows(&self, j: Index) -> bool {
        (self.stamp[j] == self.epoch) != self.complemented
    }

    /// Whether a non-complemented filter allows no position at all (used to skip rows
    /// whose mask is empty before any product is formed).
    #[inline]
    pub(crate) fn allowed_is_empty(&self) -> bool {
        !self.complemented && self.present == 0
    }
}

/// The pre-PR-9 AoS accumulator and mask filter, frozen as references.
///
/// [`super::mxm_masked_reference_spa`] runs the exact old masked push-down kernel on
/// top of these, so differential tests can prove the stamped SoA rewrite byte-identical
/// and `ablation_spgemm` can measure the layouts against each other.
pub(crate) mod reference {
    use super::{Index, Monoid, Scalar};

    /// `Option`-slot SPA: liveness is the `Option` discriminant, extraction
    /// `take()`s every touched slot back to `None`.
    #[derive(Debug)]
    pub(crate) struct OptionSlotAccumulator<T> {
        values: Vec<Option<T>>,
        touched: Vec<Index>,
    }

    impl<T: Scalar> OptionSlotAccumulator<T> {
        pub(crate) fn new(ncols: Index) -> Self {
            OptionSlotAccumulator {
                values: vec![None; ncols],
                touched: Vec::new(),
            }
        }

        #[inline]
        pub(crate) fn scatter<M: Monoid<T>>(&mut self, j: Index, value: T, add: &M) {
            match &mut self.values[j] {
                Some(slot) => *slot = add.apply(*slot, value),
                slot @ None => {
                    *slot = Some(value);
                    self.touched.push(j);
                }
            }
        }

        pub(crate) fn extract_sorted(&mut self) -> (Vec<Index>, Vec<T>) {
            self.touched.sort_unstable();
            let mut indices = Vec::with_capacity(self.touched.len());
            let mut values = Vec::with_capacity(self.touched.len());
            for &j in &self.touched {
                let slot = self.values[j]
                    .take()
                    .expect("touched position holds a value"); // lint: allow(panic) — the touched set only records positions that hold values
                indices.push(j);
                values.push(slot);
            }
            self.touched.clear();
            (indices, values)
        }
    }

    /// `bool`-flag mask filter: loading a row walks the previous row's marks to
    /// reset them.
    #[derive(Debug)]
    pub(crate) struct BoolMaskFilter {
        marked: Vec<bool>,
        touched: Vec<Index>,
        complemented: bool,
    }

    impl BoolMaskFilter {
        pub(crate) fn new(ncols: Index, complemented: bool) -> Self {
            BoolMaskFilter {
                marked: vec![false; ncols],
                touched: Vec::new(),
                complemented,
            }
        }

        pub(crate) fn load(&mut self, present: impl IntoIterator<Item = Index>) {
            for &j in &self.touched {
                self.marked[j] = false;
            }
            self.touched.clear();
            for j in present {
                if !self.marked[j] {
                    self.marked[j] = true;
                    self.touched.push(j);
                }
            }
        }

        #[inline]
        pub(crate) fn allows(&self, j: Index) -> bool {
            self.marked[j] != self.complemented
        }

        #[inline]
        pub(crate) fn allowed_is_empty(&self) -> bool {
            !self.complemented && self.touched.is_empty()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn spa_scatter_accumulates_and_sorts() {
        let mut spa = SparseAccumulator::new(10);
        let add = Plus::<u64>::new();
        spa.scatter(7, 1, &add);
        spa.scatter(2, 2, &add);
        spa.scatter(7, 3, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!(idx, vec![2, 7]);
        assert_eq!(vals, vec![2, 4]);
        // reusable after extraction: the epoch bump must retire the old slots
        spa.scatter(7, 5, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!(idx, vec![7]);
        assert_eq!(vals, vec![5]);
    }

    #[test]
    fn spa_epoch_wrap_resets_stamps() {
        let mut spa = SparseAccumulator::new(4);
        let add = Plus::<u64>::new();
        spa.scatter(1, 7, &add);
        let _ = spa.extract_sorted();
        // force the wrap path: a stale stamp equal to the post-wrap epoch must not
        // resurrect the old value
        spa.epoch = u32::MAX;
        spa.scatter(1, 9, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!((idx, vals), (vec![1], vec![9]));
        spa.scatter(1, 3, &add);
        spa.scatter(2, 4, &add);
        let (idx, vals) = spa.extract_sorted();
        assert_eq!((idx, vals), (vec![1, 2], vec![3, 4]));
    }

    #[test]
    fn mask_filter_plain_and_complemented() {
        let mut plain = MaskFilter::new(5, false);
        plain.load([1, 3]);
        assert!(plain.allows(1));
        assert!(plain.allows(3));
        assert!(!plain.allows(0));
        assert!(!plain.allowed_is_empty());

        let mut comp = MaskFilter::new(5, true);
        comp.load([1, 3]);
        assert!(!comp.allows(1));
        assert!(comp.allows(0));
        assert!(!comp.allowed_is_empty());

        // reloading retires previous marks without a reset walk
        plain.load([0]);
        assert!(plain.allows(0));
        assert!(!plain.allows(1));
        plain.load([]);
        assert!(plain.allowed_is_empty());
    }

    #[test]
    fn mask_filter_epoch_wrap() {
        let mut filter = MaskFilter::new(3, false);
        filter.load([2]);
        filter.epoch = u32::MAX;
        filter.load([0]);
        assert!(filter.allows(0));
        assert!(!filter.allows(2), "stale mark must not survive the wrap");
    }

    #[test]
    fn reference_accumulators_match_stamped() {
        let add = Plus::<u64>::new();
        let mut spa = SparseAccumulator::new(16);
        let mut old = reference::OptionSlotAccumulator::new(16);
        for &(j, v) in &[(3usize, 5u64), (9, 1), (3, 2), (15, 7), (0, 4)] {
            spa.scatter(j, v, &add);
            old.scatter(j, v, &add);
        }
        assert_eq!(spa.extract_sorted(), old.extract_sorted());

        let mut new_filter = MaskFilter::new(8, true);
        let mut old_filter = reference::BoolMaskFilter::new(8, true);
        new_filter.load([1, 5, 1]);
        old_filter.load([1, 5, 1]);
        for j in 0..8 {
            assert_eq!(new_filter.allows(j), old_filter.allows(j));
        }
        assert_eq!(new_filter.allowed_is_empty(), old_filter.allowed_is_empty());
    }

    #[test]
    fn heuristic_prefers_merge_for_sparse_rows() {
        assert!(!spa_is_profitable(2, 1000));
        assert!(spa_is_profitable(300, 1_000_000));
        assert!(spa_is_profitable(10, 64));
    }
}
