//! GraphBLAS operations.
//!
//! Each submodule implements one operation family from the paper's Table I:
//!
//! | GraphBLAS method       | module        | notation                         |
//! |------------------------|---------------|----------------------------------|
//! | `GrB_mxm`              | [`mod@mxm`]   | `C⟨M⟩ = A ⊕.⊗ B`                 |
//! | `GrB_vxm`              | [`mod@vxm`]   | `wᵀ⟨mᵀ⟩ = uᵀ ⊕.⊗ A`              |
//! | `GrB_mxv`              | [`mod@mxv`]   | `w⟨m⟩ = A ⊕.⊗ u`                 |
//! | `GrB_eWiseAdd`         | [`ewise_add`] | `C⟨M⟩ = A ⊕ B` (set union)       |
//! | `GrB_eWiseMult`        | [`ewise_mult`]| `C⟨M⟩ = A ⊗ B` (set intersection)|
//! | `GrB_extract`          | [`extract`]   | `C⟨M⟩ = A(I, J)`                 |
//! | `GrB_apply`            | [`apply`]     | `C⟨M⟩ = f(A)`                    |
//! | `GxB_select`           | [`select`]    | `C⟨M⟩ = f(A, k)`                 |
//! | `GrB_reduce`           | [`reduce`]    | `w⟨m⟩ = [⊕ⱼ A(:, j)]`, `s = ⊕ᵢⱼ` |
//! | `GrB_assign`           | [`assign`]    | `C⟨M⟩ = A` (masked write)        |
//! | `GrB_transpose`        | [`crate::Matrix::transpose`] | `C⟨M⟩ = Aᵀ`       |
//! | `GrB_build`            | [`crate::Matrix::from_tuples`] / [`crate::Vector::from_tuples`] | |
//! | `GrB_extractTuples`    | [`crate::Matrix::extract_tuples`] / [`crate::Vector::extract_tuples`] | |
//!
//! The multiplication kernels use row-wise Gustavson accumulation with a per-row
//! choice (by flop estimate) between a dense value+marker SPA and a
//! gather–sort–combine merge for very sparse rows (the private `accum` module) — and masks are
//! pushed down into the kernels so disallowed output positions never cost a
//! multiplication. The rayon-parallel variants (`*_par`) split the output rows into
//! contiguous chunks, one accumulator per chunk.

mod accum;

pub mod apply;
pub mod assign;
pub mod concat;
pub mod ewise_add;
pub mod ewise_mult;
pub mod ewise_union;
pub mod extract;
pub mod kronecker;
pub mod mxm;
pub mod mxv;
pub mod par;
pub mod reduce;
pub mod select;
pub mod vxm;

pub use apply::{
    apply_matrix, apply_matrix_binop_left, apply_matrix_binop_right, apply_vector,
    apply_vector_binop_left, apply_vector_binop_right,
};
pub use assign::{assign_scalar_vector_masked, assign_vector_masked};
pub use concat::{concat, concat_cols, concat_rows, split};
pub use ewise_add::{ewise_add_matrix, ewise_add_vector};
pub use ewise_mult::{ewise_mult_matrix, ewise_mult_vector};
pub use ewise_union::{ewise_union_matrix, ewise_union_vector};
pub use extract::{extract_col, extract_row, extract_submatrix, extract_subvector};
pub use kronecker::{kronecker, kronecker_power};
pub use mxm::{
    mxm, mxm_masked, mxm_masked_postfilter, mxm_masked_reference_spa, mxm_par, mxm_reference,
};
pub use mxv::{mxv, mxv_masked, mxv_par};
pub use par::{
    apply_matrix_par, ewise_add_matrix_par, ewise_mult_matrix_par, mxm_masked_par, mxv_masked_par,
    select_matrix_par, transpose_par, vxm_masked_par,
};
pub use reduce::{
    reduce_matrix_cols, reduce_matrix_rows, reduce_matrix_rows_par, reduce_matrix_scalar,
    reduce_vector_scalar,
};
pub use select::{select_matrix, select_vector};
pub use vxm::{vxm, vxm_masked};

use crate::error::{Error, Result};
use crate::matrix::Matrix;
use crate::monoid::Monoid;
use crate::scalar::Scalar;
use crate::types::Index;

/// Check that two matrices have identical shape, reporting the axis that actually
/// mismatched (rows are checked first).
pub(crate) fn check_same_shape<A: Scalar, B: Scalar>(
    rows_context: &'static str,
    cols_context: &'static str,
    a: &Matrix<A>,
    b: &Matrix<B>,
) -> Result<()> {
    if a.nrows() != b.nrows() {
        return Err(Error::DimensionMismatch {
            context: rows_context,
            expected: a.nrows(),
            actual: b.nrows(),
        });
    }
    if a.ncols() != b.ncols() {
        return Err(Error::DimensionMismatch {
            context: cols_context,
            expected: a.ncols(),
            actual: b.ncols(),
        });
    }
    Ok(())
}

/// Combine an unsorted list of `(index, value)` products into a sorted,
/// duplicate-free list by folding duplicates with the monoid `add`.
///
/// The multiplication kernels use this gather–sort–combine path as the sorted-merge
/// fallback for rows too sparse to justify the dense SPA (see the `accum` module);
/// the reference kernels ([`mxm_reference`], [`mxm_masked_postfilter`]) use it for
/// every row.
pub(crate) fn combine_products<T, M>(mut products: Vec<(Index, T)>, add: M) -> (Vec<Index>, Vec<T>)
where
    T: Scalar,
    M: Monoid<T>,
{
    if products.is_empty() {
        return (Vec::new(), Vec::new());
    }
    products.sort_by_key(|&(i, _)| i);
    let mut indices = Vec::with_capacity(products.len());
    let mut values: Vec<T> = Vec::with_capacity(products.len());
    for (i, v) in products {
        if indices.last() == Some(&i) {
            let slot = values.last_mut().expect("values parallel to indices"); // lint: allow(panic) — values grows in lockstep with indices
            *slot = add.apply(*slot, v);
        } else {
            indices.push(i);
            values.push(v);
        }
    }
    (indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn combine_products_sorts_and_folds() {
        let products = vec![(3, 1u64), (1, 2), (3, 4), (0, 7)];
        let (idx, vals) = combine_products(products, Plus::new());
        assert_eq!(idx, vec![0, 1, 3]);
        assert_eq!(vals, vec![7, 2, 5]);
    }

    #[test]
    fn combine_products_empty() {
        let (idx, vals) = combine_products(Vec::<(Index, u64)>::new(), Plus::new());
        assert!(idx.is_empty());
        assert!(vals.is_empty());
    }
}
