//! Select entries by an index-aware predicate (`GxB_select` / `GrB_select`).
//!
//! The paper's Q2 incremental algorithm uses `select` with the "value equals 2"
//! predicate to keep the cells of the `AC` matrix where both endpoints of a new
//! friendship like the same comment.

use crate::matrix::Matrix;
use crate::ops_traits::IndexUnaryOp;
use crate::scalar::Scalar;
use crate::types::Index;
use crate::vector::Vector;

/// `w = f(u, k)`: keep the stored vector elements for which the predicate holds.
///
/// The predicate receives `(index, 0, value)` so the same operators work for vectors
/// and matrices.
pub fn select_vector<T, Op>(u: &Vector<T>, op: Op) -> Vector<T>
where
    T: Scalar,
    Op: IndexUnaryOp<T>,
{
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (i, v) in u.iter() {
        if op.keep(i, 0, v) {
            indices.push(i);
            values.push(v);
        }
    }
    Vector::from_sorted_parts(u.size(), indices, values)
}

/// `C = f(A, k)`: keep the stored matrix elements for which the predicate holds.
pub fn select_matrix<T, Op>(a: &Matrix<T>, op: Op) -> Matrix<T>
where
    T: Scalar,
    Op: IndexUnaryOp<T>,
{
    let mut row_ptr = Vec::with_capacity(a.nrows() + 1);
    let mut col_idx: Vec<Index> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    row_ptr.push(0);
    for r in 0..a.nrows() {
        let (cols, vals) = a.row(r);
        for (pos, &c) in cols.iter().enumerate() {
            if op.keep(r, c, vals[pos]) {
                col_idx.push(c);
                values.push(vals[pos]);
            }
        }
        row_ptr.push(col_idx.len());
    }
    Matrix::from_csr_parts(a.nrows(), a.ncols(), row_ptr, col_idx, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{NonZero, Plus, SelectFn, StrictLowerTriangle, ValueEq, ValueGt};

    #[test]
    fn select_vector_value_gt() {
        let u = Vector::from_tuples(6, &[(0, 1u64), (2, 5), (4, 3)], Plus::new()).unwrap();
        let w = select_vector(&u, ValueGt::new(2u64));
        assert_eq!(w.extract_tuples(), vec![(2, 5), (4, 3)]);
        assert_eq!(w.size(), 6);
    }

    #[test]
    fn select_vector_nonzero_drops_explicit_zeros() {
        let u = Vector::from_tuples(4, &[(0, 0u64), (1, 7)], Plus::new()).unwrap();
        let w = select_vector(&u, NonZero::new());
        assert_eq!(w.extract_tuples(), vec![(1, 7)]);
    }

    #[test]
    fn select_matrix_value_eq_two() {
        // the AC-matrix filtering step of Q2 incremental
        let ac = Matrix::from_tuples(
            3,
            2,
            &[(0, 0, 1u64), (1, 0, 2), (1, 1, 1), (2, 1, 2)],
            Plus::new(),
        )
        .unwrap();
        let filtered = select_matrix(&ac, ValueEq::new(2u64));
        assert_eq!(filtered.extract_tuples(), vec![(1, 0, 2), (2, 1, 2)]);
        assert_eq!(filtered.nrows(), 3);
        assert_eq!(filtered.ncols(), 2);
    }

    #[test]
    fn select_matrix_structural_predicate() {
        let a = Matrix::from_tuples(
            3,
            3,
            &[(0, 1, 1u64), (1, 0, 2), (2, 1, 3), (2, 2, 4)],
            Plus::new(),
        )
        .unwrap();
        let lower = select_matrix(&a, StrictLowerTriangle);
        assert_eq!(lower.extract_tuples(), vec![(1, 0, 2), (2, 1, 3)]);
    }

    #[test]
    fn select_with_custom_closure() {
        let u = Vector::from_tuples(8, &[(1, 1u64), (2, 2), (6, 3)], Plus::new()).unwrap();
        let even_index = SelectFn::new(|i: Index, _c: Index, _v: u64| i.is_multiple_of(2));
        let w = select_vector(&u, even_index);
        assert_eq!(w.extract_tuples(), vec![(2, 2), (6, 3)]);
    }

    #[test]
    fn select_on_empty_containers() {
        let u = Vector::<u64>::new(3);
        assert_eq!(select_vector(&u, NonZero::new()).nvals(), 0);
        let a = Matrix::<u64>::new(2, 2);
        assert_eq!(select_matrix(&a, NonZero::new()).nvals(), 0);
    }
}
