//! Vector–matrix multiplication `wᵀ⟨mᵀ⟩ = uᵀ ⊕.⊗ A` (`GrB_vxm`).
//!
//! With the matrix stored in CSR, `vxm` is the natural "push" direction: for each
//! stored element `u[j]`, scatter `u[j] ⊗ A[j, k]` into the output positions `k`.

use crate::error::{Error, Result};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;
use crate::vector::Vector;

use super::combine_products;

fn check_dims<A, B>(u: &Vector<A>, a: &Matrix<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
{
    if u.size() != a.nrows() {
        return Err(Error::DimensionMismatch {
            context: "vxm",
            expected: a.nrows(),
            actual: u.size(),
        });
    }
    Ok(())
}

/// `w = uᵀ ⊕.⊗ A`: multiply a sparse row vector by a sparse matrix over a semiring.
pub fn vxm<A, B, S>(u: &Vector<A>, a: &Matrix<B>, semiring: S) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(u, a)?;
    let mul = semiring.mul();
    let mut products: Vec<(Index, S::Output)> = Vec::new();
    for (j, uj) in u.iter() {
        let (cols, vals) = a.row(j);
        for (pos, &k) in cols.iter().enumerate() {
            products.push((k, mul.apply(uj, vals[pos])));
        }
    }
    let (indices, values) = combine_products(products, semiring.add());
    Ok(Vector::from_sorted_parts(a.ncols(), indices, values))
}

/// Masked variant: `w⟨m⟩ = uᵀ ⊕.⊗ A`. Output positions not allowed by the mask are
/// dropped after accumulation.
pub fn vxm_masked<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    u: &Vector<A>,
    a: &Matrix<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_dims(u, a)?;
    if mask.size() != a.ncols() {
        return Err(Error::DimensionMismatch {
            context: "vxm (mask)",
            expected: a.ncols(),
            actual: mask.size(),
        });
    }
    let mut w = vxm(u, a, semiring)?;
    w.retain(|i, _| mask.allows(i));
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{First, Plus};
    use crate::semiring::stock;

    fn matrix() -> Matrix<u64> {
        // 3x4
        // [ .  2  .  1 ]
        // [ 3  .  .  . ]
        // [ .  4  5  . ]
        Matrix::from_tuples(
            3,
            4,
            &[(0, 1, 2u64), (0, 3, 1), (1, 0, 3), (2, 1, 4), (2, 2, 5)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn vxm_plus_times() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let w = vxm(&u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.size(), 4);
        assert_eq!(w.get(0), None);
        assert_eq!(w.get(1), Some(2 * 2 + 10 * 4));
        assert_eq!(w.get(2), Some(50));
        assert_eq!(w.get(3), Some(2));
    }

    #[test]
    fn vxm_matches_mxv_on_transpose() {
        let a = matrix();
        let u = Vector::from_tuples(3, &[(0, 1u64), (1, 7), (2, 3)], Plus::new()).unwrap();
        let via_vxm = vxm(&u, &a, stock::plus_times::<u64>()).unwrap();
        let via_mxv = crate::ops::mxv(&a.transpose(), &u, stock::plus_times::<u64>()).unwrap();
        assert_eq!(via_vxm, via_mxv);
    }

    #[test]
    fn vxm_dimension_mismatch() {
        let u = Vector::<u64>::new(5);
        assert!(vxm(&u, &matrix(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn vxm_masked_filters_output_positions() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let mask_vec = Vector::from_tuples(4, &[(1, true), (3, true)], First::new()).unwrap();
        let mask = VectorMask::structural(&mask_vec);
        let w = vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.get(1), Some(44));
        assert_eq!(w.get(3), Some(2));
        assert_eq!(w.get(2), None);
    }

    #[test]
    fn vxm_masked_checks_mask_dimension() {
        let u = Vector::<u64>::new(3);
        let mask_vec = Vector::<bool>::new(2);
        let mask = VectorMask::structural(&mask_vec);
        assert!(vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn vxm_lor_land_is_bfs_step() {
        // frontier at node 0; edges 0->1, 0->3 reach columns 1 and 3
        let u = Vector::from_tuples(3, &[(0, 1u64)], Plus::new()).unwrap();
        let w = vxm(&u, &matrix(), stock::lor_land::<u64>()).unwrap();
        assert_eq!(w.get(1), Some(1));
        assert_eq!(w.get(3), Some(1));
        assert_eq!(w.nvals(), 2);
    }
}
