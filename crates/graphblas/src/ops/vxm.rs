//! Vector–matrix multiplication `wᵀ⟨mᵀ⟩ = uᵀ ⊕.⊗ A` (`GrB_vxm`).
//!
//! With the matrix stored in CSR, `vxm` is the natural "push" direction: for each
//! stored element `u[j]`, scatter `u[j] ⊗ A[j, k]` into the output positions `k`.
//! Like [`mod@super::mxm`], accumulation uses a dense SPA when the flop estimate warrants
//! it and falls back to gather–sort–combine for very sparse products, and masks are
//! pushed down into the scatter loop: products for disallowed output positions are
//! never formed. BFS-style complement masks (`w⟨¬visited⟩ = frontier ⊕.⊗ A`) benefit
//! directly — edges into already-visited vertices cost nothing.

use crate::error::{Error, Result};
use crate::mask::VectorMask;
use crate::matrix::Matrix;
use crate::ops_traits::BinaryOp;
use crate::scalar::{MaskValue, Scalar};
use crate::semiring::Semiring;
use crate::types::Index;
use crate::vector::Vector;

use super::accum::{spa_is_profitable, MaskFilter, SparseAccumulator};
use super::combine_products;

fn check_dims<A, B>(u: &Vector<A>, a: &Matrix<B>) -> Result<()>
where
    A: Scalar,
    B: Scalar,
{
    if u.size() != a.nrows() {
        return Err(Error::DimensionMismatch {
            context: "vxm",
            expected: a.nrows(),
            actual: u.size(),
        });
    }
    Ok(())
}

/// Scatter the products of the stored entries `u_idx`/`u_val` (a subrange of `u`)
/// against the rows of `a`, honouring an optional preloaded output filter. Returns
/// sorted `(indices, values)`.
pub(crate) fn scatter_entries<A, B, S>(
    u_idx: &[Index],
    u_val: &[A],
    a: &Matrix<B>,
    semiring: &S,
    filter: Option<&MaskFilter>,
) -> (Vec<Index>, Vec<S::Output>)
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    let add = semiring.add();
    let mul = semiring.mul();
    let flops: usize = u_idx.iter().map(|&j| a.row_nvals(j)).sum();
    if flops == 0 {
        return (Vec::new(), Vec::new());
    }
    if spa_is_profitable(flops, a.ncols()) {
        let mut spa = SparseAccumulator::new(a.ncols());
        for (pos, &j) in u_idx.iter().enumerate() {
            let uj = u_val[pos];
            let (cols, vals) = a.row(j);
            for (apos, &k) in cols.iter().enumerate() {
                if filter.is_none_or(|f| f.allows(k)) {
                    spa.scatter(k, mul.apply(uj, vals[apos]), &add);
                }
            }
        }
        spa.extract_sorted()
    } else {
        let mut products: Vec<(Index, S::Output)> = Vec::with_capacity(flops);
        for (pos, &j) in u_idx.iter().enumerate() {
            let uj = u_val[pos];
            let (cols, vals) = a.row(j);
            for (apos, &k) in cols.iter().enumerate() {
                if filter.is_none_or(|f| f.allows(k)) {
                    products.push((k, mul.apply(uj, vals[apos])));
                }
            }
        }
        combine_products(products, add)
    }
}

/// Build the output-position filter for a vector mask (`O(mask nvals)`).
pub(crate) fn vector_mask_filter<M: MaskValue>(
    mask: &VectorMask<'_, M>,
    ncols: Index,
) -> MaskFilter {
    let mut filter = MaskFilter::new(ncols, mask.is_complemented());
    filter.load(mask.present_positions());
    filter
}

/// Check that the operands conform and that the mask lives in the output space.
pub(crate) fn check_mask_dims<A, B, M>(
    mask: &VectorMask<'_, M>,
    u: &Vector<A>,
    a: &Matrix<B>,
) -> Result<()>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
{
    check_dims(u, a)?;
    if mask.size() != a.ncols() {
        return Err(Error::DimensionMismatch {
            context: "vxm (mask)",
            expected: a.ncols(),
            actual: mask.size(),
        });
    }
    Ok(())
}

/// `w = uᵀ ⊕.⊗ A`: multiply a sparse row vector by a sparse matrix over a semiring.
pub fn vxm<A, B, S>(u: &Vector<A>, a: &Matrix<B>, semiring: S) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    S: Semiring<A, B>,
{
    check_dims(u, a)?;
    let (indices, values) = scatter_entries(u.indices(), u.values(), a, &semiring, None);
    Ok(Vector::from_sorted_parts(a.ncols(), indices, values))
}

/// Masked variant: `w⟨m⟩ = uᵀ ⊕.⊗ A`. The mask is pushed down into the scatter loop:
/// products for disallowed output positions are skipped before the multiplication is
/// applied (complement masks included), and an empty non-complemented mask returns
/// without touching the operands.
pub fn vxm_masked<A, B, S, M>(
    mask: &VectorMask<'_, M>,
    u: &Vector<A>,
    a: &Matrix<B>,
    semiring: S,
) -> Result<Vector<S::Output>>
where
    A: Scalar,
    B: Scalar,
    M: MaskValue,
    S: Semiring<A, B>,
{
    check_mask_dims(mask, u, a)?;
    let filter = vector_mask_filter(mask, a.ncols());
    if filter.allowed_is_empty() {
        return Ok(Vector::new(a.ncols()));
    }
    let (indices, values) = scatter_entries(u.indices(), u.values(), a, &semiring, Some(&filter));
    Ok(Vector::from_sorted_parts(a.ncols(), indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{First, Plus};
    use crate::semiring::stock;

    fn matrix() -> Matrix<u64> {
        // 3x4
        // [ .  2  .  1 ]
        // [ 3  .  .  . ]
        // [ .  4  5  . ]
        Matrix::from_tuples(
            3,
            4,
            &[(0, 1, 2u64), (0, 3, 1), (1, 0, 3), (2, 1, 4), (2, 2, 5)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn vxm_plus_times() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let w = vxm(&u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.size(), 4);
        assert_eq!(w.get(0), None);
        assert_eq!(w.get(1), Some(2 * 2 + 10 * 4));
        assert_eq!(w.get(2), Some(50));
        assert_eq!(w.get(3), Some(2));
    }

    #[test]
    fn vxm_matches_mxv_on_transpose() {
        let a = matrix();
        let u = Vector::from_tuples(3, &[(0, 1u64), (1, 7), (2, 3)], Plus::new()).unwrap();
        let via_vxm = vxm(&u, &a, stock::plus_times::<u64>()).unwrap();
        let via_mxv = crate::ops::mxv(&a.transpose(), &u, stock::plus_times::<u64>()).unwrap();
        assert_eq!(via_vxm, via_mxv);
    }

    #[test]
    fn vxm_dimension_mismatch() {
        let u = Vector::<u64>::new(5);
        assert!(vxm(&u, &matrix(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn vxm_masked_filters_output_positions() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let mask_vec = Vector::from_tuples(4, &[(1, true), (3, true)], First::new()).unwrap();
        let mask = VectorMask::structural(&mask_vec);
        let w = vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.get(1), Some(44));
        assert_eq!(w.get(3), Some(2));
        assert_eq!(w.get(2), None);
    }

    #[test]
    fn vxm_masked_complemented_mask() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let mask_vec = Vector::from_tuples(4, &[(1, true), (3, true)], First::new()).unwrap();
        let mask = VectorMask::structural(&mask_vec).complement();
        let w = vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.get(1), None);
        assert_eq!(w.get(3), None);
        assert_eq!(w.get(2), Some(50));
    }

    #[test]
    fn vxm_masked_empty_mask_short_circuits() {
        let u = Vector::from_tuples(3, &[(0, 2u64), (2, 10)], Plus::new()).unwrap();
        let mask_vec = Vector::<bool>::new(4);
        let mask = VectorMask::structural(&mask_vec);
        let w = vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).unwrap();
        assert_eq!(w.nvals(), 0);
    }

    #[test]
    fn vxm_masked_checks_mask_dimension() {
        let u = Vector::<u64>::new(3);
        let mask_vec = Vector::<bool>::new(2);
        let mask = VectorMask::structural(&mask_vec);
        assert!(vxm_masked(&mask, &u, &matrix(), stock::plus_times::<u64>()).is_err());
    }

    #[test]
    fn vxm_lor_land_is_bfs_step() {
        // frontier at node 0; edges 0->1, 0->3 reach columns 1 and 3
        let u = Vector::from_tuples(3, &[(0, 1u64)], Plus::new()).unwrap();
        let w = vxm(&u, &matrix(), stock::lor_land::<u64>()).unwrap();
        assert_eq!(w.get(1), Some(1));
        assert_eq!(w.get(3), Some(1));
        assert_eq!(w.nvals(), 2);
    }
}
