//! Extraction of sub-vectors and sub-matrices (`GrB_extract`).
//!
//! `extract_submatrix(A, I, J)` returns a `|I| × |J|` matrix `C` with
//! `C[i', j'] = A[I[i'], J[j']]` — indices are *renumbered*, which is exactly what the
//! paper's Q2 batch algorithm needs to build the induced friendship subgraph of the
//! users who like a comment.

use crate::error::Result;
use crate::matrix::Matrix;
use crate::scalar::Scalar;
use crate::types::{Index, IndexSelection};
use crate::vector::Vector;

/// `w = u(I)`: extract a sub-vector. Output position `k` holds `u[I[k]]` if stored.
pub fn extract_subvector<T: Scalar>(
    u: &Vector<T>,
    selection: &IndexSelection<'_>,
) -> Result<Vector<T>> {
    selection.validate(u.size(), "extract_subvector")?;
    match selection {
        IndexSelection::All => Ok(u.clone()),
        IndexSelection::List(list) => {
            let mut out = Vector::with_capacity(list.len(), list.len().min(u.nvals()));
            for (new_pos, &old_pos) in list.iter().enumerate() {
                if let Some(v) = u.get(old_pos) {
                    out.set(new_pos, v).expect("in bounds by construction"); // lint: allow(panic) — new_pos enumerates the freshly sized output
                }
            }
            Ok(out)
        }
    }
}

/// `C = A(I, J)`: extract a sub-matrix with renumbered indices.
pub fn extract_submatrix<T: Scalar>(
    a: &Matrix<T>,
    rows: &IndexSelection<'_>,
    cols: &IndexSelection<'_>,
) -> Result<Matrix<T>> {
    rows.validate(a.nrows(), "extract_submatrix (rows)")?;
    cols.validate(a.ncols(), "extract_submatrix (cols)")?;

    let out_nrows = rows.len(a.nrows());
    let out_ncols = cols.len(a.ncols());

    // Map original column -> new column (None = not selected).
    let col_map: Option<Vec<Option<Index>>> = match cols {
        IndexSelection::All => None,
        IndexSelection::List(list) => {
            let mut map = vec![None; a.ncols()];
            for (new, &old) in list.iter().enumerate() {
                map[old] = Some(new);
            }
            Some(map)
        }
    };

    let mut row_ptr = Vec::with_capacity(out_nrows + 1);
    let mut col_idx: Vec<Index> = Vec::new();
    let mut values: Vec<T> = Vec::new();
    row_ptr.push(0);

    let emit_row = |old_row: Index, col_idx: &mut Vec<Index>, values: &mut Vec<T>| {
        let (cols_in_row, vals_in_row) = a.row(old_row);
        match &col_map {
            None => {
                col_idx.extend_from_slice(cols_in_row);
                values.extend_from_slice(vals_in_row);
            }
            Some(map) => {
                let mut picked: Vec<(Index, T)> = Vec::new();
                for (pos, &c) in cols_in_row.iter().enumerate() {
                    if let Some(new_c) = map[c] {
                        picked.push((new_c, vals_in_row[pos]));
                    }
                }
                // The selection list may reorder columns, so re-sort by the new index.
                picked.sort_by_key(|&(c, _)| c);
                for (c, v) in picked {
                    col_idx.push(c);
                    values.push(v);
                }
            }
        }
    };

    match rows {
        IndexSelection::All => {
            for r in 0..a.nrows() {
                emit_row(r, &mut col_idx, &mut values);
                row_ptr.push(col_idx.len());
            }
        }
        IndexSelection::List(list) => {
            for &r in list.iter() {
                emit_row(r, &mut col_idx, &mut values);
                row_ptr.push(col_idx.len());
            }
        }
    }

    Ok(Matrix::from_csr_parts(
        out_nrows, out_ncols, row_ptr, col_idx, values,
    ))
}

/// Extract row `i` of a matrix as a vector of size `ncols`.
pub fn extract_row<T: Scalar>(a: &Matrix<T>, row: Index) -> Result<Vector<T>> {
    if row >= a.nrows() {
        return Err(crate::Error::IndexOutOfBounds {
            index: row,
            bound: a.nrows(),
            context: "extract_row",
        });
    }
    let (cols, vals) = a.row(row);
    Ok(Vector::from_sorted_parts(
        a.ncols(),
        cols.to_vec(),
        vals.to_vec(),
    ))
}

/// Extract column `j` of a matrix as a vector of size `nrows`.
pub fn extract_col<T: Scalar>(a: &Matrix<T>, col: Index) -> Result<Vector<T>> {
    if col >= a.ncols() {
        return Err(crate::Error::IndexOutOfBounds {
            index: col,
            bound: a.ncols(),
            context: "extract_col",
        });
    }
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        if let Some(v) = a.get(r, col) {
            indices.push(r);
            values.push(v);
        }
    }
    Ok(Vector::from_sorted_parts(a.nrows(), indices, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    fn matrix() -> Matrix<u64> {
        // 4x4
        // [ 1  .  2  . ]
        // [ .  3  .  4 ]
        // [ 5  .  6  . ]
        // [ .  7  .  8 ]
        Matrix::from_tuples(
            4,
            4,
            &[
                (0, 0, 1u64),
                (0, 2, 2),
                (1, 1, 3),
                (1, 3, 4),
                (2, 0, 5),
                (2, 2, 6),
                (3, 1, 7),
                (3, 3, 8),
            ],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn extract_subvector_renumbers() {
        let u = Vector::from_tuples(6, &[(1, 10u64), (3, 30), (5, 50)], Plus::new()).unwrap();
        let sel = [3, 5, 0];
        let w = extract_subvector(&u, &IndexSelection::List(&sel)).unwrap();
        assert_eq!(w.size(), 3);
        assert_eq!(w.get(0), Some(30));
        assert_eq!(w.get(1), Some(50));
        assert_eq!(w.get(2), None);
    }

    #[test]
    fn extract_subvector_all_is_clone() {
        let u = Vector::from_tuples(4, &[(2, 2u64)], Plus::new()).unwrap();
        let w = extract_subvector(&u, &IndexSelection::All).unwrap();
        assert_eq!(w, u);
    }

    #[test]
    fn extract_subvector_out_of_bounds() {
        let u = Vector::<u64>::new(3);
        let sel = [4];
        assert!(extract_subvector(&u, &IndexSelection::List(&sel)).is_err());
    }

    #[test]
    fn extract_submatrix_induced_subgraph() {
        // the Q2-style extraction: select rows & cols {0, 2}
        let sel = [0, 2];
        let sub = extract_submatrix(
            &matrix(),
            &IndexSelection::List(&sel),
            &IndexSelection::List(&sel),
        )
        .unwrap();
        assert_eq!(sub.nrows(), 2);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(0, 0), Some(1));
        assert_eq!(sub.get(0, 1), Some(2));
        assert_eq!(sub.get(1, 0), Some(5));
        assert_eq!(sub.get(1, 1), Some(6));
    }

    #[test]
    fn extract_submatrix_reordered_selection() {
        let rows = [2, 0];
        let cols = [2, 0];
        let sub = extract_submatrix(
            &matrix(),
            &IndexSelection::List(&rows),
            &IndexSelection::List(&cols),
        )
        .unwrap();
        // new (0,0) = old (2,2) = 6; new (1,1) = old (0,0) = 1
        assert_eq!(sub.get(0, 0), Some(6));
        assert_eq!(sub.get(0, 1), Some(5));
        assert_eq!(sub.get(1, 0), Some(2));
        assert_eq!(sub.get(1, 1), Some(1));
    }

    #[test]
    fn extract_submatrix_all_rows_some_cols() {
        let cols = [1, 3];
        let sub = extract_submatrix(
            &matrix(),
            &IndexSelection::All,
            &IndexSelection::List(&cols),
        )
        .unwrap();
        assert_eq!(sub.nrows(), 4);
        assert_eq!(sub.ncols(), 2);
        assert_eq!(sub.get(1, 0), Some(3));
        assert_eq!(sub.get(1, 1), Some(4));
        assert_eq!(sub.get(3, 1), Some(8));
        assert_eq!(sub.nvals(), 4);
    }

    #[test]
    fn extract_submatrix_bounds_checked() {
        let bad = [9];
        assert!(
            extract_submatrix(&matrix(), &IndexSelection::List(&bad), &IndexSelection::All)
                .is_err()
        );
        assert!(
            extract_submatrix(&matrix(), &IndexSelection::All, &IndexSelection::List(&bad))
                .is_err()
        );
    }

    #[test]
    fn extract_row_and_col() {
        let r = extract_row(&matrix(), 1).unwrap();
        assert_eq!(r.extract_tuples(), vec![(1, 3), (3, 4)]);
        assert_eq!(r.size(), 4);
        let c = extract_col(&matrix(), 0).unwrap();
        assert_eq!(c.extract_tuples(), vec![(0, 1), (2, 5)]);
        assert!(extract_row(&matrix(), 4).is_err());
        assert!(extract_col(&matrix(), 4).is_err());
    }
}
