//! Reductions (`GrB_reduce`): fold a matrix into a vector (per row / per column) or a
//! matrix / vector into a scalar, using a monoid.

use rayon::prelude::*;

use crate::matrix::Matrix;
use crate::monoid::Monoid;
use crate::scalar::Scalar;
use crate::types::Index;
use crate::vector::Vector;

/// `w = [⊕ⱼ A(:, j)]`: reduce each row of the matrix to a single value.
///
/// Rows with no stored elements produce no output element (no implicit identity).
/// The paper's Q1 uses this to count the comments per post from the `RootPost` matrix.
pub fn reduce_matrix_rows<T, M>(a: &Matrix<T>, monoid: M) -> Vector<T>
where
    T: Scalar,
    M: Monoid<T>,
{
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for r in 0..a.nrows() {
        let (_, vals) = a.row(r);
        if vals.is_empty() {
            continue;
        }
        let mut acc = vals[0];
        for &v in &vals[1..] {
            acc = monoid.apply(acc, v);
        }
        indices.push(r);
        values.push(acc);
    }
    Vector::from_sorted_parts(a.nrows(), indices, values)
}

/// Parallel (rayon) variant of [`reduce_matrix_rows`].
pub fn reduce_matrix_rows_par<T, M>(a: &Matrix<T>, monoid: M) -> Vector<T>
where
    T: Scalar + Send,
    M: Monoid<T> + Sync,
{
    let results: Vec<(Index, T)> = (0..a.nrows())
        .into_par_iter()
        .filter_map(|r| {
            let (_, vals) = a.row(r);
            if vals.is_empty() {
                return None;
            }
            let mut acc = vals[0];
            for &v in &vals[1..] {
                acc = monoid.apply(acc, v);
            }
            Some((r, acc))
        })
        .collect();
    let mut indices = Vec::with_capacity(results.len());
    let mut values = Vec::with_capacity(results.len());
    for (i, v) in results {
        indices.push(i);
        values.push(v);
    }
    Vector::from_sorted_parts(a.nrows(), indices, values)
}

/// `w = [⊕ᵢ A(i, :)]`: reduce each column of the matrix to a single value.
///
/// Equivalent to reducing the rows of `Aᵀ`, but implemented as a single scatter pass.
pub fn reduce_matrix_cols<T, M>(a: &Matrix<T>, monoid: M) -> Vector<T>
where
    T: Scalar,
    M: Monoid<T>,
{
    let mut present = vec![false; a.ncols()];
    let mut acc: Vec<T> = vec![monoid.identity(); a.ncols()];
    for (_, c, v) in a.iter() {
        if present[c] {
            acc[c] = monoid.apply(acc[c], v);
        } else {
            acc[c] = v;
            present[c] = true;
        }
    }
    let mut indices = Vec::new();
    let mut values = Vec::new();
    for (c, &p) in present.iter().enumerate() {
        if p {
            indices.push(c);
            values.push(acc[c]);
        }
    }
    Vector::from_sorted_parts(a.ncols(), indices, values)
}

/// `s = ⊕ᵢⱼ A(i, j)`: reduce the whole matrix to a scalar. Returns the monoid
/// identity for an empty matrix.
pub fn reduce_matrix_scalar<T, M>(a: &Matrix<T>, monoid: M) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    a.values()
        .iter()
        .fold(monoid.identity(), |acc, &v| monoid.apply(acc, v))
}

/// `s = ⊕ᵢ u(i)`: reduce a vector to a scalar. Returns the monoid identity for an
/// empty vector.
pub fn reduce_vector_scalar<T, M>(u: &Vector<T>, monoid: M) -> T
where
    T: Scalar,
    M: Monoid<T>,
{
    u.values()
        .iter()
        .fold(monoid.identity(), |acc, &v| monoid.apply(acc, v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::stock;
    use crate::ops_traits::Plus;

    fn matrix() -> Matrix<u64> {
        // [ 1  2  . ]
        // [ .  .  . ]
        // [ 4  .  8 ]
        Matrix::from_tuples(
            3,
            3,
            &[(0, 0, 1u64), (0, 1, 2), (2, 0, 4), (2, 2, 8)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn row_reduction_skips_empty_rows() {
        let w = reduce_matrix_rows(&matrix(), stock::plus());
        assert_eq!(w.extract_tuples(), vec![(0, 3), (2, 12)]);
        assert_eq!(w.size(), 3);
    }

    #[test]
    fn row_reduction_par_matches_serial() {
        let serial = reduce_matrix_rows(&matrix(), stock::plus());
        let parallel = reduce_matrix_rows_par(&matrix(), stock::plus());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn row_reduction_with_max_monoid() {
        let w = reduce_matrix_rows(&matrix(), stock::max());
        assert_eq!(w.get(0), Some(2));
        assert_eq!(w.get(2), Some(8));
    }

    #[test]
    fn col_reduction() {
        let w = reduce_matrix_cols(&matrix(), stock::plus());
        assert_eq!(w.extract_tuples(), vec![(0, 5), (1, 2), (2, 8)]);
        assert_eq!(w.size(), 3);
    }

    #[test]
    fn col_reduction_matches_row_reduction_of_transpose() {
        let a = matrix();
        let direct = reduce_matrix_cols(&a, stock::plus());
        let via_transpose = reduce_matrix_rows(&a.transpose(), stock::plus());
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn scalar_reductions() {
        assert_eq!(reduce_matrix_scalar(&matrix(), stock::plus()), 15);
        assert_eq!(
            reduce_matrix_scalar(&Matrix::<u64>::new(2, 2), stock::plus()),
            0
        );
        let v = Vector::from_tuples(5, &[(1, 3u64), (4, 9)], Plus::new()).unwrap();
        assert_eq!(reduce_vector_scalar(&v, stock::plus()), 12);
        assert_eq!(reduce_vector_scalar(&v, stock::max()), 9);
        assert_eq!(
            reduce_vector_scalar(&Vector::<u64>::new(3), stock::plus()),
            0
        );
    }

    #[test]
    fn lor_row_reduction_is_presence_flag() {
        // Step 3 of Q2 incremental: row-wise OR of the filtered AC matrix
        let w = reduce_matrix_rows(&matrix(), stock::lor());
        assert_eq!(w.get(0), Some(1));
        assert_eq!(w.get(2), Some(1));
        assert_eq!(w.get(1), None);
    }
}
