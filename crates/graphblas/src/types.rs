//! Basic index types and index-selection helpers.

/// Index type for rows, columns and vector positions.
///
/// The GraphBLAS C API uses `GrB_Index` (a 64-bit unsigned integer); on 64-bit
/// platforms `usize` is equivalent and lets us index slices without casts.
pub type Index = usize;

/// A selection of indices used by extract/assign operations.
///
/// Mirrors the `GrB_ALL` / explicit index-list duality of the GraphBLAS API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexSelection<'a> {
    /// Select every index of the corresponding dimension (`GrB_ALL`).
    All,
    /// Select exactly the listed indices, in the given order.
    ///
    /// The output dimension equals the length of the list, and output position `k`
    /// corresponds to input position `list[k]` (indices are renumbered).
    List(&'a [Index]),
}

impl<'a> IndexSelection<'a> {
    /// Number of selected indices given the dimension of the source object.
    #[inline]
    pub fn len(&self, dimension: Index) -> Index {
        match self {
            IndexSelection::All => dimension,
            IndexSelection::List(list) => list.len(),
        }
    }

    /// Returns `true` if the selection is empty for the given dimension.
    #[inline]
    pub fn is_empty(&self, dimension: Index) -> bool {
        self.len(dimension) == 0
    }

    /// Largest index referenced by the selection, if any.
    pub fn max_index(&self) -> Option<Index> {
        match self {
            IndexSelection::All => None,
            IndexSelection::List(list) => list.iter().copied().max(),
        }
    }

    /// Validates that every referenced index is within `dimension`.
    pub fn validate(&self, dimension: Index, context: &'static str) -> crate::Result<()> {
        if let Some(max) = self.max_index() {
            if max >= dimension {
                return Err(crate::Error::IndexOutOfBounds {
                    index: max,
                    bound: dimension,
                    context,
                });
            }
        }
        Ok(())
    }
}

impl<'a> From<&'a [Index]> for IndexSelection<'a> {
    fn from(list: &'a [Index]) -> Self {
        IndexSelection::List(list)
    }
}

impl<'a> From<&'a Vec<Index>> for IndexSelection<'a> {
    fn from(list: &'a Vec<Index>) -> Self {
        IndexSelection::List(list.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_selection_len_tracks_dimension() {
        assert_eq!(IndexSelection::All.len(7), 7);
        assert_eq!(IndexSelection::All.len(0), 0);
        assert!(IndexSelection::All.is_empty(0));
        assert!(!IndexSelection::All.is_empty(3));
    }

    #[test]
    fn list_selection_len_is_list_len() {
        let idx = [0, 5, 2];
        let sel = IndexSelection::List(&idx);
        assert_eq!(sel.len(100), 3);
        assert_eq!(sel.max_index(), Some(5));
    }

    #[test]
    fn validate_rejects_out_of_bounds() {
        let idx = [0, 9];
        let sel = IndexSelection::List(&idx);
        assert!(sel.validate(10, "t").is_ok());
        assert!(sel.validate(9, "t").is_err());
    }

    #[test]
    fn all_validates_anything() {
        assert!(IndexSelection::All.validate(0, "t").is_ok());
    }

    #[test]
    fn conversions() {
        let v: Vec<Index> = vec![1, 2];
        let sel: IndexSelection = (&v).into();
        assert_eq!(sel.len(10), 2);
        let s: &[Index] = &v;
        let sel2: IndexSelection = s.into();
        assert_eq!(sel2, sel);
    }
}
