//! Scalar element traits.
//!
//! GraphBLAS objects are generic over the element type stored in the sparse
//! containers. Two traits organise the requirements:
//!
//! * [`Scalar`] — the minimal bound for anything stored in a [`crate::Vector`] or
//!   [`crate::Matrix`]: cheap to copy, comparable, thread-safe.
//! * [`Ring`] — scalars that carry the usual arithmetic structure needed by the
//!   stock monoids and semirings (`ZERO`, `ONE`, addition, multiplication, min/max).
//!   The GraphBLAS C API achieves the same with its predefined types; we use a trait
//!   implemented for the Rust primitive numeric types and `bool`.

use std::fmt::Debug;

/// Minimal bound for values stored in GraphBLAS containers.
pub trait Scalar: Copy + Clone + PartialEq + Debug + Send + Sync + 'static {}

impl<T> Scalar for T where T: Copy + Clone + PartialEq + Debug + Send + Sync + 'static {}

/// Values usable as mask entries: any stored value can be interpreted as a boolean.
///
/// In the GraphBLAS C API a *value mask* treats a stored element as `true` when it is
/// non-zero; a *structural mask* only cares about presence. [`MaskValue::is_truthy`]
/// implements the former interpretation.
pub trait MaskValue: Scalar {
    /// Whether the stored value counts as `true` for a value mask.
    fn is_truthy(self) -> bool;
}

/// Scalars with a commutative-semiring-friendly arithmetic structure.
///
/// This is intentionally small: it provides exactly what the stock operators in
/// [`crate::ops_traits`], [`crate::monoid`] and [`crate::semiring`] require.
pub trait Ring: Scalar + PartialOrd {
    /// Additive identity.
    const ZERO: Self;
    /// Multiplicative identity.
    const ONE: Self;
    /// Maximum representable value (identity of the `min` monoid).
    const MAX_VALUE: Self;
    /// Minimum representable value (identity of the `max` monoid).
    const MIN_VALUE: Self;

    /// Addition (wrapping for integers — graph workloads never approach the bounds,
    /// and wrapping keeps the kernels branch-free).
    fn ring_add(self, other: Self) -> Self;
    /// Subtraction (wrapping for integers).
    fn ring_sub(self, other: Self) -> Self;
    /// Multiplication (wrapping for integers).
    fn ring_mul(self, other: Self) -> Self;
    /// Minimum of two values.
    fn ring_min(self, other: Self) -> Self;
    /// Maximum of two values.
    fn ring_max(self, other: Self) -> Self;
    /// Conversion from a small unsigned count (used by `apply` style scaling ops).
    fn from_u64(v: u64) -> Self;
    /// Lossy conversion to `f64`, used for reporting and tests.
    fn to_f64(self) -> f64;
}

macro_rules! impl_ring_int {
    ($($t:ty),* $(,)?) => {
        $(
            impl Ring for $t {
                const ZERO: Self = 0;
                const ONE: Self = 1;
                const MAX_VALUE: Self = <$t>::MAX;
                const MIN_VALUE: Self = <$t>::MIN;

                #[inline(always)]
                fn ring_add(self, other: Self) -> Self { self.wrapping_add(other) }
                #[inline(always)]
                fn ring_sub(self, other: Self) -> Self { self.wrapping_sub(other) }
                #[inline(always)]
                fn ring_mul(self, other: Self) -> Self { self.wrapping_mul(other) }
                #[inline(always)]
                fn ring_min(self, other: Self) -> Self { if self < other { self } else { other } }
                #[inline(always)]
                fn ring_max(self, other: Self) -> Self { if self > other { self } else { other } }
                #[inline(always)]
                fn from_u64(v: u64) -> Self { v as $t }
                #[inline(always)]
                fn to_f64(self) -> f64 { self as f64 }
            }

            impl MaskValue for $t {
                #[inline(always)]
                fn is_truthy(self) -> bool { self != 0 }
            }
        )*
    };
}

macro_rules! impl_ring_float {
    ($($t:ty),* $(,)?) => {
        $(
            impl Ring for $t {
                const ZERO: Self = 0.0;
                const ONE: Self = 1.0;
                const MAX_VALUE: Self = <$t>::INFINITY;
                const MIN_VALUE: Self = <$t>::NEG_INFINITY;

                #[inline(always)]
                fn ring_add(self, other: Self) -> Self { self + other }
                #[inline(always)]
                fn ring_sub(self, other: Self) -> Self { self - other }
                #[inline(always)]
                fn ring_mul(self, other: Self) -> Self { self * other }
                #[inline(always)]
                fn ring_min(self, other: Self) -> Self { if self < other { self } else { other } }
                #[inline(always)]
                fn ring_max(self, other: Self) -> Self { if self > other { self } else { other } }
                #[inline(always)]
                fn from_u64(v: u64) -> Self { v as $t }
                #[inline(always)]
                fn to_f64(self) -> f64 { self as f64 }
            }

            impl MaskValue for $t {
                #[inline(always)]
                fn is_truthy(self) -> bool { self != 0.0 }
            }
        )*
    };
}

impl_ring_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
impl_ring_float!(f32, f64);

impl Ring for bool {
    const ZERO: Self = false;
    const ONE: Self = true;
    const MAX_VALUE: Self = true;
    const MIN_VALUE: Self = false;

    #[inline(always)]
    fn ring_add(self, other: Self) -> Self {
        self || other
    }
    #[inline(always)]
    fn ring_sub(self, other: Self) -> Self {
        self && !other
    }
    #[inline(always)]
    fn ring_mul(self, other: Self) -> Self {
        self && other
    }
    #[inline(always)]
    fn ring_min(self, other: Self) -> Self {
        self && other
    }
    #[inline(always)]
    fn ring_max(self, other: Self) -> Self {
        self || other
    }
    #[inline(always)]
    fn from_u64(v: u64) -> Self {
        v != 0
    }
    #[inline(always)]
    fn to_f64(self) -> f64 {
        if self {
            1.0
        } else {
            0.0
        }
    }
}

impl MaskValue for bool {
    #[inline(always)]
    fn is_truthy(self) -> bool {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ring_basics() {
        assert_eq!(u64::ZERO, 0);
        assert_eq!(u64::ONE, 1);
        assert_eq!(3u64.ring_add(4), 7);
        assert_eq!(3u64.ring_mul(4), 12);
        assert_eq!(3u64.ring_min(4), 3);
        assert_eq!(3u64.ring_max(4), 4);
        assert_eq!(u64::from_u64(9), 9);
    }

    #[test]
    fn integer_ring_wraps_instead_of_panicking() {
        assert_eq!(u8::MAX.ring_add(1), 0);
        assert_eq!(0u8.ring_sub(1), u8::MAX);
    }

    #[test]
    fn float_ring_basics() {
        assert_eq!(f64::ZERO, 0.0);
        assert_eq!(2.5f64.ring_add(0.5), 3.0);
        assert_eq!(2.0f64.ring_mul(4.0), 8.0);
        assert_eq!(f64::MAX_VALUE, f64::INFINITY);
    }

    #[test]
    fn bool_ring_is_or_and() {
        assert!(true.ring_add(false));
        assert!(!false.ring_add(false));
        assert!(!true.ring_mul(false));
        assert!(true.ring_mul(true));
        assert_eq!([bool::ZERO, bool::ONE], [false, true]);
    }

    #[test]
    fn mask_value_truthiness() {
        assert!(1u32.is_truthy());
        assert!(!0u32.is_truthy());
        assert!(true.is_truthy());
        assert!(!false.is_truthy());
        assert!(0.5f64.is_truthy());
        assert!(!0.0f64.is_truthy());
        assert!((-3i32).is_truthy());
    }

    #[test]
    fn to_f64_roundtrips_small_values() {
        assert_eq!(42u32.to_f64(), 42.0);
        assert_eq!(true.to_f64(), 1.0);
        assert_eq!(false.to_f64(), 0.0);
    }
}
