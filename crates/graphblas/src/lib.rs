//! # graphblas — a from-scratch GraphBLAS-style sparse linear algebra library
//!
//! This crate re-implements, in safe Rust, the subset of the [GraphBLAS] standard used
//! by the paper *"An incremental GraphBLAS solution for the 2018 TTC Social Media case
//! study"* (Elekes & Szárnyas, GrAPL @ IPDPS 2020). The original solution was built on
//! SuiteSparse:GraphBLAS; since no equivalent Rust implementation is available offline,
//! the sparse kernels are hand-rolled here (see `DESIGN.md` at the repository root).
//!
//! The public surface mirrors the paper's Table I:
//!
//! | GraphBLAS method    | here |
//! |---------------------|------|
//! | `GrB_mxm`           | [`ops::mxm()`], [`ops::mxm_par`], [`ops::mxm_masked`], [`ops::mxm_masked_par`] |
//! | `GrB_vxm`           | [`ops::vxm()`], [`ops::vxm_masked`], [`ops::vxm_masked_par`] |
//! | `GrB_mxv`           | [`ops::mxv()`], [`ops::mxv_par`], [`ops::mxv_masked`], [`ops::mxv_masked_par`] |
//! | `GrB_eWiseAdd`      | [`ops::ewise_add_vector`], [`ops::ewise_add_matrix`] |
//! | `GrB_eWiseMult`     | [`ops::ewise_mult_vector`], [`ops::ewise_mult_matrix`] |
//! | `GrB_extract`       | [`ops::extract_subvector`], [`ops::extract_submatrix`] |
//! | `GrB_apply`         | [`ops::apply_vector`], [`ops::apply_matrix`] |
//! | `GxB_select`        | [`ops::select_vector`], [`ops::select_matrix`] |
//! | `GrB_reduce`        | [`ops::reduce_matrix_rows`], [`ops::reduce_matrix_cols`], [`ops::reduce_matrix_scalar`], [`ops::reduce_vector_scalar`] |
//! | `GrB_assign`        | [`ops::assign_vector_masked`], [`ops::assign_scalar_vector_masked`] |
//! | `GrB_transpose`     | [`Matrix::transpose`] |
//! | `GrB_build`         | [`Matrix::from_tuples`], [`Vector::from_tuples`] |
//! | `GrB_extractTuples` | [`Matrix::extract_tuples`], [`Vector::extract_tuples`] |
//!
//! Masks (`C⟨M⟩ = ...`) are modelled by [`VectorMask`] / [`MatrixMask`], semirings by
//! [`semiring::Semiring`] with the stock constructions in [`semiring::stock`]. The
//! multiplication kernels are row-wise Gustavson with a per-row SPA/merge accumulator
//! choice, and masks are pushed down into the kernels (disallowed output positions
//! are skipped before any product is formed) — see `DESIGN.md` §2.4.
//!
//! ## Example
//!
//! Compute the Q1-style "likes per post" aggregation: a `posts × comments` pattern
//! matrix times a per-comment like-count vector over the `(+, second)` semiring.
//!
//! ```
//! use graphblas::{Matrix, Vector, ops, semiring, ops_traits::First};
//!
//! // RootPost: post 0 has comments 0 and 1; post 1 has comment 2.
//! let root_post: Matrix<bool> = Matrix::from_edges(2, 3, &[(0, 0), (0, 1), (1, 2)]).unwrap();
//! // likesCount: comment 0 has 2 likes, comment 1 has 3 likes.
//! let likes_count = Vector::from_tuples(3, &[(0, 2u64), (1, 3)], First::new()).unwrap();
//!
//! let likes_per_post = ops::mxv(&root_post, &likes_count, semiring::stock::plus_second()).unwrap();
//! assert_eq!(likes_per_post.get(0), Some(5));
//! assert_eq!(likes_per_post.get(1), None); // comment 2 has no likes
//! ```
//!
//! [GraphBLAS]: https://graphblas.org

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod index;
pub mod mask;
pub mod matrix;
pub mod monoid;
pub mod ops;
pub mod ops_traits;
pub mod scalar;
pub mod semiring;
pub mod types;
pub mod vector;

pub use error::{Error, Result};
pub use index::{GappedList, LearnedSegments, RowIndex};
pub use mask::{MaskKind, MatrixMask, VectorMask};
pub use matrix::{DeltaLayout, DynamicMatrix, DynamicMatrixStats, Matrix, MatrixBuilder};
pub use monoid::Monoid;
pub use ops_traits::{BinaryOp, IndexUnaryOp, UnaryOp};
pub use scalar::{MaskValue, Ring, Scalar};
pub use semiring::{Semiring, SemiringOps};
pub use types::{Index, IndexSelection};
pub use vector::Vector;
