//! Learned and gapped indexes over sorted integer key slices.
//!
//! The hot lookup sites of this crate — wide-row column probes in [`crate::Matrix::get`],
//! the asymmetric `mxv` dot product, and mask-row probes in the post-filter kernels —
//! all reduce to "find `key` in a sorted slice of monotone integers". The user / post /
//! comment id spaces of the case study are dense and monotone, which is the ideal key
//! distribution for a *learned* index: fit a piecewise-linear model position ≈ f(key)
//! once, then answer lookups by predicting a position and scanning a tiny bounded
//! window, instead of cache-missing through `log₂ n` pivots of a binary search.
//!
//! Two building blocks live here, modelled on the PGM index family:
//!
//! * [`LearnedSegments`] — an epsilon-bounded piecewise-linear regression over one
//!   sorted key slice, built in a single `O(n)` pass with the shrinking-cone
//!   algorithm. [`LearnedSegments::locate`] predicts and finishes with a branch-light
//!   scan of at most `2·epsilon + O(1)` slots.
//! * [`GappedList`] — an insert-friendly sorted association list that keeps *slack
//!   slots* (gaps) interspersed with the live entries, à la the gapped PGM layouts:
//!   a point insert shifts elements only up to the nearest gap instead of the whole
//!   tail, and the structure regrows with fresh gaps when occupancy passes 7/8.
//!   Wide lists carry their own [`LearnedSegments`] model, rebuilt at regrow time and
//!   consulted through a robust exponential search (correct even after the gaps have
//!   drifted positions away from the model's training snapshot).
//!
//! Index construction is deliberately explicit: [`crate::Matrix::freeze_index`] builds
//! the per-row models at CSR freeze time (initial load, [`crate::DynamicMatrix`]
//! compaction), every CSR mutation invalidates them, and rows narrower than
//! [`LEARNED_ROW_CUTOFF`] never get a model — for them the binary search is already
//! cache-resident, the same shape of per-row cutover the SPA kernels use via
//! `spa_is_profitable`.

use crate::types::Index;

/// Default corridor half-width for [`LearnedSegments::build`]: predictions are wrong
/// by at most this many positions, so lookups scan at most `2 · 16 + O(1)` slots —
/// one or two cache lines of `u64` keys, cheaper than the pointer-chasing pivots of a
/// binary search over a wide row.
pub const DEFAULT_EPSILON: usize = 16;

/// Rows narrower than this never get a learned model: a binary search over ≤ 64 keys
/// touches at most a couple of cache lines anyway, so the model would add prediction
/// work without saving memory traffic (the same per-row cutover idea as the SPA /
/// merge kernel selection).
pub const LEARNED_ROW_CUTOFF: usize = 64;

/// An epsilon-bounded piecewise-linear learned index over one sorted key slice.
///
/// `build` fits maximal segments with the shrinking-cone construction: within a
/// segment starting at `(key₀, pos₀)`, every covered point satisfies
/// `|pos₀ + slope · (key − key₀) − pos| ≤ epsilon`. `locate` finds the covering
/// segment (binary search over the few segment boundaries), predicts, and scans the
/// `± (epsilon + 2)` window (+2 absorbs `f64` rounding at segment edges; a bracket
/// check falls back to binary search if rounding ever exceeds even that).
///
/// The index stores no copy of the keys: callers pass the same slice to `locate`
/// that they passed to `build`.
#[derive(Clone, Debug, Default)]
pub struct LearnedSegments {
    /// First key of each segment (sorted).
    first_keys: Vec<Index>,
    /// Predicted positions-per-key-unit of each segment.
    slopes: Vec<f64>,
    /// Position of each segment's first key in the indexed slice.
    offsets: Vec<usize>,
    epsilon: usize,
    /// Length of the slice the model was built over.
    len: usize,
}

impl LearnedSegments {
    /// Fit epsilon-bounded linear segments over `keys` in one pass.
    ///
    /// `keys` must be sorted (non-decreasing). With *strictly* increasing keys the
    /// `± epsilon` error bound holds for every key; duplicate keys (as produced by
    /// [`GappedList`] gap slots) are tolerated but void the bound for their run, which
    /// is why [`GappedList`] consults the model through an exponential search.
    pub fn build(keys: &[Index], epsilon: usize) -> Self {
        let epsilon = epsilon.max(1);
        let mut index = LearnedSegments {
            first_keys: Vec::new(),
            slopes: Vec::new(),
            offsets: Vec::new(),
            epsilon,
            len: keys.len(),
        };
        let Some(&first) = keys.first() else {
            return index;
        };
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys not sorted");
        let eps = epsilon as f64;
        let mut start = 0usize;
        let mut origin_key = first;
        let (mut slope_lo, mut slope_hi) = (0.0f64, f64::INFINITY);
        for (i, &key) in keys.iter().enumerate().skip(1) {
            let dx = (key - origin_key) as f64;
            if dx == 0.0 {
                // duplicate of the origin key: no constraint to add
                continue;
            }
            let dy = (i - start) as f64;
            let lo = (dy - eps) / dx;
            let hi = (dy + eps) / dx;
            let new_lo = slope_lo.max(lo);
            let new_hi = slope_hi.min(hi);
            if new_lo > new_hi {
                // the corridor collapsed: close the segment and start a new one here
                index.push_segment(origin_key, start, slope_lo, slope_hi);
                start = i;
                origin_key = key;
                slope_lo = 0.0;
                slope_hi = f64::INFINITY;
            } else {
                slope_lo = new_lo;
                slope_hi = new_hi;
            }
        }
        index.push_segment(origin_key, start, slope_lo, slope_hi);
        index
    }

    fn push_segment(&mut self, first_key: Index, offset: usize, slope_lo: f64, slope_hi: f64) {
        let slope = if slope_hi.is_finite() {
            (slope_lo + slope_hi) / 2.0
        } else {
            // a single-point segment: any slope is exact at the origin
            0.0
        };
        self.first_keys.push(first_key);
        self.slopes.push(slope);
        self.offsets.push(offset);
    }

    /// The corridor half-width the model was built with.
    #[inline]
    pub fn epsilon(&self) -> usize {
        self.epsilon
    }

    /// Number of fitted linear segments.
    #[inline]
    pub fn segment_count(&self) -> usize {
        self.first_keys.len()
    }

    /// Length of the key slice the model was built over.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the model was built over an empty slice.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Predicted position of `key` in the indexed slice, clamped to `0..len`.
    ///
    /// The prediction is within `epsilon` of the true position for every key the
    /// model was built over (strictly increasing keys); for absent keys it lands
    /// within `epsilon` of the insertion point of the covering segment.
    #[inline]
    pub fn predict(&self, key: Index) -> usize {
        // index of the last segment whose first key is <= key
        let seg = self.first_keys.partition_point(|&fk| fk <= key);
        if seg == 0 {
            return 0;
        }
        let seg = seg - 1;
        let dx = (key - self.first_keys[seg]) as f64;
        let predicted = self.offsets[seg] as f64 + self.slopes[seg] * dx;
        // clamp through f64 to avoid negative-rounding UB-adjacent casts
        let max = self.len.saturating_sub(1);
        (predicted.max(0.0).round() as usize).min(max)
    }

    /// The `[lo, hi)` scan window around the prediction for `key`.
    #[inline]
    fn window(&self, key: Index, n: usize) -> (usize, usize) {
        let p = self.predict(key);
        let slack = self.epsilon + 2;
        (p.saturating_sub(slack), (p + slack + 1).min(n))
    }

    /// Find the position of `key` in `keys` — the same slice the model was built
    /// over. Returns `None` when the key is not stored.
    ///
    /// Cost: one small binary search over the segment boundaries, then a branch-light
    /// linear scan of at most `2·(epsilon + 2) + 1` slots. If `f64` rounding ever
    /// pushes the true position outside the window (the bracket check below), the
    /// lookup falls back to a plain binary search rather than miss.
    #[inline]
    pub fn locate(&self, keys: &[Index], key: Index) -> Option<usize> {
        debug_assert_eq!(keys.len(), self.len, "locate over a different slice");
        let (lo, hi) = self.window(key, keys.len());
        // branch-light scan: position arithmetic only, no early bisection
        for (i, &k) in keys.iter().enumerate().take(hi).skip(lo) {
            if k == key {
                return Some(i);
            }
        }
        // bracket check: if the window provably covers key's sorted position, the
        // key is absent; otherwise rounding moved the window and we re-search.
        let left_ok = lo == 0 || keys.get(lo).is_none_or(|&k| k <= key);
        let right_ok = hi >= keys.len() || keys.get(hi.wrapping_sub(1)).is_none_or(|&k| k >= key);
        if left_ok && right_ok {
            None
        } else {
            keys.binary_search(&key).ok()
        }
    }

    /// First position `i` in `keys` with `keys[i] >= key` (the insertion point),
    /// found by exponential search around the model's prediction.
    ///
    /// Unlike [`LearnedSegments::locate`], this stays correct even when `keys` has
    /// drifted away from the slice the model was built over (same sort order, shifted
    /// positions, duplicates) — the prediction is only a starting guess, so
    /// [`GappedList`] can keep using a stale model between regrows.
    #[inline]
    pub fn lower_bound(&self, keys: &[Index], key: Index) -> usize {
        let n = keys.len();
        if n == 0 {
            return 0;
        }
        let guess = self.predict(key).min(n - 1);
        if keys[guess] < key {
            // gallop right: bracket (lo, hi] with keys[lo] < key
            let mut lo = guess;
            let mut step = 1usize;
            let mut hi = (guess + step).min(n);
            while hi < n && keys[hi] < key {
                lo = hi;
                step *= 2;
                hi = (hi + step).min(n);
            }
            lo + keys[lo + 1..hi.max(lo + 1)].partition_point(|&k| k < key) + 1
        } else {
            // gallop left: bracket [lo, hi) with keys[hi] >= key
            let mut hi = guess;
            let mut step = 1usize;
            while hi > 0 {
                let probe = hi.saturating_sub(step);
                if keys[probe] < key {
                    break;
                }
                hi = probe;
                step *= 2;
            }
            let lo = hi.saturating_sub(step);
            lo + keys[lo..hi].partition_point(|&k| k < key)
        }
    }
}

/// Per-row learned indexes over the wide rows of a frozen CSR matrix.
///
/// Built by [`crate::Matrix::freeze_index`]; only rows with at least
/// [`LEARNED_ROW_CUTOFF`] stored elements get a model, so the memory cost scales
/// with the number of *wide* rows, not `nrows`.
#[derive(Clone, Debug, Default)]
pub struct RowIndex {
    /// `(row, model)` pairs sorted by row id.
    rows: Vec<(Index, LearnedSegments)>,
}

impl RowIndex {
    pub(crate) fn from_rows(rows: Vec<(Index, LearnedSegments)>) -> Self {
        debug_assert!(rows.windows(2).all(|w| w[0].0 < w[1].0), "rows not sorted");
        RowIndex { rows }
    }

    /// The learned model for `row`, if the row was wide enough to get one.
    #[inline]
    pub fn row(&self, row: Index) -> Option<&LearnedSegments> {
        self.rows
            .binary_search_by_key(&row, |&(r, _)| r)
            .ok()
            .map(|pos| &self.rows[pos].1)
    }

    /// Number of rows carrying a model.
    #[inline]
    pub fn indexed_rows(&self) -> usize {
        self.rows.len()
    }

    /// Total fitted segments across all indexed rows (build-cost / footprint metric).
    pub fn total_segments(&self) -> usize {
        self.rows.iter().map(|(_, s)| s.segment_count()).sum()
    }
}

/// How many live entries sit between consecutive slack slots after a
/// [`GappedList`] regrow: 4 live + 1 gap ⇒ 80% occupancy with fresh gaps.
const GAP_EVERY: usize = 4;

/// Occupancy numerator/denominator that triggers a regrow (7/8 = 87.5%): checked
/// before each insert so shifts stay short.
const REGROW_NUM: usize = 7;
const REGROW_DEN: usize = 8;

/// Lists smaller than this never regrow — a `Vec::insert` shifting a handful of
/// elements is cheaper than maintaining gap bookkeeping.
const MIN_SLOTS_FOR_GAPS: usize = 8;

/// A sorted `(key, value)` association list with interspersed slack slots, the
/// insert-friendly "gapped" layout of the gapped-PGM family.
///
/// Live entries keep strictly increasing keys; empty (slack) slots duplicate a
/// neighbouring key so the whole `keys` array stays sorted and `partition_point`
/// / model-guided search work unchanged. A point insert shifts entries only up to
/// the nearest gap to the right (or falls back to `Vec::insert` when none is left),
/// and the list regrows with fresh gaps — and a rebuilt [`LearnedSegments`] model for
/// wide lists — when occupancy passes 7/8. [`crate::DynamicMatrix`] uses one per
/// delta row so hot-row point inserts stop shifting the whole tail.
#[derive(Clone, Debug)]
pub struct GappedList<T> {
    /// Sorted; empty slots hold a copy of a neighbouring live key.
    keys: Vec<Index>,
    /// Parallel to `keys`; empty slots hold a stale copied value, never observed.
    vals: Vec<T>,
    /// Which slots are live.
    live: Vec<bool>,
    /// Number of live entries.
    len: usize,
    /// Learned position model over `keys`, rebuilt at regrow time for wide lists.
    model: Option<LearnedSegments>,
}

impl<T: Copy> Default for GappedList<T> {
    fn default() -> Self {
        GappedList::new()
    }
}

impl<T: Copy> GappedList<T> {
    /// An empty list.
    pub fn new() -> Self {
        GappedList {
            keys: Vec::new(),
            vals: Vec::new(),
            live: Vec::new(),
            len: 0,
            model: None,
        }
    }

    /// Number of live entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the list holds no live entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of physical slots (live + slack); `len() / slots()` is the occupancy
    /// the ablation bench reports.
    #[inline]
    pub fn slots(&self) -> usize {
        self.keys.len()
    }

    /// First slot `i` with `keys[i] >= key`, via the learned model when present.
    #[inline]
    fn lower_bound(&self, key: Index) -> usize {
        match &self.model {
            Some(model) => model.lower_bound(&self.keys, key),
            None => self.keys.partition_point(|&k| k < key),
        }
    }

    /// Look up the value stored under `key`.
    #[inline]
    pub fn get(&self, key: Index) -> Option<T> {
        let mut i = self.lower_bound(key);
        // all slots holding exactly `key` are contiguous; at most one is live
        while i < self.keys.len() && self.keys[i] == key {
            if self.live[i] {
                return Some(self.vals[i]);
            }
            i += 1;
        }
        None
    }

    /// Insert `key → value`, overwriting any existing entry. Returns `true` when the
    /// key was newly inserted.
    pub fn insert(&mut self, key: Index, value: T) -> bool {
        self.maybe_regrow();
        let p = self.lower_bound(key);
        // scan the (possibly empty) run of slots already holding `key`
        let mut i = p;
        let mut free_in_run = None;
        while i < self.keys.len() && self.keys[i] == key {
            if self.live[i] {
                self.vals[i] = value;
                return false;
            }
            if free_in_run.is_none() {
                free_in_run = Some(i);
            }
            i += 1;
        }
        if let Some(f) = free_in_run {
            // a slack slot already carries this key: claim it in place
            self.live[f] = true;
            self.vals[f] = value;
            self.len += 1;
            return true;
        }
        // shift right only as far as the nearest gap
        let mut gap = p;
        while gap < self.keys.len() && self.live[gap] {
            gap += 1;
        }
        if gap < self.keys.len() {
            for q in (p..gap).rev() {
                self.keys[q + 1] = self.keys[q];
                self.vals[q + 1] = self.vals[q];
                self.live[q + 1] = self.live[q];
            }
            self.keys[p] = key;
            self.vals[p] = value;
            self.live[p] = true;
        } else {
            // no gap to the right: plain insert (regrow keeps this rare)
            self.keys.insert(p, key);
            self.vals.insert(p, value);
            self.live.insert(p, true);
        }
        self.len += 1;
        true
    }

    /// Rebuild with fresh gaps (and a fresh model for wide lists) when occupancy
    /// passes [`REGROW_NUM`]/[`REGROW_DEN`].
    fn maybe_regrow(&mut self) {
        if self.keys.len() < MIN_SLOTS_FOR_GAPS
            || self.len * REGROW_DEN < self.keys.len() * REGROW_NUM
        {
            return;
        }
        let slots = self.len + self.len / GAP_EVERY + 1;
        let mut keys = Vec::with_capacity(slots);
        let mut vals = Vec::with_capacity(slots);
        let mut live = Vec::with_capacity(slots);
        let mut since_gap = 0usize;
        for i in 0..self.keys.len() {
            if !self.live[i] {
                continue;
            }
            keys.push(self.keys[i]);
            vals.push(self.vals[i]);
            live.push(true);
            since_gap += 1;
            if since_gap == GAP_EVERY {
                // slack slot: duplicate the left neighbour so `keys` stays sorted
                keys.push(self.keys[i]);
                vals.push(self.vals[i]);
                live.push(false);
                since_gap = 0;
            }
        }
        self.keys = keys;
        self.vals = vals;
        self.live = live;
        self.model = (self.len >= LEARNED_ROW_CUTOFF)
            .then(|| LearnedSegments::build(&self.keys, DEFAULT_EPSILON));
    }

    /// Iterate the live `(key, value)` entries in key order.
    pub fn iter(&self) -> GappedIter<'_, T> {
        GappedIter { list: self, pos: 0 }
    }

    /// Drop every entry (slots and model included).
    pub fn clear(&mut self) {
        self.keys.clear();
        self.vals.clear();
        self.live.clear();
        self.len = 0;
        self.model = None;
    }
}

/// Iterator over the live entries of a [`GappedList`] in key order.
pub struct GappedIter<'a, T> {
    list: &'a GappedList<T>,
    pos: usize,
}

impl<T: Copy> Iterator for GappedIter<'_, T> {
    type Item = (Index, T);

    fn next(&mut self) -> Option<Self::Item> {
        while self.pos < self.list.keys.len() {
            let i = self.pos;
            self.pos += 1;
            if self.list.live[i] {
                return Some((self.list.keys[i], self.list.vals[i]));
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let upper = self.list.keys.len() - self.pos.min(self.list.keys.len());
        (0, Some(upper))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_all(keys: &[Index], epsilon: usize) {
        let index = LearnedSegments::build(keys, epsilon);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(index.locate(keys, k), Some(i), "key {k} at {i}");
            let p = index.predict(k);
            assert!(
                p.abs_diff(i) <= epsilon.max(1) + 2,
                "prediction {p} for key {k} misses {i} by more than {epsilon} + rounding"
            );
        }
        // absent keys between / outside the stored ones
        assert_eq!(index.locate(keys, keys[keys.len() - 1] + 1), None);
        for w in keys.windows(2) {
            if w[1] - w[0] > 1 {
                assert_eq!(index.locate(keys, w[0] + 1), None);
            }
        }
    }

    #[test]
    fn dense_keys_fit_one_segment() {
        let keys: Vec<Index> = (100..600).collect();
        let index = LearnedSegments::build(&keys, 16);
        assert_eq!(index.segment_count(), 1);
        check_all(&keys, 16);
    }

    #[test]
    fn clustered_and_exponential_keys() {
        let mut clustered: Vec<Index> = (0..200).collect();
        clustered.extend(10_000..10_300);
        clustered.extend(90_000..90_050);
        check_all(&clustered, 8);

        let exponential: Vec<Index> = (0..40).map(|i| 1usize << i).collect();
        check_all(&exponential, 4);
    }

    #[test]
    fn single_key_and_empty() {
        check_all(&[42], 16);
        let empty = LearnedSegments::build(&[], 16);
        assert!(empty.is_empty());
        assert_eq!(empty.locate(&[], 7), None);
        assert_eq!(empty.lower_bound(&[], 7), 0);
    }

    #[test]
    fn lower_bound_matches_partition_point() {
        let keys: Vec<Index> = (0..500).map(|i| i * 3).collect();
        let index = LearnedSegments::build(&keys, 8);
        for probe in 0..1_600 {
            assert_eq!(
                index.lower_bound(&keys, probe),
                keys.partition_point(|&k| k < probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn lower_bound_survives_model_drift() {
        // model built over one slice, queried over a longer shifted one — the
        // exponential search must still return exact lower bounds
        let built: Vec<Index> = (0..200).map(|i| i * 2).collect();
        let index = LearnedSegments::build(&built, 8);
        let drifted: Vec<Index> = (0..300).map(|i| i * 2 + 40).collect();
        for probe in 0..700 {
            assert_eq!(
                index.lower_bound(&drifted, probe),
                drifted.partition_point(|&k| k < probe),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn gapped_list_insert_get_iter() {
        let mut list: GappedList<u64> = GappedList::new();
        assert!(list.is_empty());
        for k in (0..100).rev() {
            assert!(list.insert(k * 2, k as u64));
        }
        assert_eq!(list.len(), 100);
        for k in 0..100 {
            assert_eq!(list.get(k * 2), Some(k as u64));
            assert_eq!(list.get(k * 2 + 1), None);
        }
        // overwrite does not grow
        assert!(!list.insert(10, 999));
        assert_eq!(list.len(), 100);
        assert_eq!(list.get(10), Some(999));
        let collected: Vec<Index> = list.iter().map(|(k, _)| k).collect();
        let expected: Vec<Index> = (0..100).map(|k| k * 2).collect();
        assert_eq!(collected, expected);
        assert!(list.slots() >= list.len());
        list.clear();
        assert!(list.is_empty());
        assert_eq!(list.get(10), None);
    }

    #[test]
    fn gapped_list_matches_btreemap_on_mixed_workload() {
        use std::collections::BTreeMap;
        let mut list: GappedList<u64> = GappedList::new();
        let mut reference: BTreeMap<Index, u64> = BTreeMap::new();
        let mut state = 0x9E3779B97F4A7C15u64;
        for step in 0..5_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = ((state >> 33) % 700) as Index;
            let inserted = list.insert(key, step);
            assert_eq!(inserted, reference.insert(key, step).is_none());
        }
        assert_eq!(list.len(), reference.len());
        let entries: Vec<(Index, u64)> = list.iter().collect();
        let expected: Vec<(Index, u64)> = reference.into_iter().collect();
        assert_eq!(entries, expected);
        for probe in 0..700 {
            assert_eq!(
                list.get(probe),
                entries.iter().find(|&&(k, _)| k == probe).map(|&(_, v)| v)
            );
        }
    }
}
