//! Masks (`C⟨M⟩ = ...`): restrict where an operation may write its result.
//!
//! GraphBLAS distinguishes *structural* masks (a position is allowed if the mask
//! stores any element there) from *value* masks (the stored element must additionally
//! be truthy), and both can be *complemented*. The paper's Q1 incremental algorithm
//! uses a value mask in `∆scores⟨scores⁺⟩ ← scores′` to output only the changed scores.

use crate::matrix::Matrix;
use crate::scalar::MaskValue;
use crate::types::Index;
use crate::vector::Vector;

/// How the stored elements of the mask are interpreted.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MaskKind {
    /// A position is allowed if the mask stores an element there.
    Structural,
    /// A position is allowed if the mask stores a truthy element there.
    Value,
}

/// A mask over vector positions.
#[derive(Copy, Clone, Debug)]
pub struct VectorMask<'a, M: MaskValue> {
    mask: &'a Vector<M>,
    kind: MaskKind,
    complemented: bool,
}

impl<'a, M: MaskValue> VectorMask<'a, M> {
    /// Structural mask: positions where `mask` stores any element.
    pub fn structural(mask: &'a Vector<M>) -> Self {
        VectorMask {
            mask,
            kind: MaskKind::Structural,
            complemented: false,
        }
    }

    /// Value mask: positions where `mask` stores a truthy element.
    pub fn value(mask: &'a Vector<M>) -> Self {
        VectorMask {
            mask,
            kind: MaskKind::Value,
            complemented: false,
        }
    }

    /// Complement the mask (`GrB_DESC_C`).
    pub fn complement(mut self) -> Self {
        self.complemented = !self.complemented;
        self
    }

    /// Whether the mask is complemented.
    #[inline]
    pub fn is_complemented(&self) -> bool {
        self.complemented
    }

    /// The dimension of the underlying mask vector.
    pub fn size(&self) -> Index {
        self.mask.size()
    }

    /// The *present* positions of the mask, ignoring complementation: stored positions
    /// for a structural mask, stored-truthy positions for a value mask. A position is
    /// allowed iff `present ≠ complemented`; kernels use this to build dense
    /// constant-time filters (mask push-down) for both plain and complemented masks.
    pub fn present_positions(&self) -> impl Iterator<Item = Index> + '_ {
        let value_kind = self.kind == MaskKind::Value;
        self.mask
            .iter()
            .filter(move |&(_, v)| !value_kind || v.is_truthy())
            .map(|(i, _)| i)
    }

    /// Whether writing to position `i` is allowed.
    #[inline]
    pub fn allows(&self, i: Index) -> bool {
        let present = match self.kind {
            MaskKind::Structural => self.mask.contains(i),
            MaskKind::Value => self.mask.get(i).map(MaskValue::is_truthy).unwrap_or(false),
        };
        present != self.complemented
    }

    /// Iterate the positions explicitly allowed by a *non-complemented* mask.
    ///
    /// For complemented masks the allowed set is the complement of the stored
    /// positions and cannot be enumerated cheaply; callers should fall back to
    /// [`VectorMask::allows`] per position (the kernels do this automatically).
    pub fn allowed_positions(&self) -> Option<Vec<Index>> {
        if self.complemented {
            return None;
        }
        let positions = match self.kind {
            MaskKind::Structural => self.mask.indices().to_vec(),
            MaskKind::Value => self
                .mask
                .iter()
                .filter(|&(_, v)| v.is_truthy())
                .map(|(i, _)| i)
                .collect(),
        };
        Some(positions)
    }
}

/// A mask over matrix positions.
#[derive(Copy, Clone, Debug)]
pub struct MatrixMask<'a, M: MaskValue> {
    mask: &'a Matrix<M>,
    kind: MaskKind,
    complemented: bool,
}

impl<'a, M: MaskValue> MatrixMask<'a, M> {
    /// Structural mask: positions where `mask` stores any element.
    pub fn structural(mask: &'a Matrix<M>) -> Self {
        MatrixMask {
            mask,
            kind: MaskKind::Structural,
            complemented: false,
        }
    }

    /// Value mask: positions where `mask` stores a truthy element.
    pub fn value(mask: &'a Matrix<M>) -> Self {
        MatrixMask {
            mask,
            kind: MaskKind::Value,
            complemented: false,
        }
    }

    /// Complement the mask (`GrB_DESC_C`).
    pub fn complement(mut self) -> Self {
        self.complemented = !self.complemented;
        self
    }

    /// Whether the mask is complemented.
    #[inline]
    pub fn is_complemented(&self) -> bool {
        self.complemented
    }

    /// Number of rows of the underlying mask matrix.
    pub fn nrows(&self) -> Index {
        self.mask.nrows()
    }

    /// Number of columns of the underlying mask matrix.
    pub fn ncols(&self) -> Index {
        self.mask.ncols()
    }

    /// The *present* positions of mask row `i`, ignoring complementation: the stored
    /// columns for a structural mask, the stored-truthy columns for a value mask.
    /// Kernels turn this into a dense constant-time row filter (mask push-down).
    pub fn row_present_positions(&self, i: Index) -> impl Iterator<Item = Index> + '_ {
        let (cols, vals) = self.mask.row(i);
        let value_kind = self.kind == MaskKind::Value;
        cols.iter()
            .zip(vals.iter())
            .filter(move |&(_, &v)| !value_kind || v.is_truthy())
            .map(|(&c, _)| c)
    }

    /// Whether writing to position `(i, j)` is allowed.
    #[inline]
    pub fn allows(&self, i: Index, j: Index) -> bool {
        let present = match self.kind {
            MaskKind::Structural => self.mask.get(i, j).is_some(),
            MaskKind::Value => self
                .mask
                .get(i, j)
                .map(MaskValue::is_truthy)
                .unwrap_or(false),
        };
        present != self.complemented
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    fn mask_vec() -> Vector<u8> {
        Vector::from_tuples(6, &[(1, 1u8), (3, 0), (5, 2)], Plus::new()).unwrap()
    }

    #[test]
    fn structural_vector_mask() {
        let v = mask_vec();
        let m = VectorMask::structural(&v);
        assert!(m.allows(1));
        assert!(m.allows(3)); // stored, even though value is 0
        assert!(m.allows(5));
        assert!(!m.allows(0));
        assert_eq!(m.size(), 6);
        assert_eq!(m.allowed_positions(), Some(vec![1, 3, 5]));
    }

    #[test]
    fn value_vector_mask() {
        let v = mask_vec();
        let m = VectorMask::value(&v);
        assert!(m.allows(1));
        assert!(!m.allows(3)); // stored but falsy
        assert!(m.allows(5));
        assert!(!m.allows(0));
        assert_eq!(m.allowed_positions(), Some(vec![1, 5]));
    }

    #[test]
    fn complemented_vector_mask() {
        let v = mask_vec();
        let m = VectorMask::value(&v).complement();
        assert!(!m.allows(1));
        assert!(m.allows(3));
        assert!(m.allows(0));
        assert_eq!(m.allowed_positions(), None);
        // double complement cancels
        let m2 = m.complement();
        assert!(m2.allows(1));
    }

    #[test]
    fn matrix_masks() {
        let mat = Matrix::from_tuples(3, 3, &[(0, 1, 1u8), (2, 2, 0)], Plus::new()).unwrap();
        let structural = MatrixMask::structural(&mat);
        assert!(structural.allows(0, 1));
        assert!(structural.allows(2, 2));
        assert!(!structural.allows(1, 1));
        assert_eq!(structural.nrows(), 3);
        assert_eq!(structural.ncols(), 3);

        let value = MatrixMask::value(&mat);
        assert!(value.allows(0, 1));
        assert!(!value.allows(2, 2));

        let comp = MatrixMask::value(&mat).complement();
        assert!(!comp.allows(0, 1));
        assert!(comp.allows(1, 1));
        assert!(comp.allows(2, 2));
    }

    #[test]
    fn present_positions_ignore_complementation() {
        let v = mask_vec();
        let structural = VectorMask::structural(&v);
        assert_eq!(
            structural.present_positions().collect::<Vec<_>>(),
            vec![1, 3, 5]
        );
        assert!(!structural.is_complemented());
        let value_comp = VectorMask::value(&v).complement();
        assert_eq!(
            value_comp.present_positions().collect::<Vec<_>>(),
            vec![1, 5]
        );
        assert!(value_comp.is_complemented());
    }

    #[test]
    fn row_present_positions_respect_mask_kind() {
        let mat =
            Matrix::from_tuples(3, 3, &[(0, 1, 1u8), (0, 2, 0), (2, 2, 0)], Plus::new()).unwrap();
        let structural = MatrixMask::structural(&mat);
        assert_eq!(
            structural.row_present_positions(0).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert_eq!(structural.row_present_positions(1).count(), 0);
        let value = MatrixMask::value(&mat).complement();
        assert_eq!(value.row_present_positions(0).collect::<Vec<_>>(), vec![1]);
        assert!(value.is_complemented());
    }
}
