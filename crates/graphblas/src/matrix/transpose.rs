//! Matrix transposition (`GrB_transpose`).

use crate::scalar::Scalar;
use crate::types::Index;

use super::Matrix;

impl<T: Scalar> Matrix<T> {
    /// Return the transpose `Aᵀ` as a new matrix.
    ///
    /// Implemented as a counting sort over the column indices: `O(nvals + ncols)`,
    /// producing sorted rows in the output without an explicit sort.
    pub fn transpose(&self) -> Matrix<T> {
        let nvals = self.nvals();
        let new_nrows = self.ncols();
        let new_ncols = self.nrows();

        if nvals == 0 {
            return Matrix::new(new_nrows, new_ncols);
        }

        // Count entries per output row (i.e. per input column).
        let mut counts = vec![0usize; new_nrows + 1];
        for &c in self.col_indices() {
            counts[c + 1] += 1;
        }
        for i in 0..new_nrows {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts;

        let mut col_idx = vec![0 as Index; nvals];
        // Placeholder-filled value buffer, overwritten below through the cursor array.
        let placeholder = self.values()[0];
        let mut values: Vec<T> = vec![placeholder; nvals];

        let mut cursor = row_ptr.clone();
        for r in 0..self.nrows() {
            let (cols, vals) = self.row(r);
            for (pos, &c) in cols.iter().enumerate() {
                let dst = cursor[c];
                col_idx[dst] = r;
                values[dst] = vals[pos];
                cursor[c] += 1;
            }
        }

        Matrix::from_csr_parts(new_nrows, new_ncols, row_ptr, col_idx, values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn transpose_swaps_dimensions_and_coordinates() {
        let m =
            Matrix::from_tuples(2, 3, &[(0, 0, 1u64), (0, 2, 3), (1, 1, 5)], Plus::new()).unwrap();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.ncols(), 2);
        assert_eq!(t.nvals(), 3);
        assert_eq!(t.get(0, 0), Some(1));
        assert_eq!(t.get(2, 0), Some(3));
        assert_eq!(t.get(1, 1), Some(5));
    }

    #[test]
    fn transpose_of_empty_matrix() {
        let m: Matrix<u64> = Matrix::new(4, 2);
        let t = m.transpose();
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.ncols(), 4);
        assert_eq!(t.nvals(), 0);
    }

    #[test]
    fn double_transpose_is_identity() {
        let m = Matrix::from_tuples(
            3,
            3,
            &[(0, 1, 2u64), (1, 0, 4), (2, 2, 9), (0, 2, 8)],
            Plus::new(),
        )
        .unwrap();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_preserves_row_sorting() {
        let m = Matrix::from_tuples(
            3,
            3,
            &[(0, 2, 1u64), (1, 2, 2), (2, 2, 3), (2, 0, 4)],
            Plus::new(),
        )
        .unwrap();
        let t = m.transpose();
        let (cols, vals) = t.row(2);
        assert_eq!(cols, &[0, 1, 2]);
        assert_eq!(vals, &[1, 2, 3]);
    }
}
