//! Sparse matrices (`GrB_Matrix`) in Compressed Sparse Row (CSR) format.
//!
//! CSR is the default row-oriented format of SuiteSparse:GraphBLAS and suits every
//! kernel used in the paper: row-wise reductions, Gustavson-style SpGEMM, and SpMV.
//! Column indices inside each row are kept sorted and duplicate-free.

mod builder;
mod dense;
mod dynamic;
mod transpose;

pub use builder::MatrixBuilder;
pub use dynamic::{DeltaLayout, DynamicMatrix, DynamicMatrixStats};

use crate::error::{Error, Result};
use crate::index::{LearnedSegments, RowIndex, DEFAULT_EPSILON, LEARNED_ROW_CUTOFF};
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

/// A sparse `nrows × ncols` matrix with elements of type `T`, stored in CSR form.
#[derive(Clone, Debug)]
pub struct Matrix<T> {
    nrows: Index,
    ncols: Index,
    /// `row_ptr[i]..row_ptr[i+1]` is the range of `col_idx` / `values` holding row `i`.
    row_ptr: Vec<usize>,
    col_idx: Vec<Index>,
    values: Vec<T>,
    /// Learned per-row column indexes over the wide rows, built by
    /// [`Matrix::freeze_index`] and dropped by every structural mutation. Purely an
    /// acceleration cache: never part of the matrix's logical value (see the manual
    /// [`PartialEq`] below).
    row_index: Option<RowIndex>,
}

/// Equality is over the logical CSR content only — a frozen learned index is an
/// acceleration cache and must not distinguish otherwise-identical matrices (the
/// differential tests compare indexed against unindexed results).
impl<T: PartialEq> PartialEq for Matrix<T> {
    fn eq(&self, other: &Self) -> bool {
        self.nrows == other.nrows
            && self.ncols == other.ncols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
            && self.values == other.values
    }
}

impl<T: Scalar> Matrix<T> {
    /// Create an empty matrix with the given dimensions.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        Matrix {
            nrows,
            ncols,
            row_ptr: vec![0; nrows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
            row_index: None,
        }
    }

    /// Build a matrix from `(row, col, value)` tuples (`GrB_Matrix_build`).
    ///
    /// Duplicate coordinates are combined with `dup` in input order.
    pub fn from_tuples<Op>(
        nrows: Index,
        ncols: Index,
        tuples: &[(Index, Index, T)],
        dup: Op,
    ) -> Result<Self>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        builder::from_tuples(nrows, ncols, tuples, dup)
    }

    /// Construct from raw CSR parts. Internal fast path for kernels; the invariants
    /// (monotone `row_ptr`, sorted duplicate-free columns per row, in-bounds indices)
    /// are checked with debug assertions only.
    pub(crate) fn from_csr_parts(
        nrows: Index,
        ncols: Index,
        row_ptr: Vec<usize>,
        col_idx: Vec<Index>,
        values: Vec<T>,
    ) -> Self {
        debug_assert_eq!(row_ptr.len(), nrows + 1);
        debug_assert_eq!(*row_ptr.last().unwrap_or(&0), col_idx.len());
        debug_assert_eq!(col_idx.len(), values.len());
        #[cfg(debug_assertions)]
        {
            for r in 0..nrows {
                let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
                debug_assert!(row.windows(2).all(|w| w[0] < w[1]), "row {r} not sorted");
                debug_assert!(row.iter().all(|&c| c < ncols), "row {r} col out of bounds");
            }
        }
        Matrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
            row_index: None,
        }
    }

    /// Number of rows (`GrB_Matrix_nrows`).
    #[inline]
    pub fn nrows(&self) -> Index {
        self.nrows
    }

    /// Number of columns (`GrB_Matrix_ncols`).
    #[inline]
    pub fn ncols(&self) -> Index {
        self.ncols
    }

    /// Number of stored elements (`GrB_Matrix_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.col_idx.len()
    }

    /// Whether the matrix stores no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.col_idx.is_empty()
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Raw CSR row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Raw CSR column index array.
    #[inline]
    pub fn col_indices(&self) -> &[Index] {
        &self.col_idx
    }

    /// Raw CSR value array, parallel to [`Matrix::col_indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Column indices and values of row `i`.
    #[inline]
    pub fn row(&self, i: Index) -> (&[Index], &[T]) {
        let start = self.row_ptr[i];
        let end = self.row_ptr[i + 1];
        (&self.col_idx[start..end], &self.values[start..end])
    }

    /// Number of stored elements in row `i`.
    #[inline]
    pub fn row_nvals(&self, i: Index) -> usize {
        self.row_ptr[i + 1] - self.row_ptr[i]
    }

    /// Look up the element at `(row, col)` (`GrB_Matrix_extractElement`).
    ///
    /// Wide rows of a frozen matrix (see [`Matrix::freeze_index`]) are probed through
    /// their learned segment model — predict + bounded scan — instead of a binary
    /// search; narrow rows always take the binary search.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows {
            return None;
        }
        let (cols, vals) = self.row(row);
        if let Some(segments) = self.row_segments(row) {
            return segments.locate(cols, col).map(|pos| vals[pos]);
        }
        cols.binary_search(&col).ok().map(|pos| vals[pos])
    }

    /// The learned column model of `row`, when the matrix is frozen and the row is
    /// wide enough to carry one.
    #[inline]
    pub fn row_segments(&self, row: Index) -> Option<&LearnedSegments> {
        self.row_index.as_ref()?.row(row)
    }

    /// Build learned column indexes over the wide rows (those with at least
    /// [`LEARNED_ROW_CUTOFF`] stored elements) with the default epsilon.
    ///
    /// Freezing is an explicit, amortised step: call it when the matrix will be read
    /// heavily without structural changes — after the initial bulk load, or inside
    /// [`DynamicMatrix::compact`], which does it automatically. Any subsequent
    /// mutation ([`Matrix::set`], [`Matrix::insert_tuples`], …) drops the index; the
    /// matrix then behaves exactly as before freezing.
    pub fn freeze_index(&mut self) {
        self.freeze_index_with_epsilon(DEFAULT_EPSILON);
    }

    /// [`Matrix::freeze_index`] with an explicit corridor half-width `epsilon`.
    pub fn freeze_index_with_epsilon(&mut self, epsilon: usize) {
        let mut rows = Vec::new();
        for r in 0..self.nrows {
            let (cols, _) = self.row(r);
            if cols.len() >= LEARNED_ROW_CUTOFF {
                rows.push((r, LearnedSegments::build(cols, epsilon)));
            }
        }
        self.row_index = if rows.is_empty() {
            None
        } else {
            Some(RowIndex::from_rows(rows))
        };
    }

    /// Whether a frozen learned index is currently attached (it may cover zero rows
    /// if none is wide enough; this reports the attachment, not the coverage).
    #[inline]
    pub fn has_frozen_index(&self) -> bool {
        self.row_index.is_some()
    }

    /// Per-row learned-index statistics of a frozen matrix: `(indexed rows, total
    /// fitted segments)`. `(0, 0)` when no index is attached.
    pub fn frozen_index_stats(&self) -> (usize, usize) {
        match &self.row_index {
            Some(index) => (index.indexed_rows(), index.total_segments()),
            None => (0, 0),
        }
    }

    /// Whether an element is stored at `(row, col)`.
    pub fn contains(&self, row: Index, col: Index) -> bool {
        self.get(row, col).is_some()
    }

    /// Store `value` at `(row, col)`, replacing any existing element
    /// (`GrB_Matrix_setElement`).
    ///
    /// Single-element insertion shifts the CSR tail and is `O(nvals)`; use
    /// [`Matrix::insert_tuples`] for bulk updates.
    pub fn set(&mut self, row: Index, col: Index, value: T) -> Result<()> {
        self.check_bounds(row, col, "Matrix::set")?;
        self.row_index = None;
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => {
                self.values[start + pos] = value;
            }
            Err(pos) => {
                self.col_idx.insert(start + pos, col);
                self.values.insert(start + pos, value);
                for p in &mut self.row_ptr[row + 1..] {
                    *p += 1;
                }
            }
        }
        Ok(())
    }

    /// Accumulate `value` into `(row, col)` with `op`, inserting if absent.
    pub fn accumulate<Op>(&mut self, row: Index, col: Index, value: T, op: Op) -> Result<()>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        self.check_bounds(row, col, "Matrix::accumulate")?;
        self.row_index = None;
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => {
                let slot = &mut self.values[start + pos];
                *slot = op.apply(*slot, value);
            }
            Err(pos) => {
                self.col_idx.insert(start + pos, col);
                self.values.insert(start + pos, value);
                for p in &mut self.row_ptr[row + 1..] {
                    *p += 1;
                }
            }
        }
        Ok(())
    }

    /// Remove the element at `(row, col)` (`GrB_Matrix_removeElement`). Returns the
    /// removed value, if any.
    pub fn remove(&mut self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows || col >= self.ncols {
            return None;
        }
        let start = self.row_ptr[row];
        let end = self.row_ptr[row + 1];
        match self.col_idx[start..end].binary_search(&col) {
            Ok(pos) => {
                self.row_index = None;
                self.col_idx.remove(start + pos);
                let value = self.values.remove(start + pos);
                for p in &mut self.row_ptr[row + 1..] {
                    *p -= 1;
                }
                Some(value)
            }
            Err(_) => None,
        }
    }

    /// Remove every stored element (`GrB_Matrix_clear`). Dimensions are unchanged.
    pub fn clear(&mut self) {
        self.row_index = None;
        self.row_ptr.iter_mut().for_each(|p| *p = 0);
        self.col_idx.clear();
        self.values.clear();
    }

    /// Bulk-insert `(row, col, value)` tuples, combining with existing elements (and
    /// duplicate new coordinates) via `dup`.
    ///
    /// This is the workhorse for applying changesets: it rebuilds the CSR arrays in a
    /// single merge pass, `O(nvals + k log k)` for `k` new tuples.
    pub fn insert_tuples<Op>(&mut self, tuples: &[(Index, Index, T)], dup: Op) -> Result<()>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        if tuples.is_empty() {
            return Ok(());
        }
        for &(r, c, _) in tuples {
            self.check_bounds(r, c, "Matrix::insert_tuples")?;
        }
        self.row_index = None;
        let mut sorted: Vec<(Index, Index, T)> = tuples.to_vec();
        sorted.sort_by_key(|&(r, c, _)| (r, c));

        let new_capacity = self.nvals() + sorted.len();
        let mut row_ptr = Vec::with_capacity(self.nrows + 1);
        let mut col_idx = Vec::with_capacity(new_capacity);
        let mut values = Vec::with_capacity(new_capacity);
        row_ptr.push(0);

        let mut t = 0; // cursor into `sorted`
        for r in 0..self.nrows {
            let (old_cols, old_vals) = self.row(r);
            let mut o = 0;
            while o < old_cols.len() || (t < sorted.len() && sorted[t].0 == r) {
                let take_new = if o >= old_cols.len() {
                    true
                } else if t >= sorted.len() || sorted[t].0 != r {
                    false
                } else {
                    sorted[t].1 <= old_cols[o]
                };
                if take_new {
                    let (_, c, v) = sorted[t];
                    t += 1;
                    let mut acc = v;
                    // fold in any further duplicates of (r, c) from the new tuples
                    while t < sorted.len() && sorted[t].0 == r && sorted[t].1 == c {
                        acc = dup.apply(acc, sorted[t].2);
                        t += 1;
                    }
                    if o < old_cols.len() && old_cols[o] == c {
                        // combine existing value with the new ones: existing ⊕ new
                        acc = dup.apply(old_vals[o], acc);
                        o += 1;
                    }
                    col_idx.push(c);
                    values.push(acc);
                } else {
                    col_idx.push(old_cols[o]);
                    values.push(old_vals[o]);
                    o += 1;
                }
            }
            row_ptr.push(col_idx.len());
        }

        self.row_ptr = row_ptr;
        self.col_idx = col_idx;
        self.values = values;
        Ok(())
    }

    /// Change the dimensions of the matrix (`GrB_Matrix_resize`).
    ///
    /// Growing keeps all elements. Shrinking drops elements that fall outside the new
    /// dimensions, matching the C API semantics.
    pub fn resize(&mut self, new_nrows: Index, new_ncols: Index) {
        self.row_index = None;
        // Rows: truncate or extend the row pointer array.
        if new_nrows < self.nrows {
            let keep = self.row_ptr[new_nrows];
            self.col_idx.truncate(keep);
            self.values.truncate(keep);
            self.row_ptr.truncate(new_nrows + 1);
        } else if new_nrows > self.nrows {
            let last = *self.row_ptr.last().expect("row_ptr never empty"); // lint: allow(panic) — CSR row_ptr always holds nrows+1 entries
            self.row_ptr.resize(new_nrows + 1, last);
        }
        self.nrows = new_nrows;

        // Columns: shrinking requires dropping out-of-range entries.
        if new_ncols < self.ncols {
            let mut row_ptr = Vec::with_capacity(self.nrows + 1);
            let mut col_idx = Vec::with_capacity(self.col_idx.len());
            let mut values = Vec::with_capacity(self.values.len());
            row_ptr.push(0);
            for r in 0..self.nrows {
                let (cols, vals) = self.row(r);
                for (pos, &c) in cols.iter().enumerate() {
                    if c < new_ncols {
                        col_idx.push(c);
                        values.push(vals[pos]);
                    }
                }
                row_ptr.push(col_idx.len());
            }
            self.row_ptr = row_ptr;
            self.col_idx = col_idx;
            self.values = values;
        }
        self.ncols = new_ncols;
    }

    /// Iterate over all stored `(row, col, value)` tuples in row-major order.
    pub fn iter(&self) -> MatrixIter<'_, T> {
        MatrixIter {
            matrix: self,
            row: 0,
            pos: 0,
        }
    }

    /// Iterate over `(row, column-indices, values)` triples for the non-empty rows.
    pub fn iter_rows(&self) -> impl Iterator<Item = (Index, &[Index], &[T])> + '_ {
        (0..self.nrows).filter_map(move |r| {
            let (cols, vals) = self.row(r);
            if cols.is_empty() {
                None
            } else {
                Some((r, cols, vals))
            }
        })
    }

    /// Extract all stored `(row, col, value)` tuples (`GrB_Matrix_extractTuples`).
    pub fn extract_tuples(&self) -> Vec<(Index, Index, T)> {
        self.iter().collect()
    }

    fn check_bounds(&self, row: Index, col: Index, context: &'static str) -> Result<()> {
        if row >= self.nrows {
            return Err(Error::IndexOutOfBounds {
                index: row,
                bound: self.nrows,
                context,
            });
        }
        if col >= self.ncols {
            return Err(Error::IndexOutOfBounds {
                index: col,
                bound: self.ncols,
                context,
            });
        }
        Ok(())
    }
}

impl<T: crate::scalar::Ring> Matrix<T> {
    /// Build a pattern matrix (every stored value is `ONE`) from an edge list.
    pub fn from_edges(nrows: Index, ncols: Index, edges: &[(Index, Index)]) -> Result<Self> {
        let tuples: Vec<(Index, Index, T)> = edges.iter().map(|&(r, c)| (r, c, T::ONE)).collect();
        Self::from_tuples(nrows, ncols, &tuples, crate::ops_traits::First::new())
    }

    /// Build a square diagonal matrix whose diagonal entries come from `v`.
    pub fn diagonal(v: &crate::vector::Vector<T>) -> Self {
        let n = v.size();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(v.nvals());
        let mut values = Vec::with_capacity(v.nvals());
        row_ptr.push(0);
        let mut iter = v.iter().peekable();
        for r in 0..n {
            if let Some(&(i, val)) = iter.peek() {
                if i == r {
                    col_idx.push(r);
                    values.push(val);
                    iter.next();
                }
            }
            row_ptr.push(col_idx.len());
        }
        Matrix::from_csr_parts(n, n, row_ptr, col_idx, values)
    }
}

/// Iterator over the stored tuples of a [`Matrix`] in row-major order.
pub struct MatrixIter<'a, T> {
    matrix: &'a Matrix<T>,
    row: Index,
    pos: usize,
}

impl<'a, T: Scalar> Iterator for MatrixIter<'a, T> {
    type Item = (Index, Index, T);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.matrix.nrows {
            let end = self.matrix.row_ptr[self.row + 1];
            if self.pos < end {
                let item = (
                    self.row,
                    self.matrix.col_idx[self.pos],
                    self.matrix.values[self.pos],
                );
                self.pos += 1;
                return Some(item);
            }
            self.row += 1;
            if self.row < self.matrix.nrows {
                self.pos = self.matrix.row_ptr[self.row];
            }
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let remaining = self.matrix.nvals().saturating_sub(self.pos);
        (remaining, Some(remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{First, Plus};
    use crate::vector::Vector;

    fn sample() -> Matrix<u64> {
        Matrix::from_tuples(
            3,
            4,
            &[(0, 1, 10), (0, 3, 30), (1, 0, 5), (2, 2, 7)],
            Plus::new(),
        )
        .unwrap()
    }

    #[test]
    fn new_matrix_is_empty() {
        let m: Matrix<u64> = Matrix::new(3, 4);
        assert_eq!(m.nrows(), 3);
        assert_eq!(m.ncols(), 4);
        assert_eq!(m.nvals(), 0);
        assert!(m.is_empty());
        assert!(!m.is_square());
        assert_eq!(m.get(0, 0), None);
    }

    #[test]
    fn get_and_contains() {
        let m = sample();
        assert_eq!(m.get(0, 1), Some(10));
        assert_eq!(m.get(0, 3), Some(30));
        assert_eq!(m.get(1, 0), Some(5));
        assert_eq!(m.get(2, 2), Some(7));
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.get(9, 0), None);
        assert!(m.contains(2, 2));
        assert!(!m.contains(2, 3));
    }

    #[test]
    fn row_access() {
        let m = sample();
        let (cols, vals) = m.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[10, 30]);
        assert_eq!(m.row_nvals(0), 2);
        assert_eq!(m.row_nvals(1), 1);
    }

    #[test]
    fn set_insert_and_overwrite() {
        let mut m = sample();
        m.set(0, 2, 99).unwrap();
        assert_eq!(m.get(0, 2), Some(99));
        assert_eq!(m.nvals(), 5);
        m.set(0, 2, 100).unwrap();
        assert_eq!(m.get(0, 2), Some(100));
        assert_eq!(m.nvals(), 5);
        // other entries untouched and rows still consistent
        assert_eq!(m.get(1, 0), Some(5));
        assert_eq!(m.get(2, 2), Some(7));
        assert!(m.set(3, 0, 1).is_err());
        assert!(m.set(0, 4, 1).is_err());
    }

    #[test]
    fn accumulate_combines() {
        let mut m = sample();
        m.accumulate(0, 1, 5, Plus::new()).unwrap();
        assert_eq!(m.get(0, 1), Some(15));
        m.accumulate(2, 0, 3, Plus::new()).unwrap();
        assert_eq!(m.get(2, 0), Some(3));
    }

    #[test]
    fn remove_and_clear() {
        let mut m = sample();
        assert_eq!(m.remove(0, 1), Some(10));
        assert_eq!(m.remove(0, 1), None);
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.get(1, 0), Some(5));
        m.clear();
        assert_eq!(m.nvals(), 0);
        assert_eq!(m.nrows(), 3);
    }

    #[test]
    fn from_tuples_combines_duplicates() {
        let m =
            Matrix::from_tuples(2, 2, &[(0, 0, 1u64), (0, 0, 2), (1, 1, 3)], Plus::new()).unwrap();
        assert_eq!(m.get(0, 0), Some(3));
        assert_eq!(m.nvals(), 2);
    }

    #[test]
    fn from_tuples_rejects_out_of_bounds() {
        assert!(Matrix::from_tuples(2, 2, &[(2, 0, 1u64)], Plus::new()).is_err());
        assert!(Matrix::from_tuples(2, 2, &[(0, 2, 1u64)], Plus::new()).is_err());
    }

    #[test]
    fn iter_row_major_order() {
        let m = sample();
        let tuples = m.extract_tuples();
        assert_eq!(tuples, vec![(0, 1, 10), (0, 3, 30), (1, 0, 5), (2, 2, 7)]);
        let (lo, hi) = m.iter().size_hint();
        assert_eq!(lo, 4);
        assert_eq!(hi, Some(4));
    }

    #[test]
    fn iter_rows_skips_empty_rows() {
        let m = Matrix::from_tuples(4, 4, &[(1, 2, 1u64), (3, 0, 2)], Plus::new()).unwrap();
        let rows: Vec<Index> = m.iter_rows().map(|(r, _, _)| r).collect();
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn insert_tuples_merges_with_existing() {
        let mut m = sample();
        m.insert_tuples(&[(0, 1, 1), (0, 0, 2), (2, 3, 4), (0, 0, 8)], Plus::new())
            .unwrap();
        assert_eq!(m.get(0, 0), Some(10)); // 2 + 8, new duplicates combined
        assert_eq!(m.get(0, 1), Some(11)); // 10 existing + 1 new
        assert_eq!(m.get(2, 3), Some(4));
        assert_eq!(m.get(1, 0), Some(5)); // untouched
        assert_eq!(m.nvals(), 6);
        // tuples out of bounds are rejected without partial application
        assert!(m.insert_tuples(&[(0, 9, 1)], Plus::new()).is_err());
        assert_eq!(m.nvals(), 6);
    }

    #[test]
    fn insert_tuples_empty_is_noop() {
        let mut m = sample();
        let before = m.clone();
        m.insert_tuples(&[], Plus::new()).unwrap();
        assert_eq!(m, before);
    }

    #[test]
    fn resize_grow_rows_and_cols() {
        let mut m = sample();
        m.resize(5, 6);
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.ncols(), 6);
        assert_eq!(m.nvals(), 4);
        m.set(4, 5, 42).unwrap();
        assert_eq!(m.get(4, 5), Some(42));
    }

    #[test]
    fn resize_shrink_drops_out_of_range() {
        let mut m = sample();
        m.resize(2, 2);
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        // remaining: (1,0)=5; dropped: (0,1) is kept? col 1 < 2 -> kept; (0,3) dropped; (2,2) dropped
        assert_eq!(m.get(0, 1), Some(10));
        assert_eq!(m.get(1, 0), Some(5));
        assert_eq!(m.nvals(), 2);
    }

    #[test]
    fn from_edges_builds_pattern() {
        let m: Matrix<u8> = Matrix::from_edges(3, 3, &[(0, 1), (1, 2), (0, 1)]).unwrap();
        assert_eq!(m.get(0, 1), Some(1));
        assert_eq!(m.get(1, 2), Some(1));
        assert_eq!(m.nvals(), 2);
    }

    #[test]
    fn frozen_index_accelerates_and_invalidates() {
        // one wide row (>= LEARNED_ROW_CUTOFF) plus a narrow one
        let mut tuples: Vec<(usize, usize, u64)> = (0..200).map(|c| (0, c * 3, c as u64)).collect();
        tuples.push((1, 5, 99));
        let mut m = Matrix::from_tuples(3, 600, &tuples, Plus::new()).unwrap();
        assert!(!m.has_frozen_index());
        m.freeze_index();
        assert!(m.has_frozen_index());
        let (rows, segments) = m.frozen_index_stats();
        assert_eq!(rows, 1);
        assert!(segments >= 1);
        assert!(m.row_segments(0).is_some());
        assert!(m.row_segments(1).is_none(), "narrow rows carry no model");
        for c in 0..200 {
            assert_eq!(m.get(0, c * 3), Some(c as u64));
        }
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(1, 5), Some(99));
        // every structural mutation drops the cache
        m.set(2, 0, 1).unwrap();
        assert!(!m.has_frozen_index());
        m.freeze_index();
        m.insert_tuples(&[(2, 1, 1)], Plus::new()).unwrap();
        assert!(!m.has_frozen_index());
        m.freeze_index();
        m.remove(2, 0);
        assert!(!m.has_frozen_index());
        m.freeze_index();
        m.resize(4, 700);
        assert!(!m.has_frozen_index());
        m.freeze_index();
        m.clear();
        assert!(!m.has_frozen_index());
        // equality ignores the cache
        let mut a = sample();
        let b = sample();
        a.freeze_index();
        assert_eq!(a, b);
    }

    #[test]
    fn diagonal_from_vector() {
        let v = Vector::from_tuples(4, &[(0, 1u64), (2, 5)], First::new()).unwrap();
        let d = Matrix::diagonal(&v);
        assert_eq!(d.nrows(), 4);
        assert_eq!(d.ncols(), 4);
        assert_eq!(d.get(0, 0), Some(1));
        assert_eq!(d.get(2, 2), Some(5));
        assert_eq!(d.get(1, 1), None);
        assert_eq!(d.nvals(), 2);
    }
}
