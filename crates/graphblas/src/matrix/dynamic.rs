//! An updatable ("dynamic") sparse matrix representation.
//!
//! The paper's future-work item (1) proposes switching to updatable compressed
//! formats such as faimGraph or Hornet, which keep per-row slack so that edge
//! insertions do not require rebuilding the whole CSR structure. [`DynamicMatrix`] is
//! a CPU-side equivalent of that idea: a frozen CSR *base* plus a per-row *delta*
//! buffer of recent insertions. Point insertions touch only the row's delta, reads
//! merge base and delta on the fly, and [`DynamicMatrix::compact`] folds the deltas
//! back into a fresh CSR when they grow past a threshold (amortising the rebuild the
//! way Hornet's block reallocation does) — and freezes the new base's learned row
//! index while it is at it, since compaction is exactly the "CSR freeze" moment.
//!
//! Delta rows come in two layouts, selectable per matrix via [`DeltaLayout`]:
//!
//! * [`DeltaLayout::Gapped`] (the default) — each row is a [`crate::GappedList`]:
//!   a sorted array with interspersed slack slots, so a point insert shifts entries
//!   only up to the nearest gap instead of the whole tail, and wide delta rows carry
//!   a learned position model;
//! * [`DeltaLayout::Sorted`] — the original dense sorted `Vec<(col, value)>` rows
//!   (every insert shifts the tail), kept as the reference the differential tests
//!   and the `ablation_dynamic_matrix` bench compare against.
//!
//! The `ablation_dynamic_matrix` bench compares changeset application through this
//! format against the plain CSR [`Matrix::insert_tuples`] path used by the solution.

use crate::error::Result;
use crate::index::GappedList;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

use super::Matrix;

/// Physical layout of the per-row delta buffers of a [`DynamicMatrix`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaLayout {
    /// Dense sorted rows: `O(log d)` lookup, but every insert shifts the row tail.
    Sorted,
    /// Gap-slot rows ([`crate::GappedList`]): inserts shift only to the nearest
    /// slack slot; wide rows are probed through a learned model.
    Gapped,
}

/// Counters and occupancy numbers of a [`DynamicMatrix`], for the ablation bench and
/// for tuning [`DynamicMatrix::set_compaction_ratio`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DynamicMatrixStats {
    /// Stored elements in the CSR base.
    pub base_nvals: usize,
    /// Elements currently waiting in the delta buffers (excluding overwrites of
    /// base entries).
    pub delta_nvals: usize,
    /// Live entries across all delta rows (including overwrites of base entries).
    pub delta_live: usize,
    /// Physical delta slots (live + slack). Equal to `delta_live` for the sorted
    /// layout; larger for the gapped layout.
    pub delta_slots: usize,
    /// Compactions performed since construction.
    pub compactions: usize,
}

impl DynamicMatrixStats {
    /// Fraction of delta slots holding live entries (1.0 for an empty delta).
    pub fn delta_occupancy(&self) -> f64 {
        if self.delta_slots == 0 {
            1.0
        } else {
            self.delta_live as f64 / self.delta_slots as f64
        }
    }
}

/// Per-row delta storage in one of the two layouts.
#[derive(Clone, Debug)]
enum DeltaRows<T> {
    Sorted(Vec<Vec<(Index, T)>>),
    Gapped(Vec<GappedList<T>>),
}

/// Iterator over one delta row's `(col, value)` entries in column order.
enum DeltaRowIter<'a, T> {
    Sorted(std::slice::Iter<'a, (Index, T)>),
    Gapped(crate::index::GappedIter<'a, T>),
}

impl<T: Copy> Iterator for DeltaRowIter<'_, T> {
    type Item = (Index, T);

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            DeltaRowIter::Sorted(iter) => iter.next().copied(),
            DeltaRowIter::Gapped(iter) => iter.next(),
        }
    }
}

impl<T: Scalar> DeltaRows<T> {
    fn new(layout: DeltaLayout, nrows: Index) -> Self {
        match layout {
            DeltaLayout::Sorted => DeltaRows::Sorted(vec![Vec::new(); nrows]),
            DeltaLayout::Gapped => DeltaRows::Gapped(vec![GappedList::new(); nrows]),
        }
    }

    fn layout(&self) -> DeltaLayout {
        match self {
            DeltaRows::Sorted(_) => DeltaLayout::Sorted,
            DeltaRows::Gapped(_) => DeltaLayout::Gapped,
        }
    }

    fn get(&self, row: Index, col: Index) -> Option<T> {
        match self {
            DeltaRows::Sorted(rows) => rows[row]
                .binary_search_by_key(&col, |&(c, _)| c)
                .ok()
                .map(|pos| rows[row][pos].1),
            DeltaRows::Gapped(rows) => rows[row].get(col),
        }
    }

    /// Insert or overwrite; returns `true` when the column was newly inserted.
    fn set(&mut self, row: Index, col: Index, value: T) -> bool {
        match self {
            DeltaRows::Sorted(rows) => match rows[row].binary_search_by_key(&col, |&(c, _)| c) {
                Ok(pos) => {
                    rows[row][pos].1 = value;
                    false
                }
                Err(pos) => {
                    rows[row].insert(pos, (col, value));
                    true
                }
            },
            DeltaRows::Gapped(rows) => rows[row].insert(col, value),
        }
    }

    fn row_iter(&self, row: Index) -> DeltaRowIter<'_, T> {
        match self {
            DeltaRows::Sorted(rows) => DeltaRowIter::Sorted(rows[row].iter()),
            DeltaRows::Gapped(rows) => DeltaRowIter::Gapped(rows[row].iter()),
        }
    }

    fn row_len(&self, row: Index) -> usize {
        match self {
            DeltaRows::Sorted(rows) => rows[row].len(),
            DeltaRows::Gapped(rows) => rows[row].len(),
        }
    }

    fn live(&self) -> usize {
        match self {
            DeltaRows::Sorted(rows) => rows.iter().map(Vec::len).sum(),
            DeltaRows::Gapped(rows) => rows.iter().map(GappedList::len).sum(),
        }
    }

    fn slots(&self) -> usize {
        match self {
            DeltaRows::Sorted(rows) => rows.iter().map(Vec::len).sum(),
            DeltaRows::Gapped(rows) => rows.iter().map(GappedList::slots).sum(),
        }
    }

    fn is_all_empty(&self) -> bool {
        match self {
            DeltaRows::Sorted(rows) => rows.iter().all(Vec::is_empty),
            DeltaRows::Gapped(rows) => rows.iter().all(GappedList::is_empty),
        }
    }

    fn clear_all(&mut self) {
        match self {
            DeltaRows::Sorted(rows) => rows.iter_mut().for_each(Vec::clear),
            DeltaRows::Gapped(rows) => rows.iter_mut().for_each(GappedList::clear),
        }
    }

    fn resize(&mut self, nrows: Index) {
        match self {
            DeltaRows::Sorted(rows) => rows.resize(nrows, Vec::new()),
            DeltaRows::Gapped(rows) => rows.resize(nrows, GappedList::new()),
        }
    }
}

/// A sparse matrix optimised for interleaved reads and single-element insertions.
#[derive(Clone, Debug)]
pub struct DynamicMatrix<T> {
    base: Matrix<T>,
    /// Per-row buffers holding insertions newer than `base`.
    delta: DeltaRows<T>,
    delta_nvals: usize,
    /// When the delta holds more than this fraction of the base entries, `compact`
    /// rebuilds the base (checked by [`DynamicMatrix::maybe_compact`]).
    compaction_ratio: f64,
    compactions: usize,
}

impl<T: Scalar> DynamicMatrix<T> {
    /// Create an empty dynamic matrix (gapped delta layout).
    pub fn new(nrows: Index, ncols: Index) -> Self {
        DynamicMatrix::from_matrix(Matrix::new(nrows, ncols))
    }

    /// Wrap an existing CSR matrix as the frozen base (gapped delta layout).
    pub fn from_matrix(base: Matrix<T>) -> Self {
        DynamicMatrix::with_layout(base, DeltaLayout::Gapped)
    }

    /// Wrap an existing CSR matrix with an explicit delta-row layout.
    pub fn with_layout(base: Matrix<T>, layout: DeltaLayout) -> Self {
        let nrows = base.nrows();
        DynamicMatrix {
            base,
            delta: DeltaRows::new(layout, nrows),
            delta_nvals: 0,
            compaction_ratio: 0.25,
            compactions: 0,
        }
    }

    /// The delta-row layout this matrix was built with.
    pub fn layout(&self) -> DeltaLayout {
        self.delta.layout()
    }

    /// Set the delta-to-base fraction past which [`DynamicMatrix::maybe_compact`]
    /// folds the delta into a fresh CSR base. Clamped below at a small positive
    /// value: a zero or negative ratio would compact on (almost) every insert.
    pub fn set_compaction_ratio(&mut self, ratio: f64) {
        self.compaction_ratio = if ratio.is_finite() {
            ratio.max(1e-6)
        } else {
            0.25
        };
    }

    /// Builder-style [`DynamicMatrix::set_compaction_ratio`].
    #[must_use]
    pub fn with_compaction_ratio(mut self, ratio: f64) -> Self {
        self.set_compaction_ratio(ratio);
        self
    }

    /// The current compaction threshold fraction.
    pub fn compaction_ratio(&self) -> f64 {
        self.compaction_ratio
    }

    /// Counters and delta occupancy (see [`DynamicMatrixStats`]).
    pub fn stats(&self) -> DynamicMatrixStats {
        DynamicMatrixStats {
            base_nvals: self.base.nvals(),
            delta_nvals: self.delta_nvals,
            delta_live: self.delta.live(),
            delta_slots: self.delta.slots(),
            compactions: self.compactions,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.base.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.base.ncols()
    }

    /// Number of stored elements (base + delta).
    pub fn nvals(&self) -> usize {
        self.base.nvals() + self.delta_nvals
    }

    /// Number of elements currently waiting in the delta buffers.
    pub fn pending_delta(&self) -> usize {
        self.delta_nvals
    }

    /// Look up an element, preferring the freshest value.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows() {
            return None;
        }
        if let Some(value) = self.delta.get(row, col) {
            return Some(value);
        }
        self.base.get(row, col)
    }

    /// Insert or overwrite an element without touching the CSR base.
    pub fn set(&mut self, row: Index, col: Index, value: T) -> Result<()> {
        if row >= self.nrows() || col >= self.ncols() {
            return Err(crate::Error::IndexOutOfBounds {
                index: if row >= self.nrows() { row } else { col },
                bound: if row >= self.nrows() {
                    self.nrows()
                } else {
                    self.ncols()
                },
                context: "DynamicMatrix::set",
            });
        }
        if self.delta.set(row, col, value) && self.base.get(row, col).is_none() {
            self.delta_nvals += 1;
        }
        Ok(())
    }

    /// Accumulate into an element with `op` (reads the freshest value first).
    pub fn accumulate<Op>(&mut self, row: Index, col: Index, value: T, op: Op) -> Result<()>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        let combined = match self.get(row, col) {
            Some(existing) => op.apply(existing, value),
            None => value,
        };
        self.set(row, col, combined)
    }

    /// Grow the dimensions (the case-study workload only ever grows).
    pub fn resize(&mut self, nrows: Index, ncols: Index) {
        self.base.resize(nrows, ncols);
        self.delta.resize(nrows);
    }

    /// Iterate all `(row, col, value)` tuples, delta entries overriding base entries.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        (0..self.nrows())
            .flat_map(move |r| self.row_merged(r).into_iter().map(move |(c, v)| (r, c, v)))
    }

    /// Merged (base + delta) contents of one row, sorted by column.
    pub fn row_merged(&self, row: Index) -> Vec<(Index, T)> {
        let (base_cols, base_vals) = self.base.row(row);
        let mut out = Vec::with_capacity(base_cols.len() + self.delta.row_len(row));
        let mut delta = self.delta.row_iter(row).peekable();
        let mut i = 0usize;
        while let Some(&(dc, dv)) = delta.peek() {
            // emit base entries strictly before the next delta column
            while i < base_cols.len() && base_cols[i] < dc {
                out.push((base_cols[i], base_vals[i]));
                i += 1;
            }
            if i < base_cols.len() && base_cols[i] == dc {
                i += 1; // same column: the delta value is newer
            }
            out.push((dc, dv));
            delta.next();
        }
        while i < base_cols.len() {
            out.push((base_cols[i], base_vals[i]));
            i += 1;
        }
        out
    }

    /// Fold the delta buffers into a fresh CSR base and freeze the new base's
    /// learned row index (compaction *is* the CSR freeze moment).
    pub fn compact(&mut self) {
        if self.delta_nvals == 0 && self.delta.is_all_empty() {
            return;
        }
        let nrows = self.nrows();
        let ncols = self.ncols();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nvals());
        let mut values = Vec::with_capacity(self.nvals());
        row_ptr.push(0);
        for r in 0..nrows {
            for (c, v) in self.row_merged(r) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        self.base = Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values);
        self.base.freeze_index();
        self.delta.clear_all();
        self.delta_nvals = 0;
        self.compactions += 1;
    }

    /// Compact only if the delta has grown past the configured fraction of the base.
    /// Returns `true` if a compaction happened.
    pub fn maybe_compact(&mut self) -> bool {
        let threshold = (self.base.nvals() as f64 * self.compaction_ratio).max(64.0);
        if self.delta_nvals as f64 > threshold {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Materialise the current contents as a plain CSR [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut copy = self.clone();
        copy.compact();
        copy.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn starts_equal_to_wrapped_matrix() {
        let base = Matrix::from_tuples(3, 3, &[(0, 1, 5u64), (2, 0, 7)], Plus::new()).unwrap();
        let dynamic = DynamicMatrix::from_matrix(base.clone());
        assert_eq!(dynamic.nrows(), 3);
        assert_eq!(dynamic.nvals(), 2);
        assert_eq!(dynamic.get(0, 1), Some(5));
        assert_eq!(dynamic.get(1, 1), None);
        assert_eq!(dynamic.to_matrix(), base);
        assert_eq!(dynamic.layout(), DeltaLayout::Gapped);
    }

    #[test]
    fn set_goes_to_delta_and_reads_merge() {
        let base = Matrix::from_tuples(2, 4, &[(0, 0, 1u64), (0, 2, 3)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.set(0, 1, 2).unwrap();
        dynamic.set(1, 3, 9).unwrap();
        assert_eq!(dynamic.pending_delta(), 2);
        assert_eq!(dynamic.nvals(), 4);
        assert_eq!(dynamic.get(0, 1), Some(2));
        assert_eq!(dynamic.row_merged(0), vec![(0, 1), (1, 2), (2, 3)]);
        // overwrite of a base entry does not change nvals
        dynamic.set(0, 0, 100).unwrap();
        assert_eq!(dynamic.nvals(), 4);
        assert_eq!(dynamic.get(0, 0), Some(100));
    }

    #[test]
    fn accumulate_combines_base_and_delta_values() {
        let base = Matrix::from_tuples(1, 2, &[(0, 0, 10u64)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.accumulate(0, 0, 5, Plus::new()).unwrap();
        dynamic.accumulate(0, 1, 7, Plus::new()).unwrap();
        dynamic.accumulate(0, 1, 3, Plus::new()).unwrap();
        assert_eq!(dynamic.get(0, 0), Some(15));
        assert_eq!(dynamic.get(0, 1), Some(10));
    }

    #[test]
    fn compact_folds_delta_into_base() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(3, 3);
        for i in 0..3 {
            dynamic.set(i, i, i as u64 + 1).unwrap();
        }
        assert_eq!(dynamic.pending_delta(), 3);
        dynamic.compact();
        assert_eq!(dynamic.pending_delta(), 0);
        assert_eq!(dynamic.nvals(), 3);
        assert_eq!(dynamic.get(1, 1), Some(2));
        assert_eq!(dynamic.stats().compactions, 1);
        // compacting twice is a no-op
        dynamic.compact();
        assert_eq!(dynamic.nvals(), 3);
        assert_eq!(dynamic.stats().compactions, 1);
    }

    #[test]
    fn maybe_compact_uses_threshold() {
        let base = Matrix::from_tuples(2, 200, &[(0, 0, 1u64)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        for c in 1..50 {
            dynamic.set(0, c, c as u64).unwrap();
        }
        // 49 pending < max(0.25 * 1, 64) -> no compaction yet
        assert!(!dynamic.maybe_compact());
        for c in 50..120 {
            dynamic.set(1, c, c as u64).unwrap();
        }
        assert!(dynamic.maybe_compact());
        assert_eq!(dynamic.pending_delta(), 0);
        assert_eq!(dynamic.nvals(), 120);
    }

    #[test]
    fn compaction_ratio_is_configurable() {
        let base_tuples: Vec<(usize, usize, u64)> = (0..1000).map(|c| (0, c, 1)).collect();
        let base = Matrix::from_tuples(1, 2000, &base_tuples, Plus::new()).unwrap();
        // ratio 0.1 over 1000 base entries -> threshold max(100, 64) = 100
        let mut eager = DynamicMatrix::from_matrix(base.clone()).with_compaction_ratio(0.1);
        let mut lazy = DynamicMatrix::from_matrix(base);
        assert_eq!(eager.compaction_ratio(), 0.1);
        for c in 1000..1101 {
            eager.set(0, c, 1).unwrap();
            lazy.set(0, c, 1).unwrap();
        }
        assert!(eager.maybe_compact(), "101 pending > 100 threshold");
        assert!(!lazy.maybe_compact(), "101 pending < 250 default threshold");
        // degenerate ratios are clamped, not honoured
        let mut clamped: DynamicMatrix<u64> = DynamicMatrix::new(1, 10).with_compaction_ratio(-3.0);
        assert!(clamped.compaction_ratio() > 0.0);
        clamped.set_compaction_ratio(f64::NAN);
        assert_eq!(clamped.compaction_ratio(), 0.25);
    }

    #[test]
    fn stats_report_occupancy_and_compactions() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(4, 4000);
        let empty = dynamic.stats();
        assert_eq!(empty.delta_nvals, 0);
        assert_eq!(empty.delta_occupancy(), 1.0);
        for c in 0..200 {
            dynamic.set(1, c * 7 % 4000, 1).unwrap();
        }
        let stats = dynamic.stats();
        assert_eq!(stats.delta_nvals, 200);
        assert_eq!(stats.delta_live, 200);
        assert!(stats.delta_slots >= stats.delta_live, "gapped keeps slack");
        let occ = stats.delta_occupancy();
        assert!(occ > 0.5 && occ <= 1.0, "occupancy {occ} out of range");
        dynamic.compact();
        let after = dynamic.stats();
        assert_eq!(after.compactions, 1);
        assert_eq!(after.base_nvals, 200);
        assert_eq!(after.delta_live, 0);
    }

    #[test]
    fn compact_freezes_the_base_index() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(1, 4000);
        for c in 0..300 {
            dynamic.set(0, c * 13 % 4000, c as u64).unwrap();
        }
        dynamic.compact();
        let m = dynamic.to_matrix();
        assert!(m.has_frozen_index(), "compaction freezes the learned index");
        assert!(m.frozen_index_stats().0 >= 1);
    }

    #[test]
    fn equivalent_to_csr_insert_tuples() {
        // the dynamic path and the CSR merge path must produce the same matrix
        let base_tuples: Vec<(usize, usize, u64)> =
            vec![(0, 0, 1), (1, 2, 3), (2, 1, 4), (3, 3, 9)];
        let extra: Vec<(usize, usize, u64)> = vec![(0, 3, 2), (1, 2, 5), (3, 0, 7), (2, 2, 8)];

        let mut csr = Matrix::from_tuples(4, 4, &base_tuples, Plus::new()).unwrap();
        csr.insert_tuples(&extra, Plus::new()).unwrap();

        for layout in [DeltaLayout::Sorted, DeltaLayout::Gapped] {
            let mut dynamic = DynamicMatrix::with_layout(
                Matrix::from_tuples(4, 4, &base_tuples, Plus::new()).unwrap(),
                layout,
            );
            for &(r, c, v) in &extra {
                dynamic.accumulate(r, c, v, Plus::new()).unwrap();
            }
            assert_eq!(dynamic.to_matrix(), csr, "{layout:?}");
        }
    }

    #[test]
    fn layouts_stay_byte_identical_under_mixed_schedules() {
        // deterministic interleaved insert/read/compact schedule over both layouts
        let mut sorted: DynamicMatrix<u64> =
            DynamicMatrix::with_layout(Matrix::new(8, 512), DeltaLayout::Sorted);
        let mut gapped: DynamicMatrix<u64> =
            DynamicMatrix::with_layout(Matrix::new(8, 512), DeltaLayout::Gapped);
        let mut state = 0xC0FFEEu64;
        for step in 0..3_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = ((state >> 33) % 8) as usize;
            let c = ((state >> 13) % 512) as usize;
            match state % 5 {
                0..=2 => {
                    sorted.set(r, c, step).unwrap();
                    gapped.set(r, c, step).unwrap();
                }
                3 => {
                    assert_eq!(sorted.get(r, c), gapped.get(r, c));
                    sorted.accumulate(r, c, 1, Plus::new()).unwrap();
                    gapped.accumulate(r, c, 1, Plus::new()).unwrap();
                }
                _ => {
                    if state.is_multiple_of(97) {
                        sorted.compact();
                        gapped.compact();
                    }
                    assert_eq!(sorted.row_merged(r), gapped.row_merged(r));
                }
            }
            assert_eq!(sorted.nvals(), gapped.nvals(), "step {step}");
        }
        assert_eq!(sorted.to_matrix(), gapped.to_matrix());
    }

    #[test]
    fn resize_grows_delta_buffers() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(1, 1);
        dynamic.resize(3, 5);
        dynamic.set(2, 4, 1).unwrap();
        assert_eq!(dynamic.get(2, 4), Some(1));
        assert!(dynamic.set(3, 0, 1).is_err());
        assert!(dynamic.set(0, 5, 1).is_err());
    }

    #[test]
    fn iter_yields_merged_tuples_in_order() {
        let base = Matrix::from_tuples(2, 3, &[(0, 2, 1u64), (1, 0, 2)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.set(0, 0, 9).unwrap();
        let tuples: Vec<(usize, usize, u64)> = dynamic.iter().collect();
        assert_eq!(tuples, vec![(0, 0, 9), (0, 2, 1), (1, 0, 2)]);
    }
}
