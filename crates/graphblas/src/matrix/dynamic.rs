//! An updatable ("dynamic") sparse matrix representation.
//!
//! The paper's future-work item (1) proposes switching to updatable compressed
//! formats such as faimGraph or Hornet, which keep per-row slack so that edge
//! insertions do not require rebuilding the whole CSR structure. [`DynamicMatrix`] is
//! a CPU-side equivalent of that idea: a frozen CSR *base* plus a per-row *delta*
//! buffer of recent insertions. Point insertions are `O(log d)` in the row's delta
//! size, reads merge base and delta on the fly, and [`DynamicMatrix::compact`] folds
//! the deltas back into a fresh CSR when they grow past a threshold (amortising the
//! rebuild the way Hornet's block reallocation does).
//!
//! The `ablation_dynamic_matrix` bench compares changeset application through this
//! format against the plain CSR [`Matrix::insert_tuples`] path used by the solution.

use crate::error::Result;
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

use super::Matrix;

/// A sparse matrix optimised for interleaved reads and single-element insertions.
#[derive(Clone, Debug)]
pub struct DynamicMatrix<T> {
    base: Matrix<T>,
    /// Per-row sorted `(col, value)` buffers holding insertions newer than `base`.
    delta: Vec<Vec<(Index, T)>>,
    delta_nvals: usize,
    /// When the delta holds more than this fraction of the base entries, `compact`
    /// rebuilds the base (checked by [`DynamicMatrix::maybe_compact`]).
    compaction_ratio: f64,
}

impl<T: Scalar> DynamicMatrix<T> {
    /// Create an empty dynamic matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        DynamicMatrix::from_matrix(Matrix::new(nrows, ncols))
    }

    /// Wrap an existing CSR matrix as the frozen base.
    pub fn from_matrix(base: Matrix<T>) -> Self {
        let nrows = base.nrows();
        DynamicMatrix {
            base,
            delta: vec![Vec::new(); nrows],
            delta_nvals: 0,
            compaction_ratio: 0.25,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> Index {
        self.base.nrows()
    }

    /// Number of columns.
    pub fn ncols(&self) -> Index {
        self.base.ncols()
    }

    /// Number of stored elements (base + delta).
    pub fn nvals(&self) -> usize {
        self.base.nvals() + self.delta_nvals
    }

    /// Number of elements currently waiting in the delta buffers.
    pub fn pending_delta(&self) -> usize {
        self.delta_nvals
    }

    /// Look up an element, preferring the freshest value.
    pub fn get(&self, row: Index, col: Index) -> Option<T> {
        if row >= self.nrows() {
            return None;
        }
        if let Ok(pos) = self.delta[row].binary_search_by_key(&col, |&(c, _)| c) {
            return Some(self.delta[row][pos].1);
        }
        self.base.get(row, col)
    }

    /// Insert or overwrite an element without touching the CSR base.
    pub fn set(&mut self, row: Index, col: Index, value: T) -> Result<()> {
        if row >= self.nrows() || col >= self.ncols() {
            return Err(crate::Error::IndexOutOfBounds {
                index: if row >= self.nrows() { row } else { col },
                bound: if row >= self.nrows() {
                    self.nrows()
                } else {
                    self.ncols()
                },
                context: "DynamicMatrix::set",
            });
        }
        match self.delta[row].binary_search_by_key(&col, |&(c, _)| c) {
            Ok(pos) => self.delta[row][pos].1 = value,
            Err(pos) => {
                self.delta[row].insert(pos, (col, value));
                if self.base.get(row, col).is_none() {
                    self.delta_nvals += 1;
                }
            }
        }
        Ok(())
    }

    /// Accumulate into an element with `op` (reads the freshest value first).
    pub fn accumulate<Op>(&mut self, row: Index, col: Index, value: T, op: Op) -> Result<()>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        let combined = match self.get(row, col) {
            Some(existing) => op.apply(existing, value),
            None => value,
        };
        self.set(row, col, combined)
    }

    /// Grow the dimensions (the case-study workload only ever grows).
    pub fn resize(&mut self, nrows: Index, ncols: Index) {
        self.base.resize(nrows, ncols);
        self.delta.resize(nrows, Vec::new());
    }

    /// Iterate all `(row, col, value)` tuples, delta entries overriding base entries.
    pub fn iter(&self) -> impl Iterator<Item = (Index, Index, T)> + '_ {
        (0..self.nrows())
            .flat_map(move |r| self.row_merged(r).into_iter().map(move |(c, v)| (r, c, v)))
    }

    /// Merged (base + delta) contents of one row, sorted by column.
    pub fn row_merged(&self, row: Index) -> Vec<(Index, T)> {
        let (base_cols, base_vals) = self.base.row(row);
        let delta = &self.delta[row];
        let mut out = Vec::with_capacity(base_cols.len() + delta.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < base_cols.len() || j < delta.len() {
            if j >= delta.len() || (i < base_cols.len() && base_cols[i] < delta[j].0) {
                out.push((base_cols[i], base_vals[i]));
                i += 1;
            } else if i >= base_cols.len() || delta[j].0 < base_cols[i] {
                out.push(delta[j]);
                j += 1;
            } else {
                // same column: the delta value is newer
                out.push(delta[j]);
                i += 1;
                j += 1;
            }
        }
        out
    }

    /// Fold the delta buffers into a fresh CSR base.
    pub fn compact(&mut self) {
        if self.delta_nvals == 0 && self.delta.iter().all(Vec::is_empty) {
            return;
        }
        let nrows = self.nrows();
        let ncols = self.ncols();
        let mut row_ptr = Vec::with_capacity(nrows + 1);
        let mut col_idx = Vec::with_capacity(self.nvals());
        let mut values = Vec::with_capacity(self.nvals());
        row_ptr.push(0);
        for r in 0..nrows {
            for (c, v) in self.row_merged(r) {
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        self.base = Matrix::from_csr_parts(nrows, ncols, row_ptr, col_idx, values);
        for row in &mut self.delta {
            row.clear();
        }
        self.delta_nvals = 0;
    }

    /// Compact only if the delta has grown past the configured fraction of the base.
    /// Returns `true` if a compaction happened.
    pub fn maybe_compact(&mut self) -> bool {
        let threshold = (self.base.nvals() as f64 * self.compaction_ratio).max(64.0);
        if self.delta_nvals as f64 > threshold {
            self.compact();
            true
        } else {
            false
        }
    }

    /// Materialise the current contents as a plain CSR [`Matrix`].
    pub fn to_matrix(&self) -> Matrix<T> {
        let mut copy = self.clone();
        copy.compact();
        copy.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::Plus;

    #[test]
    fn starts_equal_to_wrapped_matrix() {
        let base = Matrix::from_tuples(3, 3, &[(0, 1, 5u64), (2, 0, 7)], Plus::new()).unwrap();
        let dynamic = DynamicMatrix::from_matrix(base.clone());
        assert_eq!(dynamic.nrows(), 3);
        assert_eq!(dynamic.nvals(), 2);
        assert_eq!(dynamic.get(0, 1), Some(5));
        assert_eq!(dynamic.get(1, 1), None);
        assert_eq!(dynamic.to_matrix(), base);
    }

    #[test]
    fn set_goes_to_delta_and_reads_merge() {
        let base = Matrix::from_tuples(2, 4, &[(0, 0, 1u64), (0, 2, 3)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.set(0, 1, 2).unwrap();
        dynamic.set(1, 3, 9).unwrap();
        assert_eq!(dynamic.pending_delta(), 2);
        assert_eq!(dynamic.nvals(), 4);
        assert_eq!(dynamic.get(0, 1), Some(2));
        assert_eq!(dynamic.row_merged(0), vec![(0, 1), (1, 2), (2, 3)]);
        // overwrite of a base entry does not change nvals
        dynamic.set(0, 0, 100).unwrap();
        assert_eq!(dynamic.nvals(), 4);
        assert_eq!(dynamic.get(0, 0), Some(100));
    }

    #[test]
    fn accumulate_combines_base_and_delta_values() {
        let base = Matrix::from_tuples(1, 2, &[(0, 0, 10u64)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.accumulate(0, 0, 5, Plus::new()).unwrap();
        dynamic.accumulate(0, 1, 7, Plus::new()).unwrap();
        dynamic.accumulate(0, 1, 3, Plus::new()).unwrap();
        assert_eq!(dynamic.get(0, 0), Some(15));
        assert_eq!(dynamic.get(0, 1), Some(10));
    }

    #[test]
    fn compact_folds_delta_into_base() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(3, 3);
        for i in 0..3 {
            dynamic.set(i, i, i as u64 + 1).unwrap();
        }
        assert_eq!(dynamic.pending_delta(), 3);
        dynamic.compact();
        assert_eq!(dynamic.pending_delta(), 0);
        assert_eq!(dynamic.nvals(), 3);
        assert_eq!(dynamic.get(1, 1), Some(2));
        // compacting twice is a no-op
        dynamic.compact();
        assert_eq!(dynamic.nvals(), 3);
    }

    #[test]
    fn maybe_compact_uses_threshold() {
        let base = Matrix::from_tuples(2, 200, &[(0, 0, 1u64)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        for c in 1..50 {
            dynamic.set(0, c, c as u64).unwrap();
        }
        // 49 pending < max(0.25 * 1, 64) -> no compaction yet
        assert!(!dynamic.maybe_compact());
        for c in 50..120 {
            dynamic.set(1, c, c as u64).unwrap();
        }
        assert!(dynamic.maybe_compact());
        assert_eq!(dynamic.pending_delta(), 0);
        assert_eq!(dynamic.nvals(), 120);
    }

    #[test]
    fn equivalent_to_csr_insert_tuples() {
        // the dynamic path and the CSR merge path must produce the same matrix
        let base_tuples: Vec<(usize, usize, u64)> =
            vec![(0, 0, 1), (1, 2, 3), (2, 1, 4), (3, 3, 9)];
        let extra: Vec<(usize, usize, u64)> = vec![(0, 3, 2), (1, 2, 5), (3, 0, 7), (2, 2, 8)];

        let mut csr = Matrix::from_tuples(4, 4, &base_tuples, Plus::new()).unwrap();
        csr.insert_tuples(&extra, Plus::new()).unwrap();

        let mut dynamic = DynamicMatrix::from_matrix(
            Matrix::from_tuples(4, 4, &base_tuples, Plus::new()).unwrap(),
        );
        for &(r, c, v) in &extra {
            dynamic.accumulate(r, c, v, Plus::new()).unwrap();
        }
        assert_eq!(dynamic.to_matrix(), csr);
    }

    #[test]
    fn resize_grows_delta_buffers() {
        let mut dynamic: DynamicMatrix<u64> = DynamicMatrix::new(1, 1);
        dynamic.resize(3, 5);
        dynamic.set(2, 4, 1).unwrap();
        assert_eq!(dynamic.get(2, 4), Some(1));
        assert!(dynamic.set(3, 0, 1).is_err());
        assert!(dynamic.set(0, 5, 1).is_err());
    }

    #[test]
    fn iter_yields_merged_tuples_in_order() {
        let base = Matrix::from_tuples(2, 3, &[(0, 2, 1u64), (1, 0, 2)], Plus::new()).unwrap();
        let mut dynamic = DynamicMatrix::from_matrix(base);
        dynamic.set(0, 0, 9).unwrap();
        let tuples: Vec<(usize, usize, u64)> = dynamic.iter().collect();
        assert_eq!(tuples, vec![(0, 0, 9), (0, 2, 1), (1, 0, 2)]);
    }
}
