//! Dense conversions, intended for tests, debugging and small examples.

use crate::error::Result;
use crate::ops_traits::BinaryFn;
use crate::scalar::Scalar;
use crate::types::Index;

use super::Matrix;

impl<T: Scalar> Matrix<T> {
    /// Render the matrix as a dense row-major `Vec<Vec<T>>`, filling missing positions
    /// with `fill`. Only use on small matrices (tests / examples).
    pub fn to_dense(&self, fill: T) -> Vec<Vec<T>> {
        let mut out = vec![vec![fill; self.ncols()]; self.nrows()];
        for (r, c, v) in self.iter() {
            out[r][c] = v;
        }
        out
    }

    /// Build a sparse matrix from a dense row-major representation, storing every
    /// element that differs from `zero`.
    pub fn from_dense(rows: &[Vec<T>], zero: T) -> Result<Self> {
        let nrows = rows.len();
        let ncols = rows.iter().map(Vec::len).max().unwrap_or(0);
        let mut tuples = Vec::new();
        for (r, row) in rows.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != zero {
                    tuples.push((r as Index, c as Index, v));
                }
            }
        }
        Matrix::from_tuples(nrows, ncols, &tuples, BinaryFn::new(|_a: T, b: T| b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_roundtrip() {
        let dense = vec![vec![0u64, 2, 0], vec![1, 0, 3]];
        let m = Matrix::from_dense(&dense, 0).unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.nvals(), 3);
        assert_eq!(m.to_dense(0), dense);
    }

    #[test]
    fn from_dense_empty() {
        let m: Matrix<u64> = Matrix::from_dense(&[], 0).unwrap();
        assert_eq!(m.nrows(), 0);
        assert_eq!(m.ncols(), 0);
        assert_eq!(m.nvals(), 0);
    }

    #[test]
    fn from_dense_ragged_rows_use_max_width() {
        let dense = vec![vec![1u8], vec![0, 2, 3]];
        let m = Matrix::from_dense(&dense, 0).unwrap();
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(1, 2), Some(3));
        assert_eq!(m.get(0, 0), Some(1));
    }
}
