//! Construction of CSR matrices from coordinate tuples (`GrB_Matrix_build`).

use crate::error::{Error, Result};
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

use super::Matrix;

/// Build a CSR matrix from unsorted coordinate tuples, combining duplicates with `dup`.
pub(super) fn from_tuples<T, Op>(
    nrows: Index,
    ncols: Index,
    tuples: &[(Index, Index, T)],
    dup: Op,
) -> Result<Matrix<T>>
where
    T: Scalar,
    Op: BinaryOp<T, T, Output = T>,
{
    for &(r, c, _) in tuples {
        if r >= nrows {
            return Err(Error::IndexOutOfBounds {
                index: r,
                bound: nrows,
                context: "Matrix::from_tuples (row)",
            });
        }
        if c >= ncols {
            return Err(Error::IndexOutOfBounds {
                index: c,
                bound: ncols,
                context: "Matrix::from_tuples (col)",
            });
        }
    }

    let mut sorted: Vec<(Index, Index, T)> = tuples.to_vec();
    sorted.sort_by_key(|&(r, c, _)| (r, c));

    let mut row_ptr = Vec::with_capacity(nrows + 1);
    let mut col_idx = Vec::with_capacity(sorted.len());
    let mut values: Vec<T> = Vec::with_capacity(sorted.len());
    row_ptr.push(0);

    let mut current_row = 0;
    for (r, c, v) in sorted {
        while current_row < r {
            row_ptr.push(col_idx.len());
            current_row += 1;
        }
        // After the row advance, `row_ptr[current_row]` is the start of the row being
        // filled; a duplicate coordinate means the previous tuple had the same column
        // within this same row.
        let row_start = row_ptr[current_row];
        // lint: allow(panic) — guarded by the len > row_start check on the same line
        if col_idx.len() > row_start && *col_idx.last().expect("non-empty") == c {
            let slot = values.last_mut().expect("values parallel to col_idx"); // lint: allow(panic) — values grows in lockstep with col_idx
            *slot = dup.apply(*slot, v);
            continue;
        }
        col_idx.push(c);
        values.push(v);
    }
    while current_row < nrows {
        row_ptr.push(col_idx.len());
        current_row += 1;
    }

    Ok(Matrix::from_csr_parts(
        nrows, ncols, row_ptr, col_idx, values,
    ))
}

/// An incremental builder that accumulates tuples and produces a [`Matrix`].
///
/// Useful when the number of tuples is not known up front (e.g. while parsing input
/// files): `push` is O(1) amortised and `build` performs a single sort + merge.
#[derive(Clone, Debug)]
pub struct MatrixBuilder<T> {
    nrows: Index,
    ncols: Index,
    tuples: Vec<(Index, Index, T)>,
}

impl<T: Scalar> MatrixBuilder<T> {
    /// Create a builder for an `nrows × ncols` matrix.
    pub fn new(nrows: Index, ncols: Index) -> Self {
        MatrixBuilder {
            nrows,
            ncols,
            tuples: Vec::new(),
        }
    }

    /// Create a builder with pre-allocated capacity for `capacity` tuples.
    pub fn with_capacity(nrows: Index, ncols: Index, capacity: usize) -> Self {
        MatrixBuilder {
            nrows,
            ncols,
            tuples: Vec::with_capacity(capacity),
        }
    }

    /// Queue a tuple for insertion. Bounds are checked at [`MatrixBuilder::build`] time.
    pub fn push(&mut self, row: Index, col: Index, value: T) {
        self.tuples.push((row, col, value));
    }

    /// Number of queued tuples (duplicates not yet combined).
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether no tuples have been queued.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Grow the target dimensions (useful when ids are discovered while parsing).
    pub fn grow_to(&mut self, nrows: Index, ncols: Index) {
        self.nrows = self.nrows.max(nrows);
        self.ncols = self.ncols.max(ncols);
    }

    /// Build the matrix, combining duplicate coordinates with `dup`.
    pub fn build<Op>(self, dup: Op) -> Result<Matrix<T>>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        from_tuples(self.nrows, self.ncols, &self.tuples, dup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Plus, Second};

    #[test]
    fn builder_accumulates_and_builds() {
        let mut b = MatrixBuilder::with_capacity(3, 3, 4);
        assert!(b.is_empty());
        b.push(0, 0, 1u64);
        b.push(2, 1, 5);
        b.push(0, 0, 2);
        assert_eq!(b.len(), 3);
        let m = b.build(Plus::new()).unwrap();
        assert_eq!(m.get(0, 0), Some(3));
        assert_eq!(m.get(2, 1), Some(5));
        assert_eq!(m.nvals(), 2);
    }

    #[test]
    fn builder_grow_to_expands_dimensions() {
        let mut b = MatrixBuilder::new(1, 1);
        b.push(4, 2, 1u8);
        b.grow_to(5, 3);
        let m = b.build(Second::new()).unwrap();
        assert_eq!(m.nrows(), 5);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(4, 2), Some(1));
    }

    #[test]
    fn builder_rejects_out_of_bounds_at_build() {
        let mut b = MatrixBuilder::new(2, 2);
        b.push(5, 0, 1u8);
        assert!(b.build(Plus::new()).is_err());
    }

    #[test]
    fn empty_builder_builds_empty_matrix() {
        let b: MatrixBuilder<u64> = MatrixBuilder::new(4, 7);
        let m = b.build(Plus::new()).unwrap();
        assert_eq!(m.nrows(), 4);
        assert_eq!(m.ncols(), 7);
        assert_eq!(m.nvals(), 0);
    }

    #[test]
    fn duplicates_across_rows_are_not_merged_together() {
        let m = from_tuples(3, 3, &[(0, 1, 1u64), (1, 1, 2), (0, 1, 4)], Plus::new()).unwrap();
        assert_eq!(m.get(0, 1), Some(5));
        assert_eq!(m.get(1, 1), Some(2));
    }
}
