//! Monoids: associative binary operators with an identity element (`GrB_Monoid`).

use crate::ops_traits::{BinaryOp, LAnd, LOr, Max, Min, Plus, Times};
use crate::scalar::{Ring, Scalar};

/// An associative, commutative binary operator together with its identity element.
///
/// Monoids drive reductions ([`crate::ops::reduce`]) and serve as the additive part of
/// a [`crate::semiring::Semiring`].
pub trait Monoid<T: Scalar>: BinaryOp<T, T, Output = T> {
    /// The identity element of the monoid (`id ⊕ x = x`).
    fn identity(&self) -> T;
}

impl<T: Ring> Monoid<T> for Plus<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::ZERO
    }
}

impl<T: Ring> Monoid<T> for Times<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::ONE
    }
}

impl<T: Ring> Monoid<T> for Min<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::MAX_VALUE
    }
}

impl<T: Ring> Monoid<T> for Max<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::MIN_VALUE
    }
}

impl<T: Ring> Monoid<T> for LOr<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::ZERO
    }
}

impl<T: Ring> Monoid<T> for LAnd<T> {
    #[inline(always)]
    fn identity(&self) -> T {
        T::ONE
    }
}

/// Convenience constructors for the commonly used monoids.
pub mod stock {
    use super::*;

    /// The `(+, 0)` monoid.
    pub fn plus<T: Ring>() -> Plus<T> {
        Plus::new()
    }
    /// The `(*, 1)` monoid.
    pub fn times<T: Ring>() -> Times<T> {
        Times::new()
    }
    /// The `(min, +inf)` monoid.
    pub fn min<T: Ring>() -> Min<T> {
        Min::new()
    }
    /// The `(max, -inf)` monoid.
    pub fn max<T: Ring>() -> Max<T> {
        Max::new()
    }
    /// The `(∨, 0)` monoid.
    pub fn lor<T: Ring>() -> LOr<T> {
        LOr::new()
    }
    /// The `(∧, 1)` monoid.
    pub fn land<T: Ring>() -> LAnd<T> {
        LAnd::new()
    }
}

#[cfg(test)]
mod tests {
    use super::stock;
    use super::*;

    fn fold<T: Scalar, M: Monoid<T>>(m: M, values: &[T]) -> T {
        values.iter().fold(m.identity(), |acc, &v| m.apply(acc, v))
    }

    #[test]
    fn plus_monoid_folds_to_sum() {
        assert_eq!(fold(stock::plus::<u64>(), &[1, 2, 3, 4]), 10);
        assert_eq!(fold(stock::plus::<u64>(), &[]), 0);
    }

    #[test]
    fn times_monoid_folds_to_product() {
        assert_eq!(fold(stock::times::<u64>(), &[2, 3, 4]), 24);
        assert_eq!(fold(stock::times::<u64>(), &[]), 1);
    }

    #[test]
    fn min_max_monoids() {
        assert_eq!(fold(stock::min::<i64>(), &[5, -2, 9]), -2);
        assert_eq!(fold(stock::max::<i64>(), &[5, -2, 9]), 9);
        assert_eq!(fold(stock::min::<u32>(), &[]), u32::MAX);
        assert_eq!(fold(stock::max::<u32>(), &[]), 0);
    }

    #[test]
    fn logical_monoids() {
        assert_eq!(fold(stock::lor::<u8>(), &[0, 0, 3]), 1);
        assert_eq!(fold(stock::lor::<u8>(), &[0, 0]), 0);
        assert_eq!(fold(stock::land::<u8>(), &[1, 1]), 1);
        assert_eq!(fold(stock::land::<u8>(), &[1, 0]), 0);
        assert_eq!(fold(stock::land::<u8>(), &[]), 1);
    }

    #[test]
    fn identity_is_neutral() {
        let m = stock::plus::<i32>();
        for v in [-5, 0, 7] {
            assert_eq!(m.apply(m.identity(), v), v);
            assert_eq!(m.apply(v, m.identity()), v);
        }
    }
}
