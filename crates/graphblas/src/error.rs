//! Error type used throughout the GraphBLAS crate.
//!
//! The variants loosely follow the error conditions defined by the GraphBLAS C API
//! (`GrB_DIMENSION_MISMATCH`, `GrB_INDEX_OUT_OF_BOUNDS`, ...), but are idiomatic Rust
//! enums carrying enough context to debug a failing operation.

use std::fmt;

use crate::types::Index;

/// Errors returned by GraphBLAS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The dimensions of the operands do not conform
    /// (e.g. multiplying an `m×k` matrix with a vector of size `k' != k`).
    DimensionMismatch {
        /// Human readable description of which operation failed.
        context: &'static str,
        /// Dimension expected by the operation.
        expected: Index,
        /// Dimension actually supplied.
        actual: Index,
    },
    /// A row or column index is outside the dimensions of the container.
    IndexOutOfBounds {
        /// The offending index.
        index: Index,
        /// The dimension bound that was violated.
        bound: Index,
        /// Human readable description of which operation failed.
        context: &'static str,
    },
    /// An attempt was made to shrink a container below its populated area without
    /// permitting truncation.
    InvalidResize {
        /// Requested new dimension.
        requested: Index,
        /// Current dimension.
        current: Index,
    },
    /// Generic invalid-value error (e.g. unsorted input where sorted input is required).
    InvalidValue(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::DimensionMismatch {
                context,
                expected,
                actual,
            } => write!(
                f,
                "dimension mismatch in {context}: expected {expected}, got {actual}"
            ),
            Error::IndexOutOfBounds {
                index,
                bound,
                context,
            } => write!(
                f,
                "index {index} out of bounds (dimension {bound}) in {context}"
            ),
            Error::InvalidResize { requested, current } => write!(
                f,
                "invalid resize: requested {requested}, current dimension {current}"
            ),
            Error::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used by every fallible GraphBLAS operation.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = Error::DimensionMismatch {
            context: "mxv",
            expected: 4,
            actual: 5,
        };
        let s = e.to_string();
        assert!(s.contains("mxv"));
        assert!(s.contains('4'));
        assert!(s.contains('5'));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = Error::IndexOutOfBounds {
            index: 10,
            bound: 3,
            context: "set_element",
        };
        assert!(e.to_string().contains("out of bounds"));
    }

    #[test]
    fn display_invalid_resize() {
        let e = Error::InvalidResize {
            requested: 1,
            current: 5,
        };
        assert!(e.to_string().contains("resize"));
    }

    #[test]
    fn display_invalid_value() {
        let e = Error::InvalidValue("boom".to_string());
        assert!(e.to_string().contains("boom"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<Error>();
    }
}
