//! Sparse vectors (`GrB_Vector`).
//!
//! A [`Vector`] stores `(index, value)` pairs with the index list kept sorted and
//! duplicate-free, which makes merges (element-wise operations), binary-search lookups
//! and in-order iteration cheap. This mirrors the "sparse" vector format of
//! SuiteSparse:GraphBLAS.

use crate::error::{Error, Result};
use crate::ops_traits::BinaryOp;
use crate::scalar::Scalar;
use crate::types::Index;

/// A sparse vector of dimension `size` holding elements of type `T`.
#[derive(Clone, Debug, PartialEq)]
pub struct Vector<T> {
    size: Index,
    indices: Vec<Index>,
    values: Vec<T>,
}

impl<T: Scalar> Vector<T> {
    /// Create an empty vector of the given dimension.
    pub fn new(size: Index) -> Self {
        Vector {
            size,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Create an empty vector with pre-allocated capacity for `capacity` entries.
    pub fn with_capacity(size: Index, capacity: usize) -> Self {
        Vector {
            size,
            indices: Vec::with_capacity(capacity),
            values: Vec::with_capacity(capacity),
        }
    }

    /// Build a vector from `(index, value)` tuples (`GrB_Vector_build`).
    ///
    /// Duplicate indices are combined with `dup`, applied in input order.
    pub fn from_tuples<Op>(size: Index, tuples: &[(Index, T)], dup: Op) -> Result<Self>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        let mut sorted: Vec<(Index, T)> = tuples.to_vec();
        for &(i, _) in &sorted {
            if i >= size {
                return Err(Error::IndexOutOfBounds {
                    index: i,
                    bound: size,
                    context: "Vector::from_tuples",
                });
            }
        }
        sorted.sort_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(sorted.len());
        let mut values: Vec<T> = Vec::with_capacity(sorted.len());
        for (i, v) in sorted {
            if let Some(&last) = indices.last() {
                if last == i {
                    let slot = values.last_mut().expect("values parallel to indices"); // lint: allow(panic) — values grows in lockstep with indices
                    *slot = dup.apply(*slot, v);
                    continue;
                }
            }
            indices.push(i);
            values.push(v);
        }
        Ok(Vector {
            size,
            indices,
            values,
        })
    }

    /// Build a vector from pre-sorted, duplicate-free parts. Internal fast path used
    /// by the operation kernels.
    pub(crate) fn from_sorted_parts(size: Index, indices: Vec<Index>, values: Vec<T>) -> Self {
        debug_assert_eq!(indices.len(), values.len());
        debug_assert!(indices.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(indices.last().is_none_or(|&i| i < size));
        Vector {
            size,
            indices,
            values,
        }
    }

    /// Build a dense vector: every position `0..size` holds `value`.
    pub fn dense(size: Index, value: T) -> Self {
        Vector {
            size,
            indices: (0..size).collect(),
            values: vec![value; size],
        }
    }

    /// Build a dense vector whose value at position `i` is `f(i)`.
    pub fn dense_from_fn(size: Index, mut f: impl FnMut(Index) -> T) -> Self {
        Vector {
            size,
            indices: (0..size).collect(),
            values: (0..size).map(&mut f).collect(),
        }
    }

    /// The dimension of the vector (`GrB_Vector_size`).
    #[inline]
    pub fn size(&self) -> Index {
        self.size
    }

    /// Number of stored elements (`GrB_Vector_nvals`).
    #[inline]
    pub fn nvals(&self) -> usize {
        self.indices.len()
    }

    /// Whether the vector stores no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The sorted list of stored indices.
    #[inline]
    pub fn indices(&self) -> &[Index] {
        &self.indices
    }

    /// The stored values, parallel to [`Vector::indices`].
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Look up the element at `index` (`GrB_Vector_extractElement`).
    pub fn get(&self, index: Index) -> Option<T> {
        self.indices
            .binary_search(&index)
            .ok()
            .map(|pos| self.values[pos])
    }

    /// Whether an element is stored at `index`.
    pub fn contains(&self, index: Index) -> bool {
        self.indices.binary_search(&index).is_ok()
    }

    /// Store `value` at `index`, replacing any existing element
    /// (`GrB_Vector_setElement`).
    pub fn set(&mut self, index: Index, value: T) -> Result<()> {
        if index >= self.size {
            return Err(Error::IndexOutOfBounds {
                index,
                bound: self.size,
                context: "Vector::set",
            });
        }
        match self.indices.binary_search(&index) {
            Ok(pos) => self.values[pos] = value,
            Err(pos) => {
                self.indices.insert(pos, index);
                self.values.insert(pos, value);
            }
        }
        Ok(())
    }

    /// Accumulate `value` into the element at `index` with `op`, or store it if the
    /// position is empty. This is the `GrB_Vector_setElement` + accumulator idiom.
    pub fn accumulate<Op>(&mut self, index: Index, value: T, op: Op) -> Result<()>
    where
        Op: BinaryOp<T, T, Output = T>,
    {
        if index >= self.size {
            return Err(Error::IndexOutOfBounds {
                index,
                bound: self.size,
                context: "Vector::accumulate",
            });
        }
        match self.indices.binary_search(&index) {
            Ok(pos) => {
                self.values[pos] = op.apply(self.values[pos], value);
            }
            Err(pos) => {
                self.indices.insert(pos, index);
                self.values.insert(pos, value);
            }
        }
        Ok(())
    }

    /// Remove the element at `index` (`GrB_Vector_removeElement`). Returns the removed
    /// value, if any.
    pub fn remove(&mut self, index: Index) -> Option<T> {
        match self.indices.binary_search(&index) {
            Ok(pos) => {
                self.indices.remove(pos);
                Some(self.values.remove(pos))
            }
            Err(_) => None,
        }
    }

    /// Remove every stored element (`GrB_Vector_clear`). The dimension is unchanged.
    pub fn clear(&mut self) {
        self.indices.clear();
        self.values.clear();
    }

    /// Change the dimension of the vector (`GrB_Vector_resize`).
    ///
    /// Growing keeps all elements; shrinking drops elements at indices `>= new_size`,
    /// matching the C API semantics.
    pub fn resize(&mut self, new_size: Index) {
        if new_size < self.size {
            let keep = self.indices.partition_point(|&i| i < new_size);
            self.indices.truncate(keep);
            self.values.truncate(keep);
        }
        self.size = new_size;
    }

    /// Iterate over `(index, value)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (Index, T)> + '_ {
        self.indices
            .iter()
            .copied()
            .zip(self.values.iter().copied())
    }

    /// Extract all stored `(index, value)` tuples (`GrB_Vector_extractTuples`).
    pub fn extract_tuples(&self) -> Vec<(Index, T)> {
        self.iter().collect()
    }

    /// Render the vector as a dense `Vec`, filling missing positions with `fill`.
    /// Intended for tests and small examples, not for performance-critical code.
    pub fn to_dense(&self, fill: T) -> Vec<T> {
        let mut out = vec![fill; self.size];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }

    /// Keep only the elements for which `pred` returns `true`.
    pub fn retain(&mut self, mut pred: impl FnMut(Index, T) -> bool) {
        let mut write = 0;
        for read in 0..self.indices.len() {
            let (i, v) = (self.indices[read], self.values[read]);
            if pred(i, v) {
                self.indices[write] = i;
                self.values[write] = v;
                write += 1;
            }
        }
        self.indices.truncate(write);
        self.values.truncate(write);
    }

    /// Consume the vector and return its raw sorted parts `(size, indices, values)`.
    pub fn into_parts(self) -> (Index, Vec<Index>, Vec<T>) {
        (self.size, self.indices, self.values)
    }
}

impl<T: Scalar> FromIterator<(Index, T)> for Vector<T> {
    /// Collect `(index, value)` pairs into a vector sized to fit the largest index.
    /// Later duplicates overwrite earlier ones.
    fn from_iter<I: IntoIterator<Item = (Index, T)>>(iter: I) -> Self {
        let tuples: Vec<(Index, T)> = iter.into_iter().collect();
        let size = tuples.iter().map(|&(i, _)| i + 1).max().unwrap_or(0);
        let mut v = Vector::new(size);
        for (i, val) in tuples {
            v.set(i, val).expect("index within computed size"); // lint: allow(panic) — i comes from the vector sized on the previous line
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_traits::{Plus, Second};

    #[test]
    fn new_vector_is_empty() {
        let v: Vector<u64> = Vector::new(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 0);
        assert!(v.is_empty());
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn set_and_get() {
        let mut v = Vector::new(5);
        v.set(3, 7u64).unwrap();
        v.set(1, 2u64).unwrap();
        assert_eq!(v.get(3), Some(7));
        assert_eq!(v.get(1), Some(2));
        assert_eq!(v.get(0), None);
        assert_eq!(v.nvals(), 2);
        // overwrite
        v.set(3, 9).unwrap();
        assert_eq!(v.get(3), Some(9));
        assert_eq!(v.nvals(), 2);
    }

    #[test]
    fn set_out_of_bounds_errors() {
        let mut v = Vector::new(5);
        assert!(v.set(5, 1u64).is_err());
        assert!(v.accumulate(9, 1u64, Plus::new()).is_err());
    }

    #[test]
    fn from_tuples_sorts_and_combines_duplicates() {
        let v = Vector::from_tuples(10, &[(4, 1u64), (2, 5), (4, 3), (7, 2)], Plus::new()).unwrap();
        assert_eq!(v.nvals(), 3);
        assert_eq!(v.get(4), Some(4));
        assert_eq!(v.get(2), Some(5));
        assert_eq!(v.get(7), Some(2));
        assert_eq!(v.indices(), &[2, 4, 7]);
    }

    #[test]
    fn from_tuples_second_keeps_last_duplicate() {
        let v = Vector::from_tuples(4, &[(1, 10u64), (1, 20)], Second::new()).unwrap();
        assert_eq!(v.get(1), Some(20));
    }

    #[test]
    fn from_tuples_rejects_out_of_bounds() {
        assert!(Vector::from_tuples(3, &[(3, 1u64)], Plus::new()).is_err());
    }

    #[test]
    fn accumulate_adds_or_inserts() {
        let mut v = Vector::new(4);
        v.accumulate(2, 5u64, Plus::new()).unwrap();
        v.accumulate(2, 3u64, Plus::new()).unwrap();
        assert_eq!(v.get(2), Some(8));
    }

    #[test]
    fn remove_and_clear() {
        let mut v = Vector::from_tuples(4, &[(0, 1u64), (2, 2)], Plus::new()).unwrap();
        assert_eq!(v.remove(2), Some(2));
        assert_eq!(v.remove(2), None);
        assert_eq!(v.nvals(), 1);
        v.clear();
        assert_eq!(v.nvals(), 0);
        assert_eq!(v.size(), 4);
    }

    #[test]
    fn resize_grow_and_shrink() {
        let mut v = Vector::from_tuples(6, &[(1, 1u64), (4, 4), (5, 5)], Plus::new()).unwrap();
        v.resize(10);
        assert_eq!(v.size(), 10);
        assert_eq!(v.nvals(), 3);
        v.resize(5);
        assert_eq!(v.size(), 5);
        assert_eq!(v.nvals(), 2);
        assert_eq!(v.get(4), Some(4));
        assert_eq!(v.get(5), None);
    }

    #[test]
    fn dense_constructors() {
        let v = Vector::dense(3, 7u64);
        assert_eq!(v.to_dense(0), vec![7, 7, 7]);
        let w = Vector::dense_from_fn(4, |i| i as u64 * 2);
        assert_eq!(w.to_dense(0), vec![0, 2, 4, 6]);
    }

    #[test]
    fn iter_and_extract_tuples_in_order() {
        let v = Vector::from_tuples(10, &[(9, 9u64), (0, 0), (4, 4)], Plus::new()).unwrap();
        let tuples = v.extract_tuples();
        assert_eq!(tuples, vec![(0, 0), (4, 4), (9, 9)]);
    }

    #[test]
    fn retain_filters_entries() {
        let mut v =
            Vector::from_tuples(10, &[(1, 1u64), (2, 2), (3, 3), (4, 4)], Plus::new()).unwrap();
        v.retain(|i, val| i % 2 == 0 && val > 1);
        assert_eq!(v.extract_tuples(), vec![(2, 2), (4, 4)]);
    }

    #[test]
    fn from_iterator_sizes_to_max_index() {
        let v: Vector<u64> = vec![(3, 30u64), (1, 10)].into_iter().collect();
        assert_eq!(v.size(), 4);
        assert_eq!(v.get(3), Some(30));
    }

    #[test]
    fn to_dense_fills_missing() {
        let v = Vector::from_tuples(4, &[(1, 5u64)], Plus::new()).unwrap();
        assert_eq!(v.to_dense(9), vec![9, 5, 9, 9]);
    }

    #[test]
    fn into_parts_roundtrip() {
        let v = Vector::from_tuples(5, &[(2, 2u64), (4, 4)], Plus::new()).unwrap();
        let (size, idx, vals) = v.clone().into_parts();
        assert_eq!(size, 5);
        let rebuilt = Vector::from_sorted_parts(size, idx, vals);
        assert_eq!(rebuilt, v);
    }
}
