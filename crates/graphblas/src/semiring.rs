//! Semirings: an additive monoid paired with a multiplicative binary operator
//! (`GrB_Semiring`). Matrix products `C = A ⊕.⊗ B` are parameterised by these.

use std::marker::PhantomData;

use crate::monoid::Monoid;
use crate::ops_traits::{BinaryOp, First, LAnd, LOr, Max, Min, Pair, Plus, Second, Times};
use crate::scalar::{Ring, Scalar};

/// A semiring `⟨⊕, ⊗⟩` over input types `A`, `B` and output type `Output`.
pub trait Semiring<A, B>: Copy + Send + Sync {
    /// Element type produced by the multiplication and accumulated by the addition.
    type Output: Scalar;
    /// The additive monoid `⊕`.
    type Add: Monoid<Self::Output>;
    /// The multiplicative operator `⊗`.
    type Mul: BinaryOp<A, B, Output = Self::Output>;

    /// The additive monoid instance.
    fn add(&self) -> Self::Add;
    /// The multiplicative operator instance.
    fn mul(&self) -> Self::Mul;
}

/// A generic semiring built from any monoid + binary operator pair.
#[derive(Copy, Clone, Debug, Default)]
pub struct SemiringOps<Add, Mul> {
    add: Add,
    mul: Mul,
    _marker: PhantomData<()>,
}

impl<Add, Mul> SemiringOps<Add, Mul> {
    /// Build a semiring from an additive monoid and a multiplicative operator.
    pub fn new(add: Add, mul: Mul) -> Self {
        SemiringOps {
            add,
            mul,
            _marker: PhantomData,
        }
    }
}

impl<A, B, Add, Mul> Semiring<A, B> for SemiringOps<Add, Mul>
where
    A: Scalar,
    B: Scalar,
    Mul: BinaryOp<A, B>,
    Add: Monoid<Mul::Output>,
{
    type Output = Mul::Output;
    type Add = Add;
    type Mul = Mul;

    #[inline(always)]
    fn add(&self) -> Add {
        self.add
    }
    #[inline(always)]
    fn mul(&self) -> Mul {
        self.mul
    }
}

/// Stock semirings used by the case-study algorithms and the LAGraph layer.
pub mod stock {
    use super::*;

    /// The conventional arithmetic semiring `(+, ×)`.
    pub fn plus_times<T: Ring>() -> SemiringOps<Plus<T>, Times<T>> {
        SemiringOps::new(Plus::new(), Times::new())
    }

    /// `(+, first)` — sums the left operand's values over the structural overlap.
    pub fn plus_first<T: Ring>() -> SemiringOps<Plus<T>, First<T>> {
        SemiringOps::new(Plus::new(), First::new())
    }

    /// `(+, second)` — sums the right operand's values over the structural overlap.
    ///
    /// The paper's Q1 uses this shape for `likesScore ← RootPost ⊕.⊗ likesCount`:
    /// the `RootPost` pattern selects the comments of a post and the likes counts are
    /// summed.
    pub fn plus_second<T: Ring>() -> SemiringOps<Plus<T>, Second<T>> {
        SemiringOps::new(Plus::new(), Second::new())
    }

    /// `(+, pair)` — counts the number of overlapping entries (structural count).
    pub fn plus_pair<T: Ring, A: Scalar, B: Scalar>() -> SemiringOps<Plus<T>, Pair<T>> {
        SemiringOps::new(Plus::new(), Pair::new())
    }

    /// `(∨, ∧)` — boolean reachability semiring.
    pub fn lor_land<T: Ring>() -> SemiringOps<LOr<T>, LAnd<T>> {
        SemiringOps::new(LOr::new(), LAnd::new())
    }

    /// `(min, +)` — tropical semiring for shortest paths.
    pub fn min_plus<T: Ring>() -> SemiringOps<Min<T>, Plus<T>> {
        SemiringOps::new(Min::new(), Plus::new())
    }

    /// `(min, second)` — used by FastSV-style label propagation (minimum neighbour label).
    pub fn min_second<T: Ring>() -> SemiringOps<Min<T>, Second<T>> {
        SemiringOps::new(Min::new(), Second::new())
    }

    /// `(min, first)` — minimum of the left operand values over the overlap.
    pub fn min_first<T: Ring>() -> SemiringOps<Min<T>, First<T>> {
        SemiringOps::new(Min::new(), First::new())
    }

    /// `(max, second)` — maximum neighbour label propagation.
    pub fn max_second<T: Ring>() -> SemiringOps<Max<T>, Second<T>> {
        SemiringOps::new(Max::new(), Second::new())
    }
}

#[cfg(test)]
mod tests {
    use super::stock;
    use super::*;

    fn dot<A: Scalar, B: Scalar, S: Semiring<A, B>>(s: S, a: &[A], b: &[B]) -> S::Output {
        assert_eq!(a.len(), b.len());
        let add = s.add();
        let mul = s.mul();
        a.iter()
            .zip(b.iter())
            .fold(add.identity(), |acc, (&x, &y)| {
                add.apply(acc, mul.apply(x, y))
            })
    }

    #[test]
    fn plus_times_is_ordinary_dot_product() {
        let s = stock::plus_times::<u64>();
        assert_eq!(dot(s, &[1, 2, 3], &[4, 5, 6]), 4 + 10 + 18);
    }

    #[test]
    fn plus_second_sums_right_values() {
        let s = stock::plus_second::<u64>();
        assert_eq!(dot(s, &[9, 9, 9], &[4, 5, 6]), 15);
    }

    #[test]
    fn plus_first_sums_left_values() {
        let s = stock::plus_first::<u64>();
        assert_eq!(dot(s, &[4, 5, 6], &[9, 9, 9]), 15);
    }

    #[test]
    fn plus_pair_counts_overlap() {
        let s = stock::plus_pair::<u64, bool, bool>();
        assert_eq!(dot(s, &[true, true, false], &[false, true, true]), 3);
    }

    #[test]
    fn lor_land_is_reachability() {
        let s = stock::lor_land::<u8>();
        assert_eq!(dot(s, &[1, 0], &[0, 1]), 0);
        assert_eq!(dot(s, &[1, 1], &[0, 1]), 1);
    }

    #[test]
    fn min_plus_is_tropical() {
        let s = stock::min_plus::<u64>();
        assert_eq!(dot(s, &[3, 10], &[4, 1]), 7);
    }

    #[test]
    fn min_second_takes_min_of_right_values() {
        let s = stock::min_second::<u64>();
        assert_eq!(dot(s, &[0, 0, 0], &[9, 2, 5]), 2);
    }

    #[test]
    fn max_second_takes_max_of_right_values() {
        let s = stock::max_second::<u64>();
        assert_eq!(dot(s, &[0, 0, 0], &[9, 2, 5]), 9);
    }
}
