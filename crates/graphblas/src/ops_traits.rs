//! Operator traits and the stock unary / binary / index-unary operators.
//!
//! GraphBLAS algorithms are parameterised by operators (the `GrB_UnaryOp`,
//! `GrB_BinaryOp` and `GrB_IndexUnaryOp` objects of the C API). Here they are modelled
//! as zero-sized unit structs implementing small traits, so the kernels are
//! monomorphised and the operator application is inlined — no dynamic dispatch in the
//! hot loops.

use std::marker::PhantomData;

use crate::scalar::{Ring, Scalar};
use crate::types::Index;

/// A unary operator `z = f(x)` (`GrB_UnaryOp`).
pub trait UnaryOp<A>: Copy + Send + Sync {
    /// Result type of the operator.
    type Output: Scalar;
    /// Apply the operator to a single element.
    fn apply(&self, a: A) -> Self::Output;
}

/// A binary operator `z = f(x, y)` (`GrB_BinaryOp`).
pub trait BinaryOp<A, B>: Copy + Send + Sync {
    /// Result type of the operator.
    type Output: Scalar;
    /// Apply the operator to a pair of elements.
    fn apply(&self, a: A, b: B) -> Self::Output;
}

/// An index-aware predicate used by `select` (`GxB_select` / `GrB_IndexUnaryOp`).
///
/// `keep` receives the row index, column index (0 for vectors) and the stored value,
/// and decides whether the entry is retained in the output.
pub trait IndexUnaryOp<A>: Copy + Send + Sync {
    /// Whether the entry at `(row, col)` with value `value` is kept.
    fn keep(&self, row: Index, col: Index, value: A) -> bool;
}

// ---------------------------------------------------------------------------
// Stock unary operators
// ---------------------------------------------------------------------------

/// Identity operator `z = x`.
#[derive(Copy, Clone, Debug, Default)]
pub struct Identity<T>(PhantomData<fn() -> T>);

impl<T> Identity<T> {
    /// Create the operator.
    pub fn new() -> Self {
        Identity(PhantomData)
    }
}

impl<T: Scalar> UnaryOp<T> for Identity<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        a
    }
}

/// Additive inverse `z = 0 - x` (wrapping for unsigned integers).
#[derive(Copy, Clone, Debug, Default)]
pub struct AInv<T>(PhantomData<fn() -> T>);

impl<T> AInv<T> {
    /// Create the operator.
    pub fn new() -> Self {
        AInv(PhantomData)
    }
}

impl<T: Ring> UnaryOp<T> for AInv<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        T::ZERO.ring_sub(a)
    }
}

/// Multiply by a constant: `z = c * x`.
///
/// The paper's Q1 uses this as the "multiply by 10" `GrB_apply` step.
#[derive(Copy, Clone, Debug)]
pub struct TimesConstant<T: Ring> {
    constant: T,
}

impl<T: Ring> TimesConstant<T> {
    /// Create the operator with the given constant factor.
    pub fn new(constant: T) -> Self {
        TimesConstant { constant }
    }
}

impl<T: Ring> UnaryOp<T> for TimesConstant<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        a.ring_mul(self.constant)
    }
}

/// Add a constant: `z = c + x`.
#[derive(Copy, Clone, Debug)]
pub struct PlusConstant<T: Ring> {
    constant: T,
}

impl<T: Ring> PlusConstant<T> {
    /// Create the operator with the given constant addend.
    pub fn new(constant: T) -> Self {
        PlusConstant { constant }
    }
}

impl<T: Ring> UnaryOp<T> for PlusConstant<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        a.ring_add(self.constant)
    }
}

/// Replace every stored value with `ONE` (pattern / structure extraction).
#[derive(Copy, Clone, Debug, Default)]
pub struct One<T>(PhantomData<fn() -> T>);

impl<T> One<T> {
    /// Create the operator.
    pub fn new() -> Self {
        One(PhantomData)
    }
}

impl<A: Scalar, T: Ring> UnaryOp<A> for One<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, _a: A) -> T {
        T::ONE
    }
}

/// Square each value: `z = x * x` (used by the Q2 score `Σ cs_i²`).
#[derive(Copy, Clone, Debug, Default)]
pub struct Square<T>(PhantomData<fn() -> T>);

impl<T> Square<T> {
    /// Create the operator.
    pub fn new() -> Self {
        Square(PhantomData)
    }
}

impl<T: Ring> UnaryOp<T> for Square<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T) -> T {
        a.ring_mul(a)
    }
}

/// Apply an arbitrary function — escape hatch for one-off operators.
#[derive(Copy, Clone)]
pub struct UnaryFn<F, A, Z> {
    f: F,
    _marker: PhantomData<fn(A) -> Z>,
}

impl<F, A, Z> UnaryFn<F, A, Z>
where
    F: Fn(A) -> Z + Copy + Send + Sync,
{
    /// Wrap a plain function or closure as a [`UnaryOp`].
    pub fn new(f: F) -> Self {
        UnaryFn {
            f,
            _marker: PhantomData,
        }
    }
}

impl<F, A, Z> UnaryOp<A> for UnaryFn<F, A, Z>
where
    F: Fn(A) -> Z + Copy + Send + Sync,
    A: Scalar,
    Z: Scalar,
{
    type Output = Z;
    #[inline(always)]
    fn apply(&self, a: A) -> Z {
        (self.f)(a)
    }
}

// ---------------------------------------------------------------------------
// Stock binary operators
// ---------------------------------------------------------------------------

macro_rules! stock_binop {
    ($(#[$doc:meta])* $name:ident, $body:expr) => {
        $(#[$doc])*
        #[derive(Copy, Clone, Debug, Default)]
        pub struct $name<T>(PhantomData<fn() -> T>);

        impl<T> $name<T> {
            /// Create the operator.
            pub fn new() -> Self {
                $name(PhantomData)
            }
        }

        impl<T: Ring> BinaryOp<T, T> for $name<T> {
            type Output = T;
            #[inline(always)]
            fn apply(&self, a: T, b: T) -> T {
                let f: fn(T, T) -> T = $body;
                f(a, b)
            }
        }
    };
}

stock_binop!(
    /// Addition `z = x + y` (`GrB_PLUS`).
    Plus,
    |a, b| a.ring_add(b)
);
stock_binop!(
    /// Subtraction `z = x - y` (`GrB_MINUS`).
    Minus,
    |a, b| a.ring_sub(b)
);
stock_binop!(
    /// Multiplication `z = x * y` (`GrB_TIMES`).
    Times,
    |a, b| a.ring_mul(b)
);
stock_binop!(
    /// Minimum `z = min(x, y)` (`GrB_MIN`).
    Min,
    |a, b| a.ring_min(b)
);
stock_binop!(
    /// Maximum `z = max(x, y)` (`GrB_MAX`).
    Max,
    |a, b| a.ring_max(b)
);
/// First argument `z = x` (`GrB_FIRST`).
///
/// The second operand may have any type — handy when a pattern (boolean) matrix is
/// combined with an integer-valued operand, as in the paper's `plus_second` products.
#[derive(Copy, Clone, Debug, Default)]
pub struct First<T>(PhantomData<fn() -> T>);

impl<T> First<T> {
    /// Create the operator.
    pub fn new() -> Self {
        First(PhantomData)
    }
}

impl<T: Scalar, B: Scalar> BinaryOp<T, B> for First<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T, _b: B) -> T {
        a
    }
}

/// Second argument `z = y` (`GrB_SECOND`).
///
/// The first operand may have any type (see [`First`]).
#[derive(Copy, Clone, Debug, Default)]
pub struct Second<T>(PhantomData<fn() -> T>);

impl<T> Second<T> {
    /// Create the operator.
    pub fn new() -> Self {
        Second(PhantomData)
    }
}

impl<A: Scalar, T: Scalar> BinaryOp<A, T> for Second<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, _a: A, b: T) -> T {
        b
    }
}

/// Logical or `z = x ∨ y` (`GrB_LOR`), on any [`Ring`] via truthiness.
#[derive(Copy, Clone, Debug, Default)]
pub struct LOr<T>(PhantomData<fn() -> T>);

impl<T> LOr<T> {
    /// Create the operator.
    pub fn new() -> Self {
        LOr(PhantomData)
    }
}

impl<T: Ring> BinaryOp<T, T> for LOr<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T, b: T) -> T {
        if a != T::ZERO || b != T::ZERO {
            T::ONE
        } else {
            T::ZERO
        }
    }
}

/// Logical and `z = x ∧ y` (`GrB_LAND`).
#[derive(Copy, Clone, Debug, Default)]
pub struct LAnd<T>(PhantomData<fn() -> T>);

impl<T> LAnd<T> {
    /// Create the operator.
    pub fn new() -> Self {
        LAnd(PhantomData)
    }
}

impl<T: Ring> BinaryOp<T, T> for LAnd<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, a: T, b: T) -> T {
        if a != T::ZERO && b != T::ZERO {
            T::ONE
        } else {
            T::ZERO
        }
    }
}

/// The `PAIR` operator `z = 1` regardless of the inputs (`GxB_PAIR`).
///
/// `plus_pair` semirings count the number of overlapping entries — the standard trick
/// for structural counting (e.g. counting likes per post through `RootPost`).
#[derive(Copy, Clone, Debug, Default)]
pub struct Pair<T>(PhantomData<fn() -> T>);

impl<T> Pair<T> {
    /// Create the operator.
    pub fn new() -> Self {
        Pair(PhantomData)
    }
}

impl<A: Scalar, B: Scalar, T: Ring> BinaryOp<A, B> for Pair<T> {
    type Output = T;
    #[inline(always)]
    fn apply(&self, _a: A, _b: B) -> T {
        T::ONE
    }
}

/// Wrap a closure as a [`BinaryOp`] — escape hatch for one-off operators.
#[derive(Copy, Clone)]
pub struct BinaryFn<F, A, B, Z> {
    f: F,
    _marker: PhantomData<fn(A, B) -> Z>,
}

impl<F, A, B, Z> BinaryFn<F, A, B, Z>
where
    F: Fn(A, B) -> Z + Copy + Send + Sync,
{
    /// Wrap a plain function or closure as a [`BinaryOp`].
    pub fn new(f: F) -> Self {
        BinaryFn {
            f,
            _marker: PhantomData,
        }
    }
}

impl<F, A, B, Z> BinaryOp<A, B> for BinaryFn<F, A, B, Z>
where
    F: Fn(A, B) -> Z + Copy + Send + Sync,
    A: Scalar,
    B: Scalar,
    Z: Scalar,
{
    type Output = Z;
    #[inline(always)]
    fn apply(&self, a: A, b: B) -> Z {
        (self.f)(a, b)
    }
}

// ---------------------------------------------------------------------------
// Stock index-unary (select) operators
// ---------------------------------------------------------------------------

/// Keep entries whose value equals `k` (`GxB_VALUEEQ`).
///
/// The paper's Q2 incremental step 2 uses this with `k = 2` to keep the cells of the
/// `AC` matrix where *both* endpoints of a new friendship like the comment.
#[derive(Copy, Clone, Debug)]
pub struct ValueEq<T: Scalar> {
    /// Comparison constant.
    pub threshold: T,
}

impl<T: Scalar> ValueEq<T> {
    /// Create the operator with the given comparison constant.
    pub fn new(threshold: T) -> Self {
        ValueEq { threshold }
    }
}

impl<T: Scalar> IndexUnaryOp<T> for ValueEq<T> {
    #[inline(always)]
    fn keep(&self, _row: Index, _col: Index, value: T) -> bool {
        value == self.threshold
    }
}

/// Keep entries whose value is strictly greater than `k` (`GxB_VALUEGT`).
#[derive(Copy, Clone, Debug)]
pub struct ValueGt<T: Ring> {
    /// Comparison constant.
    pub threshold: T,
}

impl<T: Ring> ValueGt<T> {
    /// Create the operator with the given comparison constant.
    pub fn new(threshold: T) -> Self {
        ValueGt { threshold }
    }
}

impl<T: Ring> IndexUnaryOp<T> for ValueGt<T> {
    #[inline(always)]
    fn keep(&self, _row: Index, _col: Index, value: T) -> bool {
        value > self.threshold
    }
}

/// Keep entries whose value is non-zero (`GxB_NONZERO`).
#[derive(Copy, Clone, Debug, Default)]
pub struct NonZero<T>(PhantomData<fn() -> T>);

impl<T> NonZero<T> {
    /// Create the operator.
    pub fn new() -> Self {
        NonZero(PhantomData)
    }
}

impl<T: Ring> IndexUnaryOp<T> for NonZero<T> {
    #[inline(always)]
    fn keep(&self, _row: Index, _col: Index, value: T) -> bool {
        value != T::ZERO
    }
}

/// Keep strictly-lower-triangular entries (`GrB_TRIL` with offset -1).
#[derive(Copy, Clone, Debug, Default)]
pub struct StrictLowerTriangle;

impl<T: Scalar> IndexUnaryOp<T> for StrictLowerTriangle {
    #[inline(always)]
    fn keep(&self, row: Index, col: Index, _value: T) -> bool {
        col < row
    }
}

/// Keep diagonal entries (`GrB_DIAG`).
#[derive(Copy, Clone, Debug, Default)]
pub struct Diagonal;

impl<T: Scalar> IndexUnaryOp<T> for Diagonal {
    #[inline(always)]
    fn keep(&self, row: Index, col: Index, _value: T) -> bool {
        col == row
    }
}

/// Keep off-diagonal entries (`GrB_OFFDIAG`).
#[derive(Copy, Clone, Debug, Default)]
pub struct OffDiagonal;

impl<T: Scalar> IndexUnaryOp<T> for OffDiagonal {
    #[inline(always)]
    fn keep(&self, row: Index, col: Index, _value: T) -> bool {
        col != row
    }
}

/// Wrap a closure as an [`IndexUnaryOp`].
#[derive(Copy, Clone)]
pub struct SelectFn<F, A> {
    f: F,
    _marker: PhantomData<fn(A)>,
}

impl<F, A> SelectFn<F, A>
where
    F: Fn(Index, Index, A) -> bool + Copy + Send + Sync,
{
    /// Wrap a plain function or closure as an [`IndexUnaryOp`].
    pub fn new(f: F) -> Self {
        SelectFn {
            f,
            _marker: PhantomData,
        }
    }
}

impl<F, A> IndexUnaryOp<A> for SelectFn<F, A>
where
    F: Fn(Index, Index, A) -> bool + Copy + Send + Sync,
    A: Scalar,
{
    #[inline(always)]
    fn keep(&self, row: Index, col: Index, value: A) -> bool {
        (self.f)(row, col, value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unary_identity_and_ainv() {
        assert_eq!(Identity::<u64>::new().apply(7), 7);
        assert_eq!(AInv::<i32>::new().apply(5), -5);
        assert_eq!(AInv::<u8>::new().apply(1), u8::MAX);
    }

    #[test]
    fn unary_constants() {
        assert_eq!(TimesConstant::new(10u64).apply(4), 40);
        assert_eq!(PlusConstant::new(3u32).apply(4), 7);
        assert_eq!(<One<u64> as UnaryOp<bool>>::apply(&One::new(), true), 1);
        assert_eq!(Square::<i64>::new().apply(-4), 16);
    }

    #[test]
    fn unary_fn_wrapper() {
        let double = UnaryFn::new(|x: u32| x * 2);
        assert_eq!(double.apply(21), 42);
    }

    #[test]
    fn binary_arithmetic_ops() {
        assert_eq!(Plus::<u64>::new().apply(2, 3), 5);
        assert_eq!(Minus::<i32>::new().apply(2, 3), -1);
        assert_eq!(Times::<u64>::new().apply(2, 3), 6);
        assert_eq!(Min::<u64>::new().apply(2, 3), 2);
        assert_eq!(Max::<u64>::new().apply(2, 3), 3);
        assert_eq!(First::<u64>::new().apply(2, 3), 2);
        assert_eq!(Second::<u64>::new().apply(2, 3), 3);
    }

    #[test]
    fn binary_logical_ops() {
        assert_eq!(LOr::<u8>::new().apply(0, 0), 0);
        assert_eq!(LOr::<u8>::new().apply(0, 7), 1);
        assert_eq!(LAnd::<u8>::new().apply(1, 7), 1);
        assert_eq!(LAnd::<u8>::new().apply(1, 0), 0);
        assert_eq!(
            <Pair<u64> as BinaryOp<bool, bool>>::apply(&Pair::new(), true, false),
            1
        );
    }

    #[test]
    fn binary_fn_wrapper() {
        let op = BinaryFn::new(|a: u32, b: u32| a.max(b) - a.min(b));
        assert_eq!(op.apply(3, 10), 7);
    }

    #[test]
    fn select_ops() {
        assert!(ValueEq::new(2u64).keep(0, 0, 2));
        assert!(!ValueEq::new(2u64).keep(0, 0, 1));
        assert!(ValueGt::new(2u64).keep(0, 0, 3));
        assert!(!ValueGt::new(2u64).keep(0, 0, 2));
        assert!(NonZero::<u64>::new().keep(0, 0, 1));
        assert!(!NonZero::<u64>::new().keep(0, 0, 0));
        assert!(<StrictLowerTriangle as IndexUnaryOp<u8>>::keep(
            &StrictLowerTriangle,
            3,
            1,
            0
        ));
        assert!(!<StrictLowerTriangle as IndexUnaryOp<u8>>::keep(
            &StrictLowerTriangle,
            1,
            3,
            0
        ));
        assert!(<Diagonal as IndexUnaryOp<u8>>::keep(&Diagonal, 2, 2, 0));
        assert!(<OffDiagonal as IndexUnaryOp<u8>>::keep(
            &OffDiagonal,
            2,
            3,
            0
        ));
        let custom = SelectFn::new(|r: Index, c: Index, v: u64| r + c == v as Index);
        assert!(custom.keep(1, 2, 3));
        assert!(!custom.keep(1, 2, 4));
    }
}
