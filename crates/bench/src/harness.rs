//! Phase timing: the benchmark protocol of the TTC 2018 framework.

use std::time::Instant;

use datagen::Workload;
use ttc_social_media::model::Query;

use crate::registry::{build_solution, run_in_pool, ToolVariant};

/// Wall-clock timings of the two benchmark phases, in seconds.
#[derive(Copy, Clone, Debug, Default, PartialEq)]
pub struct PhaseTimings {
    /// Load the initial model and run the first evaluation.
    pub load_and_initial_secs: f64,
    /// Apply every changeset, re-evaluating the query after each.
    pub update_and_reevaluation_secs: f64,
}

/// Geometric mean of a slice of positive values (the aggregation the paper uses over
/// its 5 runs). Returns 0 for an empty slice.
pub fn geometric_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(f64::MIN_POSITIVE).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Measure one tool variant on one workload and query: runs the two phases `runs`
/// times and reports the geometric mean of each phase.
///
/// The variant's kernels execute inside a rayon pool sized by
/// [`ToolVariant::thread_count`], reproducing the single- vs 8-thread series of
/// Figure 5.
pub fn measure_workload(
    variant: ToolVariant,
    query: Query,
    workload: &Workload,
    runs: usize,
) -> PhaseTimings {
    let runs = runs.max(1);
    let mut load_times = Vec::with_capacity(runs);
    let mut update_times = Vec::with_capacity(runs);

    run_in_pool(variant.thread_count(), || {
        for _ in 0..runs {
            let mut solution = build_solution(variant, query);

            let start = Instant::now();
            let initial_result = solution.load_and_initial(&workload.initial);
            load_times.push(start.elapsed().as_secs_f64());
            // keep the result alive so the work cannot be optimised away
            assert!(initial_result.len() < usize::MAX);

            let start = Instant::now();
            for changeset in &workload.changesets {
                let result = solution.update_and_reevaluate(changeset);
                assert!(result.len() < usize::MAX);
            }
            update_times.push(start.elapsed().as_secs_f64());
        }
    });

    PhaseTimings {
        load_and_initial_secs: geometric_mean(&load_times),
        update_and_reevaluation_secs: geometric_mean(&update_times),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_basics() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[5.0]) - 5.0).abs() < 1e-12);
        // robust to zeros (clamped to the smallest positive float)
        assert!(geometric_mean(&[0.0, 1.0]) >= 0.0);
    }

    #[test]
    fn measure_produces_positive_timings_and_is_correct() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(303));
        let timings = measure_workload(ToolVariant::GraphBlasIncremental, Query::Q1, &workload, 2);
        assert!(timings.load_and_initial_secs > 0.0);
        assert!(timings.update_and_reevaluation_secs > 0.0);
    }

    #[test]
    fn parallel_variant_measurement_runs_inside_a_pool() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(305));
        let timings =
            measure_workload(ToolVariant::GraphBlasBatchParallel, Query::Q2, &workload, 1);
        assert!(timings.load_and_initial_secs > 0.0);
    }
}
