//! Shared Q2 affected-set SpGEMM replay: the workload behind the `ablation_spgemm`
//! bench and the kernel-level `bench_gate` entries.
//!
//! Replays a generated scale factor through the incremental engine and records, for
//! every changeset that contains new friendships, the operands of the paper's Fig. 4b
//! Steps 1–4 product `AC = Likes′ ⊕.⊗ NewFriendsIncidence` plus the mask of consumed
//! (`AC = 2`) cells. Recording lives in the bench *library* (criterion-free) so both
//! the criterion bench and the `bench_gate` binary measure the exact same steps.

use datagen::generate_scale_factor;
use graphblas::ops::{mxm, select_matrix};
use graphblas::ops_traits::ValueEq;
use graphblas::semiring::stock as semirings;
use graphblas::Matrix;
use ttc_social_media::{apply_changeset, SocialGraph};

/// One replayed detection step: the graph's `Likes` matrix and the friendship
/// incidence matrix of the changeset, plus the mask of consumed (`AC = 2`) cells.
pub struct SpgemmStep {
    /// The `Likes` matrix as of this changeset (learned row index frozen).
    pub likes: Matrix<u64>,
    /// The `NewFriendsIncidence` matrix of the changeset.
    pub incidence: Matrix<u64>,
    /// The `AC = 2` cells the detection consumes, used as a structural mask.
    pub consumed: Matrix<u64>,
}

/// Record the SpGEMM steps of one scale factor's changeset replay.
///
/// Each recorded `likes` snapshot gets its learned row index frozen, mirroring the
/// state the serving path sees after a load or compaction.
pub fn record_spgemm_steps(sf: u64) -> Vec<SpgemmStep> {
    let workload = generate_scale_factor(sf);
    let mut graph = SocialGraph::from_network(&workload.initial);
    let mut steps = Vec::new();
    for changeset in &workload.changesets {
        let delta = apply_changeset(&mut graph, changeset);
        if delta.new_friendships.is_empty() {
            continue;
        }
        let incidence = delta.new_friends_incidence(&graph);
        let ac = mxm(&graph.likes, &incidence, semirings::plus_times::<u64>())
            .expect("likes columns equal incidence rows"); // lint: allow(panic) — dimensions match by construction of the incidence matrix
        let consumed = select_matrix(&ac, ValueEq::new(2u64));
        let mut likes = graph.likes.clone();
        likes.freeze_index();
        steps.push(SpgemmStep {
            likes,
            incidence,
            consumed,
        });
    }
    steps
}
