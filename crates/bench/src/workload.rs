//! Named, seeded, serializable read-workload descriptions for the
//! `serve_throughput` benchmark.
//!
//! A [`ServeWorkload`] fully determines what the reader fleet does: how many
//! readers run, the weighted mix of read operations each one issues
//! ([`ReadMix`]), how requests are paced ([`ArrivalPattern`]), and the seed
//! that makes every reader's operation sequence reproducible. Workloads
//! round-trip through the same vendored-JSON layer the stream reports use, so
//! a benchmark row can embed the exact workload it measured and a later run
//! can re-execute it verbatim.

use serde_json::{json, Value};

/// One read operation against a published
/// [`QueryView`](ttc_social_media::QueryView).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ReadOp {
    /// Fetch the latest view and scan its top-k entries (the Q1/Q2 answer).
    TopK,
    /// Point lookup of one comment's score/rank standing.
    Standing,
    /// Point lookup of one user's connected-component id.
    Component,
}

/// Weighted mix of read operations. Weights are relative (e.g. `8/1/1` means
/// 80% top-k scans); a zero weight removes the operation from the mix.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ReadMix {
    /// Weight of [`ReadOp::TopK`].
    pub top_k: u32,
    /// Weight of [`ReadOp::Standing`].
    pub standing: u32,
    /// Weight of [`ReadOp::Component`].
    pub component: u32,
}

impl ReadMix {
    /// Pick one operation for draw `r` (any u64, e.g. a PRNG output).
    /// Falls back to [`ReadOp::TopK`] when every weight is zero.
    pub fn pick(&self, r: u64) -> ReadOp {
        let total = u64::from(self.top_k) + u64::from(self.standing) + u64::from(self.component);
        if total == 0 {
            return ReadOp::TopK;
        }
        let roll = r % total;
        if roll < u64::from(self.top_k) {
            ReadOp::TopK
        } else if roll < u64::from(self.top_k) + u64::from(self.standing) {
            ReadOp::Standing
        } else {
            ReadOp::Component
        }
    }
}

/// How a reader paces its requests.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ArrivalPattern {
    /// Closed loop: issue the next read immediately (saturation throughput).
    Closed,
    /// Fixed gap between consecutive reads, in microseconds.
    Uniform {
        /// Pause after every read.
        gap_micros: u64,
    },
    /// Closed-loop bursts of `size` reads separated by a fixed gap.
    Burst {
        /// Reads per burst.
        size: u32,
        /// Pause between bursts, in microseconds.
        gap_micros: u64,
    },
}

/// A complete, reproducible description of a read workload.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeWorkload {
    /// Stable identifier the benchmark rows are keyed on.
    pub name: String,
    /// Number of concurrent reader threads.
    pub readers: usize,
    /// Weighted operation mix each reader draws from.
    pub mix: ReadMix,
    /// Request pacing.
    pub arrival: ArrivalPattern,
    /// Seed of the per-reader operation sequences.
    pub seed: u64,
}

/// SplitMix64: the statelessly seedable generator used for operation draws.
fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ServeWorkload {
    /// The built-in presets, in the order `serve_throughput` runs them.
    pub fn presets() -> Vec<ServeWorkload> {
        vec![
            // read-mostly scans: the "serve the feed" shape — most requests
            // want the current top-k answer itself
            ServeWorkload {
                name: "scan-heavy".to_string(),
                readers: 4,
                mix: ReadMix {
                    top_k: 8,
                    standing: 1,
                    component: 1,
                },
                arrival: ArrivalPattern::Closed,
                seed: 7,
            },
            // point lookups: per-entity standings and component queries
            // dominate, exercising the HashMap side of the view
            ServeWorkload {
                name: "point-lookups".to_string(),
                readers: 4,
                mix: ReadMix {
                    top_k: 1,
                    standing: 5,
                    component: 4,
                },
                arrival: ArrivalPattern::Closed,
                seed: 11,
            },
            // bursty mixed traffic with idle gaps between bursts
            ServeWorkload {
                name: "bursty-mixed".to_string(),
                readers: 2,
                mix: ReadMix {
                    top_k: 2,
                    standing: 1,
                    component: 1,
                },
                arrival: ArrivalPattern::Burst {
                    size: 256,
                    gap_micros: 200,
                },
                seed: 13,
            },
        ]
    }

    /// Look up a preset by its stable name.
    pub fn by_name(name: &str) -> Option<ServeWorkload> {
        Self::presets().into_iter().find(|w| w.name == name)
    }

    /// The deterministic operation sequence of reader `reader`: `len` draws
    /// from the mix, seeded by `(workload seed, reader index)`. Two runs of
    /// the same workload issue byte-identical request sequences.
    pub fn plan(&self, reader: usize, len: usize) -> Vec<ReadOp> {
        let mut state = splitmix64(self.seed ^ (reader as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        (0..len)
            .map(|_| {
                state = splitmix64(state);
                self.mix.pick(state)
            })
            .collect()
    }

    /// Serialize to the vendored-JSON value embedded in benchmark rows.
    pub fn to_json(&self) -> Value {
        let arrival = match self.arrival {
            ArrivalPattern::Closed => json!({ "kind": "closed" }),
            ArrivalPattern::Uniform { gap_micros } => {
                json!({ "kind": "uniform", "gap_micros": gap_micros })
            }
            ArrivalPattern::Burst { size, gap_micros } => {
                json!({ "kind": "burst", "size": size, "gap_micros": gap_micros })
            }
        };
        json!({
            "name": &self.name,
            "readers": self.readers,
            "mix": json!({
                "top_k": self.mix.top_k,
                "standing": self.mix.standing,
                "component": self.mix.component,
            }),
            "arrival": arrival,
            "seed": self.seed,
        })
    }

    /// Parse a value produced by [`ServeWorkload::to_json`]. Returns `None`
    /// on any missing or ill-typed field — callers treat that as "not a
    /// workload description", not a panic.
    pub fn from_json(value: &Value) -> Option<ServeWorkload> {
        let name = value.get("name")?.as_str()?.to_string();
        let readers = value.get("readers")?.as_u64()? as usize;
        let seed = value.get("seed")?.as_u64()?;
        let mix_value = value.get("mix")?;
        let weight =
            |field: &str| -> Option<u32> { mix_value.get(field)?.as_u64().map(|w| w as u32) };
        let mix = ReadMix {
            top_k: weight("top_k")?,
            standing: weight("standing")?,
            component: weight("component")?,
        };
        let arrival_value = value.get("arrival")?;
        let arrival = match arrival_value.get("kind")?.as_str()? {
            "closed" => ArrivalPattern::Closed,
            "uniform" => ArrivalPattern::Uniform {
                gap_micros: arrival_value.get("gap_micros")?.as_u64()?,
            },
            "burst" => ArrivalPattern::Burst {
                size: arrival_value.get("size")?.as_u64()? as u32,
                gap_micros: arrival_value.get("gap_micros")?.as_u64()?,
            },
            _ => return None,
        };
        Some(ServeWorkload {
            name,
            readers,
            mix,
            arrival,
            seed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_round_trips_through_json() {
        for workload in ServeWorkload::presets() {
            let rendered = workload.to_json().to_string();
            let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
            let back = ServeWorkload::from_json(&parsed).expect("parses back");
            assert_eq!(back, workload, "lossy serialization of {}", workload.name);
        }
    }

    #[test]
    fn presets_are_resolvable_by_name_and_unique() {
        let presets = ServeWorkload::presets();
        for workload in &presets {
            assert_eq!(
                ServeWorkload::by_name(&workload.name).as_ref(),
                Some(workload)
            );
        }
        let mut names: Vec<&str> = presets.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), presets.len(), "duplicate preset names");
        assert!(ServeWorkload::by_name("no-such-workload").is_none());
    }

    #[test]
    fn plans_are_deterministic_and_differ_per_reader() {
        let workload = ServeWorkload::by_name("scan-heavy").expect("preset");
        let a = workload.plan(0, 256);
        let b = workload.plan(0, 256);
        assert_eq!(a, b, "same seed and reader must replay identically");
        let other = workload.plan(1, 256);
        assert_ne!(a, other, "distinct readers draw distinct sequences");
    }

    #[test]
    fn the_mix_honours_its_weights() {
        let workload = ServeWorkload::by_name("scan-heavy").expect("preset");
        let plan = workload.plan(0, 10_000);
        let scans = plan.iter().filter(|&&op| op == ReadOp::TopK).count();
        // weight 8 of 10: allow generous sampling slack
        assert!(
            (7_000..9_000).contains(&scans),
            "expected ~80% scans, got {scans}/10000"
        );
        // a zero-weight op never appears, and an all-zero mix degrades to TopK
        let none = ReadMix {
            top_k: 0,
            standing: 0,
            component: 0,
        };
        assert_eq!(none.pick(42), ReadOp::TopK);
        let only_standing = ReadMix {
            top_k: 0,
            standing: 3,
            component: 0,
        };
        for r in 0..100 {
            assert_eq!(only_standing.pick(r), ReadOp::Standing);
        }
    }

    #[test]
    fn malformed_workload_json_is_rejected_not_panicked_on() {
        for broken in [
            json!({}),
            json!({ "name": "x", "readers": 1, "seed": 0 }),
            json!({
                "name": "x", "readers": 1, "seed": 0,
                "mix": json!({ "top_k": 1, "standing": 0, "component": 0 }),
                "arrival": json!({ "kind": "lognormal" }),
            }),
        ] {
            assert!(ServeWorkload::from_json(&broken).is_none(), "{broken}");
        }
    }
}
