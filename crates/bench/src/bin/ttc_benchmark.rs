//! Emit the per-iteration benchmark protocol of the original TTC 2018 framework as a
//! semicolon-separated table.
//!
//! The `figure5` binary aggregates each phase into a single geometric-mean number (the
//! series the paper plots); this binary instead mirrors the raw output format of the
//! contest's benchmark framework — one row per tool, query, changeset iteration, run
//! and metric — which is what the framework's R scripts consumed.
//!
//! ```text
//! cargo run -p bench --release --bin ttc_benchmark -- [--sf 4] [--runs 3] \
//!     [--query q1|q2|both] [--tools figure5|all]
//! ```
//!
//! Output columns: `Tool;View;ChangeSet;RunIndex;MetricName;MetricValue`, with the
//! metrics `Time` (seconds for the phase) and `Elements` (result string of the query
//! evaluation at that point). `ChangeSet` 0 is the load-and-initial-evaluation phase;
//! changeset `i ≥ 1` is the i-th update-and-reevaluation iteration.

use std::time::Instant;

use bench::{build_solution, run_in_pool, ToolVariant, ALL_VARIANTS, FIGURE5_VARIANTS};
use datagen::generate_scale_factor;
use ttc_social_media::model::Query;

struct Args {
    scale_factor: u64,
    runs: usize,
    queries: Vec<Query>,
    tools: Vec<ToolVariant>,
}

/// Accepted flags with the help line printed for each; `print_help` and the
/// CLI test in `tests/cli_help.rs` both enumerate this surface.
const FLAGS: &[(&str, &str)] = &[
    ("--sf", "scale factor of the generated network (default 4)"),
    ("--runs", "repetitions per (tool, query) pair (default 3)"),
    ("--query", "q1, q2 or both (default both)"),
    (
        "--tools",
        "figure5 (paper's tools) or all (default figure5)",
    ),
    ("--help", "print this help"),
];

fn print_help() {
    println!("ttc_benchmark — raw per-iteration protocol of the TTC 2018 benchmark framework");
    println!();
    println!("usage: ttc_benchmark [flags]");
    for (flag, help) in FLAGS {
        println!("  {flag:<19} {help}");
    }
}

fn parse_args() -> Args {
    let mut scale_factor = 4;
    let mut runs = 3;
    let mut queries = vec![Query::Q1, Query::Q2];
    let mut tools: Vec<ToolVariant> = FIGURE5_VARIANTS.to_vec();

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                scale_factor = argv[i].parse().expect("--sf expects an integer");
            }
            "--runs" => {
                i += 1;
                runs = argv[i].parse().expect("--runs expects an integer");
            }
            "--query" => {
                i += 1;
                queries = match argv[i].to_lowercase().as_str() {
                    "q1" => vec![Query::Q1],
                    "q2" => vec![Query::Q2],
                    _ => vec![Query::Q1, Query::Q2],
                };
            }
            "--tools" => {
                i += 1;
                tools = match argv[i].to_lowercase().as_str() {
                    "all" => ALL_VARIANTS.to_vec(),
                    _ => FIGURE5_VARIANTS.to_vec(),
                };
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args {
        scale_factor,
        runs,
        queries,
        tools,
    }
}

fn main() {
    let args = parse_args();
    let workload = generate_scale_factor(args.scale_factor);
    eprintln!(
        "scale factor {}: {} nodes, {} edges, {} changesets, {} inserted elements",
        args.scale_factor,
        workload.initial.node_count(),
        workload.initial.edge_count(),
        workload.changesets.len(),
        workload.total_inserted_elements()
    );

    println!("Tool;View;ChangeSet;RunIndex;MetricName;MetricValue");
    for &query in &args.queries {
        for &variant in &args.tools {
            for run in 0..args.runs.max(1) {
                run_in_pool(variant.thread_count(), || {
                    let mut solution = build_solution(variant, query);

                    let start = Instant::now();
                    let initial = solution.load_and_initial(&workload.initial);
                    let load_secs = start.elapsed().as_secs_f64();
                    println!(
                        "{};{};0;{};Time;{:.9}",
                        variant.label(),
                        query,
                        run,
                        load_secs
                    );
                    println!(
                        "{};{};0;{};Elements;{}",
                        variant.label(),
                        query,
                        run,
                        initial
                    );

                    for (index, changeset) in workload.changesets.iter().enumerate() {
                        let start = Instant::now();
                        let result = solution.update_and_reevaluate(changeset);
                        let secs = start.elapsed().as_secs_f64();
                        println!(
                            "{};{};{};{};Time;{:.9}",
                            variant.label(),
                            query,
                            index + 1,
                            run,
                            secs
                        );
                        println!(
                            "{};{};{};{};Elements;{}",
                            variant.label(),
                            query,
                            index + 1,
                            run,
                            result
                        );
                    }
                });
            }
        }
    }
}
