//! The throughput regression gate behind `scripts/bench_gate.sh`.
//!
//! Runs a fixed, quick streaming configuration (sf1, seeded stream, smoke-sized
//! batch counts) for a curated set of (query, variant, shards) combinations —
//! including a crash-tolerant pipelined entry (`q1/pipelined/recover`) whose
//! measurement kills and restores a shard mid-run, a serving entry
//! (`q1/pipelined/serve`) that gates the write path with the epoch-published
//! read path armed and concurrent readers polling, and an elastic-resharding
//! entry (`q1/pipelined/reshard`) that doubles the shard count at the halfway
//! barrier — writes the measurements as
//! `BENCH_stream.json`-shaped JSON, and compares them against the checked-in
//! baseline: CI fails when any variant's sustained updates/sec drops more than
//! the tolerance (default 20%) below its baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bench_gate -- \
//!     [--baseline BENCH_stream.json] [--out target/BENCH_stream.json.new] \
//!     [--tolerance 0.20] [--write-baseline]
//! ```
//!
//! `--write-baseline` measures and overwrites the baseline file instead of
//! comparing (how the first baseline was checked in). The tolerance can also be
//! set via the `BENCH_GATE_TOLERANCE` environment variable (a fraction, e.g.
//! `0.35` on very noisy runners). p99 latency is recorded in the report for
//! trend inspection but not gated — per-batch tail latency is far noisier than
//! aggregate throughput.
//!
//! `--normalize` (or `BENCH_GATE_NORMALIZE=1`) rescales the baseline by the
//! median current/baseline ratio before comparing, cancelling uniform
//! machine-speed differences: the mode CI uses, because its runners are a
//! different machine class than wherever the checked-in baseline was measured.
//! Normalized runs only catch *relative* regressions (one variant dropping
//! while the others hold); run the absolute gate on hardware comparable to the
//! baseline to catch across-the-board slowdowns.

use std::process::ExitCode;
use std::time::Instant;

use bench::{record_spgemm_steps, run_in_pool};
use datagen::partition::partitioner_from_name;
use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_scale_factor, SocialNetwork};
use graphblas::ops::{mxm_masked, mxm_masked_reference_spa};
use graphblas::ops_traits::First;
use graphblas::semiring::stock as semirings;
use graphblas::{DeltaLayout, DynamicMatrix, Matrix, MatrixMask};
use serde_json::{json, to_string_pretty, Value};
use ttc_social_media::model::Query;
use ttc_social_media::pipeline::{IngestEngine, PipelineConfig, PipelinedEngine};
use ttc_social_media::recovery::RecoveryConfig;
use ttc_social_media::shard::{GraphBlasShardFactory, ShardBackend, ShardedSolution};
use ttc_social_media::solution::{GraphBlasIncremental, GraphBlasIncrementalCc, Solution};
use ttc_social_media::stream::{StreamDriver, StreamDriverConfig, StreamReport};

/// The gated measurement grid. Keys are stable identifiers baselines are joined
/// on; changing a key orphans its baseline entry, so add rather than rename.
const SCALE_FACTOR: u64 = 1;
const BATCHES: usize = 60;
const BATCH_SIZE: usize = 64;
const WARMUP: usize = 5;
const SEED: u64 = 42;
const DELETIONS: f64 = 0.1;
const THREADS: usize = 2;

struct GateEntry {
    key: &'static str,
    query: Query,
    variant: &'static str,
    shards: usize,
    /// Partition policy of sharded entries (`"mod"` or `"ring"`); ignored when
    /// `shards == 0`.
    partitioner: &'static str,
    /// Run through the staged asynchronous engine instead of the synchronous
    /// barrier driver (requires `shards > 0`).
    pipelined: bool,
    /// Run the pipelined engine crash-tolerant (checkpoints + changeset log)
    /// with one shard killed mid-run, so the gated number includes the
    /// checkpoint overhead and one restore+replay (requires `pipelined`).
    recover: bool,
    /// Arm the epoch-published read path and keep two closed-loop readers
    /// polling the view chain for the whole run, so the gated number includes
    /// the view-building and publication overhead under concurrent readers
    /// (requires `pipelined`).
    serve: bool,
    /// Reshard the pipeline from `shards` to twice that halfway through the
    /// run, so the gated number includes one full elastic-reshard barrier —
    /// drain, checkpoint split, fleet respawn (requires `pipelined`).
    reshard: bool,
}

const GRID: &[GateEntry] = &[
    GateEntry {
        key: "q1/incremental",
        query: Query::Q1,
        variant: "incremental",
        shards: 0,
        partitioner: "mod",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q2/incremental",
        query: Query::Q2,
        variant: "incremental",
        shards: 0,
        partitioner: "mod",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q2/incremental-cc",
        query: Query::Q2,
        variant: "incremental-cc",
        shards: 0,
        partitioner: "mod",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q1/incremental/shards4",
        query: Query::Q1,
        variant: "incremental",
        shards: 4,
        partitioner: "mod",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q2/incremental/shards4",
        query: Query::Q2,
        variant: "incremental",
        shards: 4,
        partitioner: "mod",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q1/incremental/shards4/ring",
        query: Query::Q1,
        variant: "incremental",
        shards: 4,
        partitioner: "ring",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q2/incremental/shards4/ring",
        query: Query::Q2,
        variant: "incremental",
        shards: 4,
        partitioner: "ring",
        pipelined: false,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q1/incremental/shards2/pipelined",
        query: Query::Q1,
        variant: "incremental",
        shards: 2,
        partitioner: "mod",
        pipelined: true,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q2/incremental/shards2/pipelined",
        query: Query::Q2,
        variant: "incremental",
        shards: 2,
        partitioner: "mod",
        pipelined: true,
        recover: false,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q1/pipelined/recover",
        query: Query::Q1,
        variant: "incremental",
        shards: 2,
        partitioner: "mod",
        pipelined: true,
        recover: true,
        serve: false,
        reshard: false,
    },
    GateEntry {
        key: "q1/pipelined/serve",
        query: Query::Q1,
        variant: "incremental",
        shards: 2,
        partitioner: "mod",
        pipelined: true,
        recover: false,
        serve: true,
        reshard: false,
    },
    GateEntry {
        key: "q1/pipelined/reshard",
        query: Query::Q1,
        variant: "incremental",
        shards: 2,
        partitioner: "mod",
        pipelined: true,
        recover: false,
        serve: false,
        reshard: true,
    },
];

struct Args {
    baseline: String,
    out: String,
    tolerance: f64,
    normalize: bool,
    write_baseline: bool,
}

/// A tolerance must be a fraction in `[0, 1)`: `1.0` or more would accept any
/// slowdown (or, negated, invert the comparison) and NaN passes no comparison
/// at all — each silently disabling the gate.
fn parse_tolerance(raw: &str, origin: &str) -> f64 {
    match raw.parse::<f64>() {
        Ok(t) if (0.0..1.0).contains(&t) => t,
        _ => {
            // silently falling back to the default would leave an operator
            // believing their (typoed) tolerance is in effect
            eprintln!("error: {origin}={raw} is not a fraction in [0, 1) (e.g. 0.35)");
            std::process::exit(2);
        }
    }
}

fn parse_args() -> Args {
    let tolerance = match std::env::var("BENCH_GATE_TOLERANCE") {
        Ok(raw) => parse_tolerance(&raw, "BENCH_GATE_TOLERANCE"),
        Err(_) => 0.20,
    };
    let mut args = Args {
        baseline: "BENCH_stream.json".to_string(),
        // the scratch report lives under target/ so an interrupted or failed
        // gate never leaves an untracked stray in the repo root
        out: "target/BENCH_stream.json.new".to_string(),
        tolerance,
        normalize: std::env::var_os("BENCH_GATE_NORMALIZE").is_some(),
        write_baseline: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: &mut usize, flag: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("error: {flag} expects a value");
            std::process::exit(2);
        })
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--baseline" => args.baseline = value(&argv, &mut i, "--baseline"),
            "--out" => args.out = value(&argv, &mut i, "--out"),
            "--tolerance" => {
                args.tolerance =
                    parse_tolerance(&value(&argv, &mut i, "--tolerance"), "--tolerance");
            }
            "--normalize" => {
                args.normalize = true;
            }
            "--write-baseline" => {
                args.write_baseline = true;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// Best-of-N throughput measurement: scheduler noise only ever *slows* a run,
/// so the fastest of a few repetitions is the most reproducible statistic to
/// gate on (a single sample regularly swings ±25% on shared runners).
const MEASUREMENT_RUNS: usize = 3;

fn measure_best(network: &SocialNetwork, entry: &GateEntry) -> StreamReport {
    (0..MEASUREMENT_RUNS)
        .map(|_| measure_one(network, entry))
        .max_by(|a, b| {
            a.updates_per_sec
                .partial_cmp(&b.updates_per_sec)
                .expect("throughput is finite")
        })
        .expect("MEASUREMENT_RUNS > 0")
}

fn measure_one(network: &SocialNetwork, entry: &GateEntry) -> StreamReport {
    let stream = UpdateStream::new(
        network,
        StreamConfig {
            seed: SEED,
            batch_size: BATCH_SIZE,
            deletion_weight: DELETIONS,
            shards: entry.shards,
            ..StreamConfig::default()
        },
    );
    let backend = match entry.variant {
        "incremental-cc" => ShardBackend::IncrementalCc,
        _ => ShardBackend::Incremental,
    };
    if entry.pipelined {
        assert!(entry.shards > 0, "pipelined gate entries need shards");
        return run_in_pool(THREADS, || {
            // recover entries measure the crash-tolerant configuration under
            // fire: checkpointing on, shard 1 killed halfway, one deterministic
            // restore+replay included in the gated number
            let (kill_shards, recovery) = if entry.recover {
                let kill_seq = ((WARMUP + BATCHES) / 2) as u64;
                (vec![(1, kill_seq)], Some(RecoveryConfig::default()))
            } else {
                (Vec::new(), None)
            };
            // reshard entries double the shard count at the halfway barrier,
            // so the gated number pays one drain + split + respawn cycle
            let reshards = if entry.reshard {
                vec![(((WARMUP + BATCHES) / 2) as u64, entry.shards * 2)]
            } else {
                Vec::new()
            };
            let mut engine = PipelinedEngine::graphblas(
                entry.query,
                backend,
                entry.shards,
                PipelineConfig {
                    warmup_batches: WARMUP,
                    kill_shards,
                    recovery,
                    reshards,
                    ..PipelineConfig::default()
                },
            );
            // serve entries gate the write path *with the read path armed*:
            // every batch additionally builds and publishes a QueryView while
            // two closed-loop readers chase the chain for the whole run
            let serving = entry.serve.then(|| {
                let reader = engine.serve_views();
                let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
                let readers: Vec<_> = (0..2)
                    .map(|_| {
                        let mut own = reader.clone();
                        let stop = std::sync::Arc::clone(&stop);
                        std::thread::spawn(move || {
                            let mut polls = 0u64;
                            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                                let view = own.latest();
                                assert!(view.verify_seal(), "torn view under the gate");
                                polls += 1;
                            }
                            polls
                        })
                    })
                    .collect();
                (stop, readers)
            });
            let mut stream = stream;
            let report = engine
                .run(network, &mut stream, BATCHES)
                .expect("gate measurement must not truncate")
                .stream;
            if let Some((stop, readers)) = serving {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                for reader in readers {
                    reader.join().expect("gate reader panicked");
                }
            }
            report
        });
    }
    let driver = StreamDriver::new(StreamDriverConfig {
        warmup_batches: WARMUP,
        coalesce: true,
    });
    run_in_pool(THREADS, || {
        let mut solution: Box<dyn Solution> = if entry.shards > 0 {
            let partitioner = partitioner_from_name(entry.partitioner, entry.shards, SEED, false)
                .expect("grid partitioner names are valid");
            Box::new(ShardedSolution::with_factory_and_partitioner(
                Box::new(GraphBlasShardFactory::new(entry.query, backend)),
                partitioner,
            ))
        } else {
            match entry.variant {
                "incremental-cc" => Box::new(GraphBlasIncrementalCc::new()),
                _ => Box::new(GraphBlasIncremental::new(entry.query, false)),
            }
        };
        driver.run(solution.as_mut(), network, stream, BATCHES)
    })
}

/// Best-of-N wall-clock throughput of a closure processing `work_items` items:
/// the kernel-level analogue of [`measure_best`].
fn kernel_throughput<F: FnMut() -> usize>(work_items: usize, mut run: F) -> f64 {
    (0..MEASUREMENT_RUNS)
        .map(|_| {
            let start = Instant::now();
            let checksum = run();
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            assert!(checksum > 0, "kernel measurement did no work");
            work_items as f64 / elapsed
        })
        .fold(0.0f64, f64::max)
}

/// Kernel-level gate entries: the SpGEMM hot path (masked push-down over the
/// recorded Q2 replay, stamped SoA vs. the frozen AoS reference accumulators)
/// and `DynamicMatrix` update ingestion (gapped vs. sorted delta rows). These
/// gate the kernels the stream numbers are built from, so an accumulator- or
/// layout-level regression is named directly instead of surfacing as a diffuse
/// stream slowdown.
fn measure_kernel_entries() -> Vec<Value> {
    let mut entries = Vec::new();

    eprintln!("# measuring kernel/spgemm entries (best of {MEASUREMENT_RUNS})");
    let steps = record_spgemm_steps(SCALE_FACTOR);
    let spgemm = |reference: bool| {
        kernel_throughput(steps.len(), || {
            let mut total = 0usize;
            for step in &steps {
                let mask = MatrixMask::structural(&step.consumed);
                let product = if reference {
                    mxm_masked_reference_spa(
                        &mask,
                        &step.likes,
                        &step.incidence,
                        semirings::plus_times::<u64>(),
                    )
                } else {
                    mxm_masked(
                        &mask,
                        &step.likes,
                        &step.incidence,
                        semirings::plus_times::<u64>(),
                    )
                };
                total += product.expect("recorded step dimensions conform").nvals();
            }
            total.max(1)
        })
    };
    entries.push(json!({
        "key": "kernel/spgemm/masked_pushdown",
        "updates_per_sec": spgemm(false),
    }));
    entries.push(json!({
        "key": "kernel/spgemm/masked_pushdown_reference_spa",
        "updates_per_sec": spgemm(true),
    }));

    eprintln!("# measuring kernel/dynamic_matrix entries (best of {MEASUREMENT_RUNS})");
    let n = 2_000usize;
    let mut state = 3u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize % n
    };
    let base_tuples: Vec<(usize, usize, u64)> = (0..4 * n).map(|_| (next(), next(), 1)).collect();
    let base = Matrix::from_tuples(n, n, &base_tuples, First::new()).expect("indices in range");
    let updates: Vec<(usize, usize)> = (0..2_000).map(|_| (next(), next())).collect();
    for (name, layout) in [
        ("kernel/dynamic_matrix/gapped", DeltaLayout::Gapped),
        ("kernel/dynamic_matrix/sorted", DeltaLayout::Sorted),
    ] {
        let throughput = kernel_throughput(updates.len(), || {
            let mut m = DynamicMatrix::with_layout(base.clone(), layout);
            for &(r, c) in &updates {
                m.set(r, c, 1).expect("update indices in range");
                m.maybe_compact();
            }
            m.nvals()
        });
        entries.push(json!({
            "key": name,
            "updates_per_sec": throughput,
        }));
    }
    entries
}

fn measure_report() -> Value {
    let network = generate_scale_factor(SCALE_FACTOR).initial;
    let mut entries: Vec<Value> = GRID
        .iter()
        .map(|entry| {
            eprintln!("# measuring {} (best of {MEASUREMENT_RUNS})", entry.key);
            let report = measure_best(&network, entry);
            json!({
                "key": entry.key,
                "query": format!("{:?}", entry.query),
                "variant": entry.variant,
                "shards": entry.shards,
                "partitioner": entry.partitioner,
                "pipelined": entry.pipelined,
                "recover": entry.recover,
                "serve": entry.serve,
                "reshard": entry.reshard,
                "updates_per_sec": report.updates_per_sec,
                "p99_latency_secs": report.p99_latency_secs,
                "final_result": &report.final_result,
            })
        })
        .collect();
    entries.extend(measure_kernel_entries());
    json!({
        "schema_version": 1u64,
        "config": json!({
            "scale_factor": SCALE_FACTOR,
            "batches": BATCHES,
            "batch_size": BATCH_SIZE,
            "warmup": WARMUP,
            "seed": SEED,
            "deletion_weight": DELETIONS,
            "threads": THREADS,
        }),
        "entries": Value::Array(entries),
    })
}

/// Join `current` against `baseline` by entry key and return `(key, baseline
/// updates/sec, current updates/sec)` triples, plus hard failures for entries
/// that are missing or carry no usable throughput number.
fn joined_throughputs(
    baseline: &Value,
    current: &Value,
    failures: &mut Vec<String>,
) -> Vec<(String, f64, f64)> {
    let empty: &[Value] = &[];
    let baseline_entries = baseline
        .get("entries")
        .and_then(Value::as_array)
        .unwrap_or(empty);
    let current_entries = current
        .get("entries")
        .and_then(Value::as_array)
        .unwrap_or(empty);
    if baseline_entries.is_empty() {
        failures.push("baseline has no entries (or no `entries` array)".to_string());
    }
    let mut pairs = Vec::new();
    for base in baseline_entries {
        let Some(key) = base.get("key").and_then(Value::as_str) else {
            failures.push("baseline entry without a `key` field".to_string());
            continue;
        };
        let Some(now) = current_entries
            .iter()
            .find(|e| e.get("key").and_then(Value::as_str) == Some(key))
        else {
            failures.push(format!(
                "variant {key} is in the baseline but missing from the fresh run — the \
                 measurement grid no longer produces it; if that is intentional, refresh \
                 the baseline with --write-baseline"
            ));
            continue;
        };
        let was = base.get("updates_per_sec").and_then(Value::as_f64);
        let is = now.get("updates_per_sec").and_then(Value::as_f64);
        match (was, is) {
            (Some(was), Some(is)) if was > 0.0 && is.is_finite() => {
                pairs.push((key.to_string(), was, is));
            }
            _ => failures.push(format!(
                "entry {key} has no usable updates_per_sec (baseline {was:?}, current {is:?}) \
                 — refresh the baseline with --write-baseline"
            )),
        }
    }
    // The reverse direction is informational, not fatal: a freshly added grid
    // variant has no baseline yet, so it cannot regress — but silently skipping
    // it would let it stay ungated forever. Name it and point at the fix.
    for now in current_entries {
        let Some(key) = now.get("key").and_then(Value::as_str) else {
            continue;
        };
        let known = baseline_entries
            .iter()
            .any(|base| base.get("key").and_then(Value::as_str) == Some(key));
        if !known {
            eprintln!(
                "# note: variant {key} is measured but has no baseline entry (not gated); \
                 run with --write-baseline to start gating it"
            );
        }
    }
    pairs
}

/// Compare current throughput against the baseline and return the regression
/// descriptions (empty = gate passes).
///
/// With `normalize`, the baseline is first rescaled by the **median** ratio
/// current/baseline across all entries. A uniform machine-speed difference
/// (e.g. a checked-in baseline from another host class) cancels out, and the
/// gate flags only *relative* regressions — one variant dropping while the
/// rest hold. The cost: a regression slowing every variant equally is
/// invisible in normalized mode, which is why local runs gate on absolute
/// numbers.
fn regressions(baseline: &Value, current: &Value, tolerance: f64, normalize: bool) -> Vec<String> {
    let mut failures = Vec::new();
    let pairs = joined_throughputs(baseline, current, &mut failures);
    let scale = if normalize && !pairs.is_empty() {
        let mut ratios: Vec<f64> = pairs.iter().map(|&(_, was, is)| is / was).collect();
        ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        let median = ratios[ratios.len() / 2];
        eprintln!("# normalize: median current/baseline ratio {median:.3} cancels machine speed");
        median
    } else {
        1.0
    };
    for (key, was, is) in pairs {
        let was = was * scale;
        if is < was * (1.0 - tolerance) {
            failures.push(format!(
                "{key}: {is:.0} updates/sec is {:.1}% below the baseline {was:.0} \
                 (tolerance {:.0}%{})",
                (1.0 - is / was) * 100.0,
                tolerance * 100.0,
                if normalize { ", normalized" } else { "" },
            ));
        } else {
            eprintln!(
                "# ok {key}: {is:.0} updates/sec vs baseline {was:.0} ({:+.1}%)",
                (is / was - 1.0) * 100.0
            );
        }
    }
    failures
}

fn main() -> ExitCode {
    let args = parse_args();
    let current = measure_report();
    let rendered = to_string_pretty(&current).expect("rendering never fails");

    if args.write_baseline {
        std::fs::write(&args.baseline, rendered + "\n").expect("failed to write baseline");
        eprintln!("# baseline written to {}", args.baseline);
        return ExitCode::SUCCESS;
    }

    if let Some(parent) = std::path::Path::new(&args.out).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).expect("failed to create report directory");
        }
    }
    std::fs::write(&args.out, rendered + "\n").expect("failed to write report");
    eprintln!("# current report written to {}", args.out);

    let baseline_text = match std::fs::read_to_string(&args.baseline) {
        Ok(text) => text,
        Err(err) => {
            eprintln!(
                "error: no baseline at {} ({err}); run with --write-baseline to create one",
                args.baseline
            );
            return ExitCode::FAILURE;
        }
    };
    let baseline = match serde_json::from_str(&baseline_text) {
        Ok(value) => value,
        Err(err) => {
            eprintln!("error: baseline {} is not valid JSON: {err}", args.baseline);
            return ExitCode::FAILURE;
        }
    };

    let failures = regressions(&baseline, &current, args.tolerance, args.normalize);
    if failures.is_empty() {
        eprintln!(
            "# bench gate passed (tolerance {:.0}%)",
            args.tolerance * 100.0
        );
        ExitCode::SUCCESS
    } else {
        for failure in &failures {
            eprintln!("REGRESSION: {failure}");
        }
        ExitCode::FAILURE
    }
}
