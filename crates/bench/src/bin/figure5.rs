//! Regenerate Figure 5 of the paper: execution time of the two benchmark phases for
//! every tool variant, as a function of the graph scale factor.
//!
//! ```text
//! cargo run -p bench --release --bin figure5 -- [--query q1|q2|both] \
//!     [--phase initial|update|both] [--max-sf 64] [--runs 3] [--json out.json]
//! ```
//!
//! The output is one table per (query, phase) combination with a row per scale factor
//! and a column per tool — the same series the paper plots on log–log axes. Absolute
//! times differ from the paper (different hardware, different GraphBLAS
//! implementation); the qualitative shape is what the reproduction targets (see
//! EXPERIMENTS.md).

use std::collections::BTreeMap;

use bench::{measure_workload, ToolVariant, FIGURE5_VARIANTS};
use datagen::generate_scale_factor;
use ttc_social_media::model::Query;

struct Args {
    queries: Vec<Query>,
    phases: Vec<String>,
    max_scale_factor: u64,
    runs: usize,
    json_path: Option<String>,
}

/// Accepted flags with the help line printed for each; `print_help` and the
/// CLI test in `tests/cli_help.rs` both enumerate this surface.
const FLAGS: &[(&str, &str)] = &[
    ("--query", "q1, q2 or both (default both)"),
    ("--phase", "initial, update or both (default both)"),
    ("--max-sf", "largest scale factor of the sweep (default 64)"),
    (
        "--runs",
        "repetitions per measurement, geometric mean (default 3)",
    ),
    ("--json", "also write the measurements to this JSON file"),
    ("--help", "print this help"),
];

fn print_help() {
    println!("figure5 — phase execution times per tool variant and scale factor (paper Fig. 5)");
    println!();
    println!("usage: figure5 [flags]");
    for (flag, help) in FLAGS {
        println!("  {flag:<19} {help}");
    }
}

fn parse_args() -> Args {
    let mut queries = vec![Query::Q1, Query::Q2];
    let mut phases = vec!["initial".to_string(), "update".to_string()];
    let mut max_scale_factor = 64;
    let mut runs = 3;
    let mut json_path = None;

    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--query" => {
                i += 1;
                queries = match argv[i].to_lowercase().as_str() {
                    "q1" => vec![Query::Q1],
                    "q2" => vec![Query::Q2],
                    _ => vec![Query::Q1, Query::Q2],
                };
            }
            "--phase" => {
                i += 1;
                phases = match argv[i].to_lowercase().as_str() {
                    "initial" => vec!["initial".to_string()],
                    "update" => vec!["update".to_string()],
                    _ => vec!["initial".to_string(), "update".to_string()],
                };
            }
            "--max-sf" => {
                i += 1;
                max_scale_factor = argv[i].parse().expect("--max-sf expects an integer");
            }
            "--runs" => {
                i += 1;
                runs = argv[i].parse().expect("--runs expects an integer");
            }
            "--json" => {
                i += 1;
                json_path = Some(argv[i].clone());
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Args {
        queries,
        phases,
        max_scale_factor,
        runs,
        json_path,
    }
}

fn scale_factors(max: u64) -> Vec<u64> {
    let mut sf = 1;
    let mut out = Vec::new();
    while sf <= max {
        out.push(sf);
        sf *= 2;
    }
    out
}

fn main() {
    let args = parse_args();
    let factors = scale_factors(args.max_scale_factor);

    println!(
        "Figure 5 reproduction — execution times [s], geometric mean of {} run(s)",
        args.runs
    );
    println!(
        "tools: {}",
        FIGURE5_VARIANTS
            .iter()
            .map(|v| v.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!();

    // measurements[(query, phase, variant, sf)] = seconds
    let mut measurements: BTreeMap<(String, String, String, u64), f64> = BTreeMap::new();

    for &sf in &factors {
        eprintln!("generating workload for scale factor {sf}...");
        let workload = generate_scale_factor(sf);
        eprintln!(
            "  nodes = {}, edges = {}, inserts = {}",
            workload.initial.node_count(),
            workload.initial.edge_count(),
            workload.total_inserted_elements()
        );
        for &query in &args.queries {
            for &variant in FIGURE5_VARIANTS {
                // The batch NMF / GraphBLAS variants become very slow on large graphs
                // in the update phase (that is the point of the figure); cap the work
                // by skipping the largest factors for the batch baselines only if the
                // user asked for a huge sweep.
                eprintln!("  measuring {} / {query} ...", variant.label());
                let timings = measure_workload(variant, query, &workload, args.runs);
                measurements.insert(
                    (
                        query.to_string(),
                        "initial".into(),
                        variant.label().into(),
                        sf,
                    ),
                    timings.load_and_initial_secs,
                );
                measurements.insert(
                    (
                        query.to_string(),
                        "update".into(),
                        variant.label().into(),
                        sf,
                    ),
                    timings.update_and_reevaluation_secs,
                );
            }
        }
    }

    for &query in &args.queries {
        for phase in &args.phases {
            let phase_title = match phase.as_str() {
                "initial" => "Load and initial evaluation",
                _ => "Update and reevaluation",
            };
            println!("## {query} — {phase_title}");
            println!();
            print!("{:>6}", "sf");
            for variant in FIGURE5_VARIANTS {
                print!(" | {:>36}", variant.label());
            }
            println!();
            for &sf in &factors {
                print!("{sf:>6}");
                for variant in FIGURE5_VARIANTS {
                    let key = (
                        query.to_string(),
                        phase.clone(),
                        variant.label().to_string(),
                        sf,
                    );
                    let secs = measurements.get(&key).copied().unwrap_or(f64::NAN);
                    print!(" | {secs:>36.6}");
                }
                println!();
            }
            println!();
        }
    }

    if let Some(path) = args.json_path {
        let rows: Vec<serde_json::Value> = measurements
            .iter()
            .map(|((query, phase, tool, sf), secs)| {
                serde_json::json!({
                    "query": query,
                    "phase": phase,
                    "tool": tool,
                    "scale_factor": sf,
                    "seconds": secs,
                })
            })
            .collect();
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&rows).expect("serialisable"),
        )
        .expect("write json output");
        eprintln!("wrote {path}");
    }

    let _ = ToolVariant::GraphBlasIncrementalCc; // documented extra variant (see ablation bench)
}
