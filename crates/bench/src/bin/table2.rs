//! Regenerate Table II of the paper: the number of nodes, edges and inserted elements
//! of the benchmark graph at every scale factor, for the synthetic workloads this
//! repository generates, next to the values the paper reports.
//!
//! ```text
//! cargo run -p bench --release --bin table2 -- [--max-sf 1024]
//! ```

use datagen::{generate_scale_factor, PAPER_TABLE2};

fn main() {
    let max_sf: u64 = {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut max = 64;
        let mut i = 0;
        while i < argv.len() {
            if argv[i] == "--max-sf" {
                i += 1;
                max = argv[i].parse().expect("--max-sf expects an integer");
            }
            i += 1;
        }
        max
    };

    println!("Table II reproduction — graph sizes w.r.t. the scale factor");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "sf", "#nodes", "(paper)", "#edges", "(paper)", "#inserts", "(paper)"
    );
    println!("{}", "-".repeat(88));

    let mut sf = 1u64;
    while sf <= max_sf {
        let workload = generate_scale_factor(sf);
        let nodes = workload.initial.node_count();
        let edges = workload.initial.edge_count();
        let inserts = workload.total_inserted_elements();

        let paper = PAPER_TABLE2.iter().find(|row| row.0 == sf);
        let (paper_nodes, paper_edges, paper_inserts) = match paper {
            Some(&(_, n, e, i)) => (n.to_string(), e.to_string(), i.to_string()),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };

        println!(
            "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
            sf, nodes, paper_nodes, edges, paper_edges, inserts, paper_inserts
        );
        sf *= 2;
    }
}
