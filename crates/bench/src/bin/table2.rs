//! Regenerate Table II of the paper: the number of nodes, edges and inserted elements
//! of the benchmark graph at every scale factor, for the synthetic workloads this
//! repository generates, next to the values the paper reports.
//!
//! ```text
//! cargo run -p bench --release --bin table2 -- [--max-sf 1024]
//! ```

use datagen::{generate_scale_factor, PAPER_TABLE2};

/// Accepted flags with the help line printed for each; `print_help` and the
/// CLI test in `tests/cli_help.rs` both enumerate this surface.
const FLAGS: &[(&str, &str)] = &[
    ("--max-sf", "largest scale factor to generate (default 64)"),
    ("--help", "print this help"),
];

fn print_help() {
    println!("table2 — benchmark graph sizes per scale factor vs. the paper (Table II)");
    println!();
    println!("usage: table2 [flags]");
    for (flag, help) in FLAGS {
        println!("  {flag:<19} {help}");
    }
}

fn parse_max_sf() -> u64 {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut max = 64;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--max-sf" => {
                i += 1;
                max = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--max-sf expects an integer (try --help)");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    max
}

fn main() {
    let max_sf: u64 = parse_max_sf();

    println!("Table II reproduction — graph sizes w.r.t. the scale factor");
    println!(
        "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
        "sf", "#nodes", "(paper)", "#edges", "(paper)", "#inserts", "(paper)"
    );
    println!("{}", "-".repeat(88));

    let mut sf = 1u64;
    while sf <= max_sf {
        let workload = generate_scale_factor(sf);
        let nodes = workload.initial.node_count();
        let edges = workload.initial.edge_count();
        let inserts = workload.total_inserted_elements();

        let paper = PAPER_TABLE2.iter().find(|row| row.0 == sf);
        let (paper_nodes, paper_edges, paper_inserts) = match paper {
            Some(&(_, n, e, i)) => (n.to_string(), e.to_string(), i.to_string()),
            None => ("-".to_string(), "-".to_string(), "-".to_string()),
        };

        println!(
            "{:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>10} {:>10}",
            sf, nodes, paper_nodes, edges, paper_edges, inserts, paper_inserts
        );
        sf *= 2;
    }
}
