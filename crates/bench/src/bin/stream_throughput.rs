//! Sustained streaming-update throughput of the tool variants.
//!
//! Generates a synthetic network at a given scale factor, attaches a seeded
//! [`datagen::stream::UpdateStream`] (new comments / likes / friendships plus
//! like/friendship retractions), and drives micro-batches through the selected
//! solutions with [`ttc_social_media::stream::StreamDriver`]. Prints one JSON object
//! per (query, variant) line with p50/p90/p99/max per-batch latency and the
//! sustained updates/second.
//!
//! ```text
//! cargo run -p bench --release --bin stream_throughput -- [--sf 1] [--batches 200] \
//!     [--batch-size 64] [--warmup 10] [--seed 42] [--deletions 0.1] \
//!     [--query q1|q2|both] [--variant batch|incremental|incremental-cc|nmf|all] \
//!     [--threads 1] [--smoke]
//! ```
//!
//! `--smoke` overrides everything with a small fixed configuration (sf1, every
//! variant of both queries, 2 worker threads so the parallel kernels run) and is
//! what `scripts/check.sh` executes: any panic in the kernels or the streaming
//! drivers fails the tier-1 gate. Explicit flags placed *after* `--smoke` still
//! apply on top of it.

use bench::run_in_pool;
use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_scale_factor, SocialNetwork};
use serde_json::json;
use ttc_social_media::model::Query;
use ttc_social_media::solution::Solution;
use ttc_social_media::stream::{StreamDriver, StreamDriverConfig};

struct Args {
    scale_factor: u64,
    batches: usize,
    batch_size: usize,
    warmup: usize,
    seed: u64,
    deletions: f64,
    queries: Vec<Query>,
    variants: Vec<String>,
    threads: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale_factor: 1,
        batches: 200,
        batch_size: 64,
        warmup: 10,
        seed: 42,
        deletions: 0.1,
        queries: vec![Query::Q1, Query::Q2],
        variants: vec!["incremental".to_string()],
        threads: 1,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                args.scale_factor = argv[i].parse().expect("--sf expects an integer");
            }
            "--batches" => {
                i += 1;
                args.batches = argv[i].parse().expect("--batches expects an integer");
            }
            "--batch-size" => {
                i += 1;
                args.batch_size = argv[i].parse().expect("--batch-size expects an integer");
            }
            "--warmup" => {
                i += 1;
                args.warmup = argv[i].parse().expect("--warmup expects an integer");
            }
            "--seed" => {
                i += 1;
                args.seed = argv[i].parse().expect("--seed expects an integer");
            }
            "--deletions" => {
                i += 1;
                args.deletions = argv[i].parse().expect("--deletions expects a weight");
            }
            "--query" => {
                i += 1;
                args.queries = match argv[i].to_lowercase().as_str() {
                    "q1" => vec![Query::Q1],
                    "q2" => vec![Query::Q2],
                    _ => vec![Query::Q1, Query::Q2],
                };
            }
            "--variant" => {
                i += 1;
                args.variants = match argv[i].to_lowercase().as_str() {
                    "all" => vec![
                        "batch".to_string(),
                        "incremental".to_string(),
                        "incremental-cc".to_string(),
                        "nmf".to_string(),
                    ],
                    other => vec![other.to_string()],
                };
            }
            "--threads" => {
                i += 1;
                args.threads = argv[i].parse().expect("--threads expects an integer");
            }
            "--smoke" => {
                args.scale_factor = 1;
                args.batches = 10;
                args.batch_size = 16;
                args.warmup = 2;
                args.deletions = 0.1;
                args.queries = vec![Query::Q1, Query::Q2];
                args.variants = vec![
                    "batch".to_string(),
                    "incremental".to_string(),
                    "incremental-cc".to_string(),
                    "nmf".to_string(),
                ];
                args.threads = 2;
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn build_variant(name: &str, query: Query, parallel: bool) -> Box<dyn Solution> {
    use nmf_baseline::NmfIncremental;
    use ttc_social_media::{GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc};
    match name {
        "batch" => Box::new(GraphBlasBatch::new(query, parallel)),
        "incremental" => Box::new(GraphBlasIncremental::new(query, parallel)),
        "incremental-cc" => match query {
            Query::Q2 => Box::new(GraphBlasIncrementalCc::new()),
            Query::Q1 => Box::new(GraphBlasIncremental::new(query, parallel)),
        },
        "nmf" => Box::new(NmfIncremental::new(query)),
        other => {
            eprintln!("unknown variant {other} (batch|incremental|incremental-cc|nmf|all)");
            std::process::exit(2);
        }
    }
}

fn stream_for(args: &Args, network: &SocialNetwork) -> UpdateStream {
    UpdateStream::new(
        network,
        StreamConfig {
            seed: args.seed,
            batch_size: args.batch_size,
            deletion_weight: args.deletions,
            ..StreamConfig::default()
        },
    )
}

fn main() {
    let args = parse_args();
    let network = generate_scale_factor(args.scale_factor).initial;
    eprintln!(
        "# network: sf={} nodes={} edges={}; stream: batches={} x {} ops, warmup={}, \
         deletion weight {}, threads={}",
        args.scale_factor,
        network.node_count(),
        network.edge_count(),
        args.batches,
        args.batch_size,
        args.warmup,
        args.deletions,
        args.threads,
    );

    let driver = StreamDriver::new(StreamDriverConfig {
        warmup_batches: args.warmup,
        coalesce: true,
    });
    let parallel = args.threads > 1;
    for &query in &args.queries {
        for variant in &args.variants {
            if variant == "incremental-cc" && query == Query::Q1 {
                // the incremental-CC backend is Q2-only; a Q1 row would just
                // re-measure the plain incremental solution under a wrong label
                eprintln!("# skipping incremental-cc for Q1 (Q2-only variant)");
                continue;
            }
            let stream = stream_for(&args, &network);
            // the solution is built inside the pool so the whole run (including the
            // initial load) sees the configured worker count
            let report = run_in_pool(args.threads, || {
                let mut solution = build_variant(variant, query, parallel);
                driver.run(solution.as_mut(), &network, stream, args.batches)
            });
            let row = json!({
                "query": format!("{query:?}"),
                "variant": variant,
                "solution": &report.solution,
                "scale_factor": args.scale_factor,
                "threads": args.threads,
                "batches": report.batches,
                "batch_size": args.batch_size,
                "total_operations": report.total_operations,
                "applied_operations": report.applied_operations,
                "elapsed_secs": report.elapsed_secs,
                "updates_per_sec": report.updates_per_sec,
                "p50_latency_secs": report.p50_latency_secs,
                "p90_latency_secs": report.p90_latency_secs,
                "p99_latency_secs": report.p99_latency_secs,
                "max_latency_secs": report.max_latency_secs,
                "load_secs": report.load_secs,
                "final_result": &report.final_result,
            });
            println!("{row}");
        }
    }
}
