//! Sustained streaming-update throughput of the tool variants.
//!
//! Generates a synthetic network at a given scale factor, attaches a seeded
//! [`datagen::stream::UpdateStream`] (new comments / likes / friendships plus
//! like/friendship retractions), and drives micro-batches through the selected
//! solutions with [`ttc_social_media::stream::StreamDriver`]. Prints one JSON object
//! per (query, variant) line with p50/p90/p99/max per-batch latency and the
//! sustained updates/second.
//!
//! ```text
//! cargo run -p bench --release --bin stream_throughput -- [--sf 1] [--batches 200] \
//!     [--batch-size 64] [--warmup 10] [--seed 42] [--deletions 0.1] \
//!     [--query q1|q2|both] [--variant batch|incremental|incremental-cc|nmf|all] \
//!     [--threads 1] [--shards N] [--partitioner mod|ring] [--rebalance] \
//!     [--hot-tree P] [--pipeline] [--queue-depth D] [--kill-shard S] [--recover] \
//!     [--checkpoint-every K] [--reshard AT:N] [--checkpoint-dir PATH] [--smoke]
//! ```
//!
//! `--shards N` (N ≥ 1) runs each variant through the sharded pipeline
//! ([`ttc_social_media::shard::ShardedSolution`]): the graph is partitioned by
//! user id across N shards, micro-batches are routed and applied shard-parallel
//! (the NMF baseline runs its per-shard dependency-record backend,
//! [`nmf_baseline::shard`]), and the row gains per-shard latency percentiles and
//! owned sizes (`shard_sizes`, the skew signal) next to the merged figures. Size
//! `--threads` to the shard count to give every shard a worker.
//!
//! `--partitioner` selects the shard-placement policy (`mod`, the default
//! `user % N`, or `ring`, a seeded consistent-hash ring); `--rebalance` wraps
//! the policy in an assignment table and enables the tree-migration skew
//! monitor (synchronous engine only), adding a `rebalance` block with the
//! migration counters to the row. `--hot-tree P` biases the generated stream
//! so a fraction `P` of new comments/likes pile onto one discussion tree — the
//! adversarial workload whose `shard_sizes` skew the monitor is built to pull
//! back down.
//!
//! `--pipeline` switches from the synchronous barrier driver to the staged
//! asynchronous engine ([`ttc_social_media::pipeline::PipelinedEngine`]): ingest
//! → coalesce/route → per-shard apply workers → watermark merge over bounded
//! queues of capacity `--queue-depth` (default 4). The row additionally carries
//! a `pipeline` block with per-stage backpressure counts and the maximum
//! watermark lag. Latency semantics change with it: pipelined rows report
//! **end-to-end** per-batch latency (ingest → merged result) and wall-clock
//! sustained throughput, not per-call service time. Without an explicit
//! `--shards`, `--pipeline` defaults to 2 shards (a 1-shard pipeline only
//! measures queue overhead). Stage threads are spawned by the engine itself;
//! `--threads` still sizes the rayon pool used during the initial load.
//!
//! `--kill-shard S` (repeatable, pipelined runs only) injects a crash: shard
//! `S`'s apply worker dies halfway through the run (at sequence number
//! `(warmup + batches) / 2`). On its own that proves the truncation detection
//! — the run exits non-zero with `EngineError::TruncatedRun`. With `--recover`
//! the engine checkpoints every `--checkpoint-every K` batches (default
//! [`RecoveryConfig::default`]), restores the killed shard from its latest
//! snapshot, replays the changeset log, and completes the run normally; the
//! `pipeline` block then nests a `recovery` block with the crash/restore
//! counters and the worst restore latency. This is the CI chaos smoke:
//! `--smoke --pipeline --kill-shard 1 --recover` under several seeds.
//!
//! `--reshard AT:N` (repeatable, pipelined runs only) schedules an elastic
//! reshard: right before batch `AT` is routed the engine drains every worker
//! to a barrier checkpoint, splits/merges the checkpoints into `N` shards, and
//! respawns the fleet under the new topology — results stay byte-identical to
//! an unsharded run. Resharding runs on the recovery machinery, so it arms
//! checkpointing with defaults even without `--recover`; the row's `pipeline`
//! block gains a `reshards` array with per-barrier drain/split/respawn timings
//! and the number of comments whose owning shard moved. `--checkpoint-dir
//! PATH` makes the checkpoint store file-backed (snapshots land under `PATH`,
//! cleared at run start) instead of in-process.
//!
//! `--smoke` overrides everything with a small fixed configuration (sf1, every
//! variant of both queries, 2 worker threads so the parallel kernels run) and is
//! what `scripts/check.sh` executes: any panic in the kernels or the streaming
//! drivers fails the tier-1 gate. Explicit flags placed *after* `--smoke` still
//! apply on top of it (`--smoke --pipeline` is the pipelined smoke CI runs).

use bench::{report, run_in_pool};
use datagen::partition::{partitioner_from_name, Partitioner};
use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_scale_factor, SocialNetwork};
use nmf_baseline::NmfShardFactory;
use serde_json::{json, Value};
use ttc_social_media::model::Query;
use ttc_social_media::pipeline::{IngestEngine, PipelineConfig, PipelineStats, PipelinedEngine};
use ttc_social_media::recovery::RecoveryConfig;
use ttc_social_media::shard::{
    GraphBlasShardFactory, RebalanceConfig, RebalanceStats, ShardBackend, ShardFactory,
    ShardRouterStats, ShardedSolution,
};
use ttc_social_media::solution::Solution;
use ttc_social_media::stream::{StreamDriver, StreamDriverConfig};

/// Accepted flags with the help line printed for each; `print_help` and the
/// CLI test in `tests/cli_help.rs` both enumerate this surface.
const FLAGS: &[(&str, &str)] = &[
    ("--sf", "scale factor of the generated network (default 1)"),
    (
        "--batches",
        "measured micro-batches to stream (default 200)",
    ),
    ("--batch-size", "operations per micro-batch (default 64)"),
    (
        "--warmup",
        "warm-up batches before measurement (default 10)",
    ),
    (
        "--seed",
        "seed of the generated network and stream (default 42)",
    ),
    (
        "--deletions",
        "like/friendship retraction weight (default 0.1)",
    ),
    ("--query", "q1, q2, or both (default both)"),
    (
        "--variant",
        "batch, incremental, incremental-cc, nmf, or all (default incremental)",
    ),
    ("--threads", "rayon worker threads (default 1)"),
    ("--shards", "run sharded over N shards (default off)"),
    (
        "--partitioner",
        "shard placement policy: mod or ring (default mod)",
    ),
    (
        "--rebalance",
        "enable the tree-migration skew monitor (synchronous engine only)",
    ),
    (
        "--hot-tree",
        "bias fraction P of new comments/likes onto one discussion tree",
    ),
    (
        "--pipeline",
        "use the staged asynchronous engine (default 2 shards)",
    ),
    (
        "--queue-depth",
        "bounded queue capacity of the pipeline (default 4)",
    ),
    (
        "--kill-shard",
        "kill shard S's worker mid-run (repeatable; needs --pipeline)",
    ),
    (
        "--recover",
        "checkpoint + restore killed shards (needs --pipeline)",
    ),
    (
        "--checkpoint-every",
        "checkpoint cadence in batches for --recover",
    ),
    (
        "--reshard",
        "reshard to N shards before batch AT, as AT:N (repeatable; needs --pipeline)",
    ),
    (
        "--checkpoint-dir",
        "file-backed checkpoint store rooted at PATH (needs --pipeline)",
    ),
    (
        "--smoke",
        "small fixed CI configuration (later flags still apply)",
    ),
    ("--help", "print this help"),
];

fn print_help() {
    println!("stream_throughput — sustained streaming-update throughput of the tool variants");
    println!();
    println!("usage: stream_throughput [flags]");
    for (flag, help) in FLAGS {
        println!("  {flag:<19} {help}");
    }
}

struct Args {
    scale_factor: u64,
    batches: usize,
    batch_size: usize,
    warmup: usize,
    seed: u64,
    deletions: f64,
    queries: Vec<Query>,
    variants: Vec<String>,
    threads: usize,
    shards: usize,
    partitioner: String,
    rebalance: bool,
    hot_tree: f64,
    pipeline: bool,
    queue_depth: usize,
    kill_shards: Vec<usize>,
    recover: bool,
    checkpoint_every: u64,
    reshards: Vec<(u64, usize)>,
    checkpoint_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale_factor: 1,
        batches: 200,
        batch_size: 64,
        warmup: 10,
        seed: 42,
        deletions: 0.1,
        queries: vec![Query::Q1, Query::Q2],
        variants: vec!["incremental".to_string()],
        threads: 1,
        shards: 0,
        partitioner: "mod".to_string(),
        rebalance: false,
        hot_tree: 0.0,
        pipeline: false,
        queue_depth: 4,
        kill_shards: Vec::new(),
        recover: false,
        checkpoint_every: RecoveryConfig::default().checkpoint_every,
        reshards: Vec::new(),
        checkpoint_dir: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                args.scale_factor = argv[i].parse().expect("--sf expects an integer");
            }
            "--batches" => {
                i += 1;
                args.batches = argv[i].parse().expect("--batches expects an integer");
            }
            "--batch-size" => {
                i += 1;
                args.batch_size = argv[i].parse().expect("--batch-size expects an integer");
            }
            "--warmup" => {
                i += 1;
                args.warmup = argv[i].parse().expect("--warmup expects an integer");
            }
            "--seed" => {
                i += 1;
                args.seed = argv[i].parse().expect("--seed expects an integer");
            }
            "--deletions" => {
                i += 1;
                args.deletions = argv[i].parse().expect("--deletions expects a weight");
            }
            "--query" => {
                i += 1;
                args.queries = match argv[i].to_lowercase().as_str() {
                    "q1" => vec![Query::Q1],
                    "q2" => vec![Query::Q2],
                    _ => vec![Query::Q1, Query::Q2],
                };
            }
            "--variant" => {
                i += 1;
                args.variants = match argv[i].to_lowercase().as_str() {
                    "all" => vec![
                        "batch".to_string(),
                        "incremental".to_string(),
                        "incremental-cc".to_string(),
                        "nmf".to_string(),
                    ],
                    other => vec![other.to_string()],
                };
            }
            "--threads" => {
                i += 1;
                args.threads = argv[i].parse().expect("--threads expects an integer");
            }
            "--shards" => {
                i += 1;
                args.shards = argv[i].parse().expect("--shards expects an integer");
            }
            "--partitioner" => {
                i += 1;
                args.partitioner = argv[i].to_lowercase();
            }
            "--rebalance" => {
                args.rebalance = true;
            }
            "--hot-tree" => {
                i += 1;
                args.hot_tree = argv[i].parse().expect("--hot-tree expects a probability");
                assert!(
                    (0.0..=1.0).contains(&args.hot_tree),
                    "--hot-tree expects a probability in [0, 1]"
                );
            }
            "--pipeline" => {
                args.pipeline = true;
            }
            "--queue-depth" => {
                i += 1;
                args.queue_depth = argv[i].parse().expect("--queue-depth expects an integer");
            }
            "--kill-shard" => {
                i += 1;
                args.kill_shards
                    .push(argv[i].parse().expect("--kill-shard expects a shard index"));
            }
            "--recover" => {
                args.recover = true;
            }
            "--checkpoint-every" => {
                i += 1;
                args.checkpoint_every = argv[i]
                    .parse()
                    .expect("--checkpoint-every expects an integer ≥ 1");
            }
            "--reshard" => {
                i += 1;
                let spec = &argv[i];
                let (at, n) = spec
                    .split_once(':')
                    .expect("--reshard expects AT:N (batch sequence, new shard count)");
                args.reshards.push((
                    at.parse().expect("--reshard AT expects an integer"),
                    n.parse().expect("--reshard N expects an integer ≥ 1"),
                ));
            }
            "--checkpoint-dir" => {
                i += 1;
                args.checkpoint_dir = Some(std::path::PathBuf::from(&argv[i]));
            }
            "--smoke" => {
                args.scale_factor = 1;
                args.batches = 10;
                args.batch_size = 16;
                args.warmup = 2;
                args.deletions = 0.1;
                args.queries = vec![Query::Q1, Query::Q2];
                args.variants = vec![
                    "batch".to_string(),
                    "incremental".to_string(),
                    "incremental-cc".to_string(),
                    "nmf".to_string(),
                ];
                args.threads = 2;
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

fn build_variant(name: &str, query: Query, parallel: bool) -> Box<dyn Solution> {
    use nmf_baseline::NmfIncremental;
    use ttc_social_media::{GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc};
    match name {
        "batch" => Box::new(GraphBlasBatch::new(query, parallel)),
        "incremental" => Box::new(GraphBlasIncremental::new(query, parallel)),
        "incremental-cc" => match query {
            Query::Q2 => Box::new(GraphBlasIncrementalCc::new()),
            Query::Q1 => Box::new(GraphBlasIncremental::new(query, parallel)),
        },
        "nmf" => Box::new(NmfIncremental::new(query)),
        other => {
            eprintln!("unknown variant {other} (batch|incremental|incremental-cc|nmf|all)");
            std::process::exit(2);
        }
    }
}

fn stream_for(args: &Args, network: &SocialNetwork) -> UpdateStream {
    UpdateStream::new(
        network,
        StreamConfig {
            seed: args.seed,
            batch_size: args.batch_size,
            deletion_weight: args.deletions,
            // shard-aware emission groups each batch's operations by owning
            // shard, so the router output is contiguous per shard
            shards: args.shards,
            hot_tree_bias: args.hot_tree,
            ..StreamConfig::default()
        },
    )
}

/// The partition policy of a sharded run, per `--partitioner`/`--rebalance`.
fn partitioner_for(args: &Args) -> Box<dyn Partitioner> {
    partitioner_from_name(&args.partitioner, args.shards, args.seed, args.rebalance)
        .expect("partitioner name validated at startup")
}

/// The per-shard backend of a variant name: the GraphBLAS factories mirror the
/// unsharded variants one-to-one; `nmf` runs the per-shard dependency-record
/// baseline.
fn shard_factory(variant: &str, query: Query) -> Option<Box<dyn ShardFactory>> {
    match variant {
        "batch" => Some(Box::new(GraphBlasShardFactory::new(
            query,
            ShardBackend::Batch,
        ))),
        "incremental" => Some(Box::new(GraphBlasShardFactory::new(
            query,
            ShardBackend::Incremental,
        ))),
        "incremental-cc" => Some(Box::new(GraphBlasShardFactory::new(
            query,
            ShardBackend::IncrementalCc,
        ))),
        "nmf" => Some(Box::new(NmfShardFactory::new(query))),
        _ => None,
    }
}

/// The row fields every sharded run (synchronous or pipelined) shares: shard
/// count, partition policy, per-shard latency percentiles, owned sizes (the
/// skew signal), router statistics, and — depending on the mode — the
/// pipeline or rebalance block.
#[allow(clippy::too_many_arguments)]
fn sharded_extra(
    shards: usize,
    partitioner: &str,
    lanes: &[Vec<f64>],
    warmup: usize,
    sizes: &[(usize, usize)],
    router: ShardRouterStats,
    pipeline: Option<&PipelineStats>,
    rebalance: Option<RebalanceStats>,
) -> Value {
    let mut map = match json!({
        "shards": shards,
        "partitioner": partitioner,
        "per_shard": report::per_shard_json(lanes, warmup),
        "shard_sizes": report::shard_sizes_json(sizes),
    }) {
        Value::Object(map) => map,
        _ => unreachable!("json! object literal"),
    };
    if let Value::Object(router) = report::router_stats_json(router) {
        map.extend(router);
    }
    if let Some(stats) = pipeline {
        map.insert("pipeline".to_string(), report::pipeline_stats_json(stats));
    }
    if let Some(stats) = rebalance {
        map.insert("rebalance".to_string(), report::rebalance_stats_json(stats));
    }
    Value::Object(map)
}

fn main() {
    let mut args = parse_args();
    if args.pipeline && args.shards == 0 {
        // a 1-shard pipeline only measures queue overhead; default to the
        // smallest configuration where stages can actually overlap
        args.shards = 2;
    }
    if args.rebalance && args.shards == 0 {
        eprintln!("error: --rebalance requires --shards N (there is nothing to rebalance)");
        std::process::exit(2);
    }
    // validate against the one policy registry before the (expensive) network
    // generation below, so new names added there are accepted without edits here
    if partitioner_from_name(&args.partitioner, 1, 0, false).is_none() {
        eprintln!("unknown partitioner {} (mod|ring)", args.partitioner);
        std::process::exit(2);
    }
    if args.rebalance && args.pipeline {
        // migration quiesces donor and recipient between batches — a barrier
        // the staged engine deliberately does not have (DESIGN.md §5.6)
        eprintln!(
            "error: --rebalance is supported by the synchronous engine only (drop --pipeline)"
        );
        std::process::exit(2);
    }
    if (!args.kill_shards.is_empty() || args.recover) && !args.pipeline {
        eprintln!("error: --kill-shard/--recover require --pipeline (they exercise its workers)");
        std::process::exit(2);
    }
    if (!args.reshards.is_empty() || args.checkpoint_dir.is_some()) && !args.pipeline {
        eprintln!(
            "error: --reshard/--checkpoint-dir require --pipeline (they exercise its workers)"
        );
        std::process::exit(2);
    }
    if args.reshards.iter().any(|&(_, n)| n == 0) {
        eprintln!("error: --reshard expects a new shard count ≥ 1");
        std::process::exit(2);
    }
    if args.checkpoint_every == 0 {
        eprintln!("error: --checkpoint-every expects an integer ≥ 1");
        std::process::exit(2);
    }
    let args = args;
    let network = generate_scale_factor(args.scale_factor).initial;
    eprintln!(
        "# network: sf={} nodes={} edges={}; stream: batches={} x {} ops, warmup={}, \
         deletion weight {}, threads={}{}",
        args.scale_factor,
        network.node_count(),
        network.edge_count(),
        args.batches,
        args.batch_size,
        args.warmup,
        args.deletions,
        args.threads,
        if args.pipeline {
            format!(
                ", pipelined over {} shards (queue depth {})",
                args.shards, args.queue_depth
            )
        } else {
            String::new()
        },
    );

    let driver = StreamDriver::new(StreamDriverConfig {
        warmup_batches: args.warmup,
        coalesce: true,
    });
    let parallel = args.threads > 1;
    for &query in &args.queries {
        for variant in &args.variants {
            if variant == "incremental-cc" && query == Query::Q1 {
                // the incremental-CC backend is Q2-only; a Q1 row would just
                // re-measure the plain incremental solution under a wrong label
                eprintln!("# skipping incremental-cc for Q1 (Q2-only variant)");
                continue;
            }
            // resolve the backend before building the stream: constructing an
            // UpdateStream snapshots the network's edge lists, which is wasted
            // work when the variant name turns out to be unknown
            let factory = if args.shards > 0 {
                match shard_factory(variant, query) {
                    Some(factory) => Some(factory),
                    None => {
                        eprintln!(
                            "unknown variant {variant} (batch|incremental|incremental-cc|nmf|all)"
                        );
                        std::process::exit(2);
                    }
                }
            } else {
                None
            };
            let stream = stream_for(&args, &network);
            // the solution is built inside the pool so the whole run (including the
            // initial load) sees the configured worker count
            let (report, extra) = match factory {
                Some(factory) if args.pipeline => run_in_pool(args.threads, || {
                    // chaos injection: each --kill-shard S dies halfway
                    // through the run, recovery (when enabled) restores it
                    let kill_seq = ((args.warmup + args.batches) / 2) as u64;
                    let mut engine = PipelinedEngine::with_partitioner(
                        factory,
                        partitioner_for(&args),
                        PipelineConfig {
                            queue_depth: args.queue_depth,
                            warmup_batches: args.warmup,
                            coalesce: true,
                            delays: None,
                            kill_shards: args
                                .kill_shards
                                .iter()
                                .map(|&shard| (shard, kill_seq))
                                .collect(),
                            recovery: args.recover.then_some(RecoveryConfig {
                                checkpoint_every: args.checkpoint_every,
                            }),
                            reshards: args.reshards.clone(),
                            checkpoint_dir: args.checkpoint_dir.clone(),
                        },
                    );
                    let mut stream = stream;
                    let outcome = engine
                        .run(&network, &mut stream, args.batches)
                        .unwrap_or_else(|err| {
                            eprintln!("error: {err}");
                            std::process::exit(1);
                        });
                    let stats = outcome.pipeline.expect("pipelined engines report stats");
                    let extra = sharded_extra(
                        stats.shards,
                        &args.partitioner,
                        &stats.per_shard_apply_latencies,
                        args.warmup,
                        &stats.shard_sizes,
                        stats.router,
                        Some(&stats),
                        None,
                    );
                    (outcome.stream, Some(extra))
                }),
                Some(factory) => run_in_pool(args.threads, || {
                    let mut sharded = ShardedSolution::with_factory_and_partitioner(
                        factory,
                        partitioner_for(&args),
                    );
                    if args.rebalance {
                        sharded = sharded.with_rebalancing(RebalanceConfig::default());
                    }
                    let report = driver.run(&mut sharded, &network, stream, args.batches);
                    let extra = sharded_extra(
                        sharded.shard_count(),
                        &args.partitioner,
                        sharded.per_shard_latencies(),
                        args.warmup,
                        &sharded.shard_sizes(),
                        sharded.router_stats(),
                        None,
                        args.rebalance.then(|| sharded.rebalance_stats()),
                    );
                    (report, Some(extra))
                }),
                None => run_in_pool(args.threads, || {
                    let mut solution = build_variant(variant, query, parallel);
                    (
                        driver.run(solution.as_mut(), &network, stream, args.batches),
                        None,
                    )
                }),
            };
            let mut row = json!({
                "query": format!("{query:?}"),
                "variant": variant,
                "solution": &report.solution,
                "scale_factor": args.scale_factor,
                "threads": args.threads,
                "batches": report.batches,
                "batch_size": args.batch_size,
                "total_operations": report.total_operations,
                "applied_operations": report.applied_operations,
                "elapsed_secs": report.elapsed_secs,
                "updates_per_sec": report.updates_per_sec,
                "p50_latency_secs": report.p50_latency_secs,
                "p90_latency_secs": report.p90_latency_secs,
                "p99_latency_secs": report.p99_latency_secs,
                "max_latency_secs": report.max_latency_secs,
                "load_secs": report.load_secs,
                "final_result": &report.final_result,
            });
            if let (Value::Object(row), Some(Value::Object(extra))) = (&mut row, extra) {
                row.extend(extra);
            }
            println!("{row}");
        }
    }
}
