//! Read throughput of the epoch-published serving path under mixed load.
//!
//! Runs the pipelined engine with serving armed
//! ([`PipelinedEngine::serve_views`](ttc_social_media::PipelinedEngine::serve_views)) and drives a fleet of lock-free reader
//! threads against the published [`QueryView`](ttc_social_media::serve::QueryView) chain, following a named,
//! seeded, serializable workload description ([`bench::ServeWorkload`]:
//! reader count, read mix, arrival pattern). Each workload is measured in two
//! phases over the same wall-clock window:
//!
//! 1. **write-active** — readers poll while the engine applies and publishes
//!    every batch (the serving steady state);
//! 2. **read-only** — the run is over, the chain is frozen, and the same
//!    fleet replays the same operation sequences against the final views.
//!
//! Because readers take one atomic chain-step and then work on an immutable
//! snapshot, the two phases should sustain comparable read throughput — the
//! apply path never blocks readers. The printed `independence_ratio`
//! (write-active / read-only reads per second) is the figure the README's
//! serving table quotes; on a multi-core host it should sit within ~10% of
//! 1.0, while on a single-core container readers and the engine time-share
//! the CPU and the ratio mostly measures scheduler fairness.
//!
//! Prints one JSON row per workload (the embedded `workload` object is
//! re-parseable with [`bench::ServeWorkload::from_json`]), via the same
//! stable-field-order report layer as `stream_throughput`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::report::{serve_phase_json, ServePhase};
use bench::{run_in_pool, ArrivalPattern, ReadOp, ServeWorkload};
use datagen::model::ElementId;
use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_scale_factor, SocialNetwork};
use serde_json::{json, Value};
use ttc_social_media::model::Query;
use ttc_social_media::pipeline::{IngestEngine, PipelineConfig, PipelinedEngine};
use ttc_social_media::shard::ShardBackend;
use ttc_social_media::ViewReader;

/// Accepted flags with the help line printed for each; `print_help` and the
/// CLI test in `tests/cli_help.rs` both enumerate this surface.
const FLAGS: &[(&str, &str)] = &[
    ("--sf", "scale factor of the generated network (default 1)"),
    (
        "--batches",
        "measured micro-batches to stream (default 120)",
    ),
    ("--batch-size", "operations per micro-batch (default 64)"),
    ("--warmup", "warm-up batches before measurement (default 5)"),
    (
        "--seed",
        "seed of the generated network and stream (default 42)",
    ),
    (
        "--deletions",
        "like/friendship retraction weight (default 0.1)",
    ),
    ("--query", "q1 or q2 (default q1)"),
    (
        "--shards",
        "shard count of the pipelined engine (default 2)",
    ),
    (
        "--threads",
        "rayon threads for the initial load (default 2)",
    ),
    (
        "--workload",
        "named preset to run: scan-heavy, point-lookups, bursty-mixed, or all (default all)",
    ),
    ("--readers", "override the workload's reader count"),
    (
        "--smoke",
        "small fixed configuration for CI (sf1, one workload)",
    ),
    ("--help", "print this help"),
];

fn print_help() {
    println!("serve_throughput — read throughput of the epoch-published serving path");
    println!();
    println!("usage: serve_throughput [flags]");
    for (flag, help) in FLAGS {
        println!("  {flag:<18} {help}");
    }
}

struct Args {
    scale_factor: u64,
    batches: usize,
    batch_size: usize,
    warmup: usize,
    seed: u64,
    deletions: f64,
    query: Query,
    shards: usize,
    threads: usize,
    workload: String,
    readers: Option<usize>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale_factor: 1,
        batches: 120,
        batch_size: 64,
        warmup: 5,
        seed: 42,
        deletions: 0.1,
        query: Query::Q1,
        shards: 2,
        threads: 2,
        workload: "all".to_string(),
        readers: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--sf" => {
                i += 1;
                args.scale_factor = argv[i].parse().expect("--sf expects an integer");
            }
            "--batches" => {
                i += 1;
                args.batches = argv[i].parse().expect("--batches expects an integer");
            }
            "--batch-size" => {
                i += 1;
                args.batch_size = argv[i].parse().expect("--batch-size expects an integer");
            }
            "--warmup" => {
                i += 1;
                args.warmup = argv[i].parse().expect("--warmup expects an integer");
            }
            "--seed" => {
                i += 1;
                args.seed = argv[i].parse().expect("--seed expects an integer");
            }
            "--deletions" => {
                i += 1;
                args.deletions = argv[i].parse().expect("--deletions expects a weight");
            }
            "--query" => {
                i += 1;
                args.query = match argv[i].to_lowercase().as_str() {
                    "q1" => Query::Q1,
                    "q2" => Query::Q2,
                    other => {
                        eprintln!("unknown query {other} (q1|q2)");
                        std::process::exit(2);
                    }
                };
            }
            "--shards" => {
                i += 1;
                args.shards = argv[i].parse().expect("--shards expects an integer");
                assert!(args.shards > 0, "--shards expects an integer ≥ 1");
            }
            "--threads" => {
                i += 1;
                args.threads = argv[i].parse().expect("--threads expects an integer");
            }
            "--workload" => {
                i += 1;
                args.workload = argv[i].to_lowercase();
            }
            "--readers" => {
                i += 1;
                args.readers = Some(argv[i].parse().expect("--readers expects an integer"));
            }
            "--smoke" => {
                args.scale_factor = 1;
                args.batches = 16;
                args.batch_size = 16;
                args.warmup = 2;
                args.workload = "scan-heavy".to_string();
                args.readers = Some(2);
            }
            "--help" | "-h" => {
                print_help();
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    args
}

/// What one reader accumulated over its measurement window.
struct ReaderTally {
    reads: u64,
    elapsed: Duration,
    max_epoch: u64,
    /// Folded view contents, kept so the reads cannot be optimized away.
    checksum: u64,
}

/// Run one reader until `stop` is set (or `window` elapses, whichever the
/// caller armed): replay the workload's seeded plan against the view chain,
/// pacing per the arrival pattern.
fn run_reader(
    mut reader: ViewReader,
    plan: Vec<ReadOp>,
    arrival: ArrivalPattern,
    users: Arc<Vec<ElementId>>,
    stop: Arc<AtomicBool>,
    window: Option<Duration>,
) -> ReaderTally {
    let start = Instant::now();
    let mut tally = ReaderTally {
        reads: 0,
        elapsed: Duration::ZERO,
        max_epoch: 0,
        checksum: 0,
    };
    'outer: loop {
        for (i, op) in plan.iter().enumerate() {
            // the stop flag is a relaxed load (cheap); the clock is checked
            // every 64 reads only — per-read `Instant::now` costs as much as
            // the read itself and would halve the measured throughput
            if stop.load(Ordering::Relaxed)
                || (tally.reads.is_multiple_of(64) && window.is_some_and(|w| start.elapsed() >= w))
            {
                break 'outer;
            }
            // one atomic chain-step, then every read below is on an immutable
            // snapshot — this is the entirety of the read path's overhead
            let view = reader.latest();
            tally.max_epoch = tally.max_epoch.max(view.epoch());
            let draw = tally.reads.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            tally.checksum ^= match op {
                ReadOp::TopK => view
                    .entries()
                    .iter()
                    .fold(view.result().len() as u64, |acc, e| {
                        acc.wrapping_add(e.score).rotate_left(7) ^ e.id
                    }),
                ReadOp::Standing => view
                    .entries()
                    .get(draw as usize % view.entries().len().max(1))
                    .and_then(|e| view.standing(e.id))
                    .map(|s| s.score.wrapping_add(s.rank.unwrap_or(0) as u64))
                    .unwrap_or(1),
                ReadOp::Component => users
                    .get(draw as usize % users.len().max(1))
                    .and_then(|&u| view.component_of(u))
                    .unwrap_or(2),
            };
            tally.reads += 1;
            match arrival {
                ArrivalPattern::Closed => {}
                ArrivalPattern::Uniform { gap_micros } => {
                    std::thread::sleep(Duration::from_micros(gap_micros));
                }
                ArrivalPattern::Burst { size, gap_micros } => {
                    if (i + 1) % (size as usize).max(1) == 0 {
                        std::thread::sleep(Duration::from_micros(gap_micros));
                    }
                }
            }
        }
    }
    tally.elapsed = start.elapsed();
    tally
}

/// Aggregate a fleet's tallies into the report block of one phase.
fn aggregate(tallies: Vec<ReaderTally>, write_active: bool) -> (ServePhase, u64) {
    let phase = ServePhase {
        readers: tallies.len(),
        write_active,
        reads: tallies.iter().map(|t| t.reads).sum(),
        elapsed_secs: tallies
            .iter()
            .map(|t| t.elapsed.as_secs_f64())
            .fold(0.0, f64::max),
        max_epoch: tallies.iter().map(|t| t.max_epoch).max().unwrap_or(0),
    };
    let checksum = tallies.iter().fold(0u64, |acc, t| acc ^ t.checksum);
    (phase, checksum)
}

/// The length of each reader's pre-drawn operation plan; readers cycle it.
const PLAN_LEN: usize = 1024;

fn measure_workload(args: &Args, network: &SocialNetwork, workload: &ServeWorkload) -> Value {
    let readers = args.readers.unwrap_or(workload.readers).max(1);
    let users: Arc<Vec<ElementId>> = Arc::new(network.users.iter().map(|u| u.id).collect());
    let mut stream = UpdateStream::new(
        network,
        StreamConfig {
            seed: args.seed,
            batch_size: args.batch_size,
            deletion_weight: args.deletions,
            shards: args.shards,
            ..StreamConfig::default()
        },
    );

    let mut engine = PipelinedEngine::graphblas(
        args.query,
        ShardBackend::Incremental,
        args.shards,
        PipelineConfig {
            warmup_batches: args.warmup,
            coalesce: true,
            ..PipelineConfig::default()
        },
    );
    let chain_head = engine.serve_views();

    // Phase 1 — write-active: the fleet polls while the engine applies and
    // publishes every batch. Readers start before the run and are stopped the
    // moment it returns, so their window is exactly the engine's window.
    let stop = Arc::new(AtomicBool::new(false));
    let (report, write_tallies) = std::thread::scope(|scope| {
        let fleet: Vec<_> = (0..readers)
            .map(|r| {
                let reader = chain_head.clone();
                let plan = workload.plan(r, PLAN_LEN);
                let users = Arc::clone(&users);
                let stop = Arc::clone(&stop);
                scope.spawn(move || run_reader(reader, plan, workload.arrival, users, stop, None))
            })
            .collect();
        let report = run_in_pool(args.threads, || {
            engine
                .run(network, &mut stream, args.batches)
                .unwrap_or_else(|err| {
                    eprintln!("error: {err}");
                    std::process::exit(1);
                })
        });
        stop.store(true, Ordering::Relaxed);
        let tallies = fleet
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect();
        (report, tallies)
    });
    let (write_phase, write_checksum) = aggregate(write_tallies, true);

    // Phase 2 — read-only: the chain is frozen; the same fleet replays the
    // same plans for the same wall-clock window against the final views.
    let window = Duration::from_secs_f64(write_phase.elapsed_secs.max(0.05));
    let read_tallies = std::thread::scope(|scope| {
        let fleet: Vec<_> = (0..readers)
            .map(|r| {
                let reader = chain_head.clone();
                let plan = workload.plan(r, PLAN_LEN);
                let users = Arc::clone(&users);
                let stop = Arc::new(AtomicBool::new(false));
                scope.spawn(move || {
                    run_reader(reader, plan, workload.arrival, users, stop, Some(window))
                })
            })
            .collect();
        fleet
            .into_iter()
            .map(|h| h.join().expect("reader thread panicked"))
            .collect()
    });
    let (read_phase, read_checksum) = aggregate(read_tallies, false);

    let independence = if read_phase.reads_per_sec() > 0.0 {
        write_phase.reads_per_sec() / read_phase.reads_per_sec()
    } else {
        0.0
    };
    eprintln!(
        "# {}: write-active {:.0} reads/s over {:.2}s, read-only {:.0} reads/s, ratio {:.3}",
        workload.name,
        write_phase.reads_per_sec(),
        write_phase.elapsed_secs,
        read_phase.reads_per_sec(),
        independence,
    );

    json!({
        "workload": workload.to_json(),
        "query": format!("{:?}", args.query),
        "scale_factor": args.scale_factor,
        "shards": args.shards,
        "batches": report.stream.batches,
        "updates_per_sec": report.stream.updates_per_sec,
        "final_result": &report.stream.final_result,
        "write_active": serve_phase_json(&write_phase),
        "read_only": serve_phase_json(&read_phase),
        "independence_ratio": independence,
        // fold of everything the readers saw; pins the reads as real work
        "read_checksum": write_checksum ^ read_checksum,
    })
}

fn main() {
    let args = parse_args();
    let workloads: Vec<ServeWorkload> = if args.workload == "all" {
        ServeWorkload::presets()
    } else {
        match ServeWorkload::by_name(&args.workload) {
            Some(workload) => vec![workload],
            None => {
                let names: Vec<String> = ServeWorkload::presets()
                    .into_iter()
                    .map(|w| w.name)
                    .collect();
                eprintln!(
                    "unknown workload {} ({}|all)",
                    args.workload,
                    names.join("|")
                );
                std::process::exit(2);
            }
        }
    };
    let network = generate_scale_factor(args.scale_factor).initial;
    eprintln!(
        "# network: sf={} nodes={} edges={}; stream: {} x {} ops, warmup {}; {} workload(s)",
        args.scale_factor,
        network.node_count(),
        network.edge_count(),
        args.batches,
        args.batch_size,
        args.warmup,
        workloads.len(),
    );
    for workload in &workloads {
        let row = measure_workload(&args, &network, workload);
        println!("{row}");
    }
}
