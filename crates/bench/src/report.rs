//! JSON fragments of the `stream_throughput` report rows.
//!
//! Factored out of the binary so the shape of the report — the thing downstream
//! tooling (`bench_gate`, dashboards, the ROADMAP's rebalancing analysis) parses
//! — is unit-testable: every builder here has a stable-field-order test and a
//! round-trip test through the vendored `serde_json` parser.
//!
//! Field-order contract: the vendored [`serde_json::Value`] stores objects in a
//! `BTreeMap`, so keys render in **lexicographic order** — deterministic across
//! runs and machines, which is what "stable" means here (diffs of two reports
//! never reorder). The tests pin that order down explicitly so a change to the
//! map representation cannot silently reshuffle checked-in baselines.

use serde_json::{json, Value};
use ttc_social_media::pipeline::{PipelineStats, ReshardStats};
use ttc_social_media::stream::percentile;
use ttc_social_media::{RebalanceStats, RecoveryStats, ShardRouterStats};

/// The per-shard latency block of a sharded row: one object per shard with
/// p50/p99/max over that shard's per-batch update (or apply) times. The
/// solutions record a sample for *every* batch, so the first `warmup` samples
/// are dropped here — otherwise the per-shard percentiles would include the
/// cold-start batches the merged `StreamReport` percentiles exclude, and the
/// two blocks of the same row would not be comparable.
pub fn per_shard_json(lanes: &[Vec<f64>], warmup: usize) -> Value {
    let lanes: Vec<Value> = lanes
        .iter()
        .enumerate()
        .map(|(shard, lane)| {
            let mut measured = lane[warmup.min(lane.len())..].to_vec();
            measured.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite")); // lint: allow(panic) — latencies are Duration-derived seconds, never NaN
            json!({
                "shard": shard,
                "p50_latency_secs": percentile(&measured, 50.0),
                "p99_latency_secs": percentile(&measured, 99.0),
                "max_latency_secs": measured.last().copied().unwrap_or(0.0),
            })
        })
        .collect();
    Value::Array(lanes)
}

/// The shard-skew block: `(posts, comments)` owned per shard, straight from
/// `ShardedSolution::shard_sizes` / the pipeline's end-of-run snapshot. Feeds
/// the ROADMAP's rebalancing item: skew shows up as one shard's counts (and its
/// p99 in [`per_shard_json`]) pulling away from the others.
pub fn shard_sizes_json(sizes: &[(usize, usize)]) -> Value {
    Value::Array(
        sizes
            .iter()
            .enumerate()
            .map(|(shard, &(posts, comments))| {
                json!({
                    "shard": shard,
                    "posts": posts,
                    "comments": comments,
                })
            })
            .collect(),
    )
}

/// The router-statistics block shared by the sharded and pipelined rows.
pub fn router_stats_json(stats: ShardRouterStats) -> Value {
    json!({
        "routed_operations": stats.routed_operations,
        "broadcast_deliveries": stats.broadcast_deliveries,
        "friendship_deliveries": stats.friendship_deliveries,
        "imported_boundary_edges": stats.imported_boundary_edges,
    })
}

/// The rebalance block of a `--rebalance` row: how often the skew monitor
/// checked, how many discussion trees it migrated, and how much payload those
/// migrations carried. Read next to [`shard_sizes_json`]: a run whose
/// `migrations` counter is positive should show its max/mean `shard_sizes`
/// skew pulled back towards 1.
pub fn rebalance_stats_json(stats: RebalanceStats) -> Value {
    json!({
        "checks": stats.checks,
        "migrations": stats.migrations,
        "migrated_comments": stats.migrated_comments,
        "migrated_likes": stats.migrated_likes,
    })
}

/// The recovery block of a `--recover` row: crash/restore counters, how many
/// logged batches the restores replayed, checkpoint volume, and the worst
/// restore latency (snapshot decode + rebuild + replay) observed — the figure
/// the README's recovery section quotes.
pub fn recovery_stats_json(stats: RecoveryStats) -> Value {
    json!({
        "crashes": stats.crashes,
        "restores": stats.restores,
        "replayed_batches": stats.replayed_batches,
        "checkpoints": stats.checkpoints,
        "checkpoint_bytes": stats.checkpoint_bytes,
        "max_restore_secs": stats.max_restore_secs,
    })
}

/// One reshard barrier of a `--reshard` row: where it fired, the topology
/// change, the cost of the three barrier phases (drain to the checkpoint,
/// split/merge + evaluator rebuild, fleet respawn) in milliseconds, and how
/// many comments changed owning shard — the payload the barrier "moved".
pub fn reshard_stats_json(stats: &ReshardStats) -> Value {
    json!({
        "at_seq": stats.at_seq,
        "from_shards": stats.from_shards,
        "to_shards": stats.to_shards,
        "drain_ms": stats.drain_secs * 1e3,
        "split_ms": stats.split_secs * 1e3,
        "respawn_ms": stats.respawn_secs * 1e3,
        "moved_comments": stats.moved_comments,
    })
}

/// The pipeline block of a `--pipeline` row: queue bound, how often each stage
/// hit backpressure (blocked on a full downstream queue), and how far the
/// fastest shard ran ahead of the merge watermark. Recovery-enabled runs nest
/// their [`recovery_stats_json`] block here; `--reshard` runs additionally
/// carry one [`reshard_stats_json`] entry per barrier, in firing order.
pub fn pipeline_stats_json(stats: &PipelineStats) -> Value {
    let mut map = match json!({
        "queue_depth": stats.queue_depth,
        "ingest_backpressure": stats.ingest_backpressure,
        "route_backpressure": stats.route_backpressure,
        "apply_backpressure": stats.apply_backpressure,
        "max_watermark_lag": stats.max_watermark_lag,
    }) {
        Value::Object(map) => map,
        _ => unreachable!("json! object literal"),
    };
    if let Some(recovery) = stats.recovery {
        map.insert("recovery".to_string(), recovery_stats_json(recovery));
    }
    if !stats.reshards.is_empty() {
        map.insert(
            "reshards".to_string(),
            Value::Array(stats.reshards.iter().map(reshard_stats_json).collect()),
        );
    }
    Value::Object(map)
}

/// One measured read phase of a `serve_throughput` row: the aggregate of a
/// reader fleet driving one [`crate::ServeWorkload`] either concurrently with
/// the write stream (`write_active`) or against the frozen final chain.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct ServePhase {
    /// Reader threads in the fleet.
    pub readers: usize,
    /// Whether the engine was applying batches while these reads ran.
    pub write_active: bool,
    /// Total reads completed across the fleet.
    pub reads: u64,
    /// Wall-clock duration of the phase (the slowest reader's window).
    pub elapsed_secs: f64,
    /// Highest view epoch any reader observed during the phase.
    pub max_epoch: u64,
}

impl ServePhase {
    /// Aggregate read throughput of the fleet.
    pub fn reads_per_sec(&self) -> f64 {
        if self.elapsed_secs > 0.0 {
            self.reads as f64 / self.elapsed_secs
        } else {
            0.0
        }
    }
}

/// The serving block of a `serve_throughput` row. The paired `write_active`
/// true/false phases of the same workload are what the README's serving table
/// compares: lock-free readers should sustain comparable throughput whether
/// or not the apply path is publishing under them.
pub fn serve_phase_json(phase: &ServePhase) -> Value {
    json!({
        "readers": phase.readers,
        "write_active": phase.write_active,
        "reads": phase.reads,
        "elapsed_secs": phase.elapsed_secs,
        "reads_per_sec": phase.reads_per_sec(),
        "max_epoch": phase.max_epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert `rendered` contains exactly `fields` as top-level keys, in order.
    fn assert_field_order(rendered: &str, fields: &[&str]) {
        let mut last = 0usize;
        for field in fields {
            let needle = format!("\"{field}\":");
            let at = rendered[last..]
                .find(&needle)
                .unwrap_or_else(|| panic!("{field} missing or out of order in {rendered}"));
            last += at + needle.len();
        }
    }

    #[test]
    fn serve_phase_block_is_stable_and_round_trips() {
        // non-integral throughput: the vendored parser reads integral floats
        // back as integers, which would fail the round-trip comparison
        let phase = ServePhase {
            readers: 4,
            write_active: true,
            reads: 2_000_001,
            elapsed_secs: 2.5,
            max_epoch: 66,
        };
        let value = serve_phase_json(&phase);
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "elapsed_secs",
                "max_epoch",
                "readers",
                "reads",
                "reads_per_sec",
                "write_active",
            ],
        );
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("reads_per_sec").and_then(Value::as_f64),
            Some(800_000.4)
        );
        assert_eq!(
            parsed.get("write_active").and_then(Value::as_bool),
            Some(true)
        );

        // a zero-length phase reports zero throughput, not a NaN/inf
        let empty = ServePhase {
            readers: 1,
            write_active: false,
            reads: 0,
            elapsed_secs: 0.0,
            max_epoch: 0,
        };
        assert_eq!(empty.reads_per_sec(), 0.0);
    }

    #[test]
    fn per_shard_block_is_stable_and_round_trips() {
        let lanes = vec![
            vec![0.5, 0.001, 0.002, 0.003],
            vec![0.9, 0.004, 0.005, 0.006],
        ];
        let value = per_shard_json(&lanes, 1);
        let rendered = value.to_string();
        // warm-up sample (the 0.5 / 0.9 outliers) excluded from the percentiles
        assert!(
            !rendered.contains("0.5") && !rendered.contains("0.9"),
            "{rendered}"
        );
        let lanes_out = value.as_array().expect("array of shards");
        assert_eq!(lanes_out.len(), 2);
        for (shard, lane) in lanes_out.iter().enumerate() {
            assert_eq!(
                lane.get("shard").and_then(Value::as_u64),
                Some(shard as u64)
            );
            assert_field_order(
                &lane.to_string(),
                &[
                    "max_latency_secs",
                    "p50_latency_secs",
                    "p99_latency_secs",
                    "shard",
                ],
            );
        }
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
    }

    #[test]
    fn shard_sizes_block_is_stable_and_round_trips() {
        let value = shard_sizes_json(&[(10, 100), (7, 70), (13, 130)]);
        let rendered = value.to_string();
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        let shards = value.as_array().expect("array");
        assert_eq!(shards.len(), 3);
        assert_eq!(shards[1].get("posts").and_then(Value::as_u64), Some(7));
        assert_eq!(shards[2].get("comments").and_then(Value::as_u64), Some(130));
        // lexicographic: comments < posts < shard
        assert_field_order(&shards[0].to_string(), &["comments", "posts", "shard"]);
    }

    #[test]
    fn router_stats_block_is_stable_and_round_trips() {
        let value = router_stats_json(ShardRouterStats {
            routed_operations: 1,
            broadcast_deliveries: 2,
            friendship_deliveries: 3,
            imported_boundary_edges: 4,
        });
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "broadcast_deliveries",
                "friendship_deliveries",
                "imported_boundary_edges",
                "routed_operations",
            ],
        );
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("routed_operations").and_then(Value::as_u64),
            Some(1)
        );
    }

    #[test]
    fn rebalance_block_is_stable_and_round_trips() {
        let value = rebalance_stats_json(RebalanceStats {
            checks: 5,
            migrations: 2,
            migrated_comments: 40,
            migrated_likes: 17,
        });
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "checks",
                "migrated_comments",
                "migrated_likes",
                "migrations",
            ],
        );
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("migrations").and_then(Value::as_u64), Some(2));
    }

    #[test]
    fn pipeline_block_is_stable_and_round_trips() {
        let stats = PipelineStats {
            queue_depth: 4,
            shards: 2,
            ingest_backpressure: 5,
            route_backpressure: 6,
            apply_backpressure: 7,
            max_watermark_lag: 3,
            ..PipelineStats::default()
        };
        let value = pipeline_stats_json(&stats);
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "apply_backpressure",
                "ingest_backpressure",
                "max_watermark_lag",
                "queue_depth",
                "route_backpressure",
            ],
        );
        // no recovery block unless recovery ran
        assert!(!rendered.contains("recovery"), "{rendered}");
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("max_watermark_lag").and_then(Value::as_u64),
            Some(3)
        );
    }

    #[test]
    fn recovery_block_is_stable_and_round_trips() {
        let stats = RecoveryStats {
            crashes: 2,
            restores: 2,
            replayed_batches: 9,
            checkpoints: 12,
            checkpoint_bytes: 4096,
            max_restore_secs: 0.125,
        };
        let value = recovery_stats_json(stats);
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "checkpoint_bytes",
                "checkpoints",
                "crashes",
                "max_restore_secs",
                "replayed_batches",
                "restores",
            ],
        );
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(parsed.get("crashes").and_then(Value::as_u64), Some(2));

        // and nested under the pipeline block when recovery ran
        let pipeline = PipelineStats {
            recovery: Some(stats),
            ..PipelineStats::default()
        };
        let rendered = pipeline_stats_json(&pipeline).to_string();
        assert!(rendered.contains("\"recovery\":{"), "{rendered}");
        assert!(rendered.contains("\"replayed_batches\":9"), "{rendered}");
    }

    #[test]
    fn reshard_block_is_stable_and_round_trips() {
        let stats = ReshardStats {
            at_seq: 6,
            from_shards: 2,
            to_shards: 4,
            drain_secs: 0.0105,
            split_secs: 0.0255,
            respawn_secs: 0.0015,
            moved_comments: 123,
        };
        let value = reshard_stats_json(&stats);
        let rendered = value.to_string();
        assert_field_order(
            &rendered,
            &[
                "at_seq",
                "drain_ms",
                "from_shards",
                "moved_comments",
                "respawn_ms",
                "split_ms",
                "to_shards",
            ],
        );
        let parsed: Value = serde_json::from_str(&rendered).expect("round trip");
        assert_eq!(parsed, value);
        assert_eq!(
            parsed.get("moved_comments").and_then(Value::as_u64),
            Some(123)
        );

        // nested as an array under the pipeline block, in firing order
        let pipeline = PipelineStats {
            reshards: vec![
                stats.clone(),
                ReshardStats {
                    at_seq: 9,
                    from_shards: 4,
                    to_shards: 3,
                    ..ReshardStats::default()
                },
            ],
            ..PipelineStats::default()
        };
        let rendered = pipeline_stats_json(&pipeline).to_string();
        assert!(rendered.contains("\"reshards\":[{"), "{rendered}");
        assert!(rendered.contains("\"at_seq\":6"), "{rendered}");
        assert!(rendered.contains("\"at_seq\":9"), "{rendered}");
        // and absent entirely when no barrier fired
        let no_reshard = pipeline_stats_json(&PipelineStats::default()).to_string();
        assert!(!no_reshard.contains("reshards"), "{no_reshard}");
    }
}
