//! The registry of tool variants evaluated in the paper's Figure 5, plus thread-pool
//! control for the multi-threaded series.

use nmf_baseline::{NmfBatch, NmfIncremental};
use ttc_social_media::model::Query;
use ttc_social_media::solution::Solution;
use ttc_social_media::{GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc};

/// One tool variant (a line of Figure 5).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ToolVariant {
    /// GraphBLAS full recomputation, serial kernels.
    GraphBlasBatch,
    /// GraphBLAS incremental maintenance, serial kernels.
    GraphBlasIncremental,
    /// GraphBLAS full recomputation with rayon kernels (run it inside an 8-thread
    /// pool to reproduce the paper's "8 threads" series).
    GraphBlasBatchParallel,
    /// GraphBLAS incremental maintenance with rayon kernels.
    GraphBlasIncrementalParallel,
    /// GraphBLAS incremental maintenance with the future-work incremental connected
    /// components backend (Q2 only; falls back to the FastSV variant for Q1).
    GraphBlasIncrementalCc,
    /// Reference baseline, full recomputation.
    NmfBatch,
    /// Reference baseline, dependency-record propagation.
    NmfIncremental,
}

impl ToolVariant {
    /// Display label matching the legend of Figure 5.
    pub fn label(&self) -> &'static str {
        match self {
            ToolVariant::GraphBlasBatch => "GraphBLAS Batch",
            ToolVariant::GraphBlasIncremental => "GraphBLAS Incremental",
            ToolVariant::GraphBlasBatchParallel => "GraphBLAS Batch (8 threads)",
            ToolVariant::GraphBlasIncrementalParallel => "GraphBLAS Incremental (8 threads)",
            ToolVariant::GraphBlasIncrementalCc => "GraphBLAS Incremental (incremental CC)",
            ToolVariant::NmfBatch => "NMF Batch",
            ToolVariant::NmfIncremental => "NMF Incremental",
        }
    }

    /// Whether this variant runs its kernels on the rayon pool.
    pub fn is_parallel(&self) -> bool {
        matches!(
            self,
            ToolVariant::GraphBlasBatchParallel | ToolVariant::GraphBlasIncrementalParallel
        )
    }

    /// Number of worker threads this variant should be measured with (the paper uses
    /// 8 threads for the parallel series and 1 otherwise).
    pub fn thread_count(&self) -> usize {
        if self.is_parallel() {
            8
        } else {
            1
        }
    }
}

/// The six tool variants plotted in Figure 5 of the paper.
pub const FIGURE5_VARIANTS: &[ToolVariant] = &[
    ToolVariant::GraphBlasBatch,
    ToolVariant::GraphBlasIncremental,
    ToolVariant::GraphBlasBatchParallel,
    ToolVariant::GraphBlasIncrementalParallel,
    ToolVariant::NmfBatch,
    ToolVariant::NmfIncremental,
];

/// All variants known to the harness (Figure 5 plus the future-work ablation).
pub const ALL_VARIANTS: &[ToolVariant] = &[
    ToolVariant::GraphBlasBatch,
    ToolVariant::GraphBlasIncremental,
    ToolVariant::GraphBlasBatchParallel,
    ToolVariant::GraphBlasIncrementalParallel,
    ToolVariant::GraphBlasIncrementalCc,
    ToolVariant::NmfBatch,
    ToolVariant::NmfIncremental,
];

/// Instantiate a fresh solution object for a variant and query.
pub fn build_solution(variant: ToolVariant, query: Query) -> Box<dyn Solution> {
    match variant {
        ToolVariant::GraphBlasBatch => Box::new(GraphBlasBatch::new(query, false)),
        ToolVariant::GraphBlasIncremental => Box::new(GraphBlasIncremental::new(query, false)),
        ToolVariant::GraphBlasBatchParallel => Box::new(GraphBlasBatch::new(query, true)),
        ToolVariant::GraphBlasIncrementalParallel => {
            Box::new(GraphBlasIncremental::new(query, true))
        }
        ToolVariant::GraphBlasIncrementalCc => match query {
            Query::Q2 => Box::new(GraphBlasIncrementalCc::new()),
            Query::Q1 => Box::new(GraphBlasIncremental::new(query, false)),
        },
        ToolVariant::NmfBatch => Box::new(NmfBatch::new(query)),
        ToolVariant::NmfIncremental => Box::new(NmfIncremental::new(query)),
    }
}

/// Run `f` inside a rayon thread pool of `threads` workers (the paper measures the
/// parallel variants with 8 threads and the serial ones effectively with 1).
pub fn run_in_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads.max(1))
        .build()
        .expect("failed to build rayon pool"); // lint: allow(panic) — a pool build failure at startup is unrecoverable configuration error
    pool.install(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure5_legend() {
        assert_eq!(ToolVariant::GraphBlasBatch.label(), "GraphBLAS Batch");
        assert_eq!(
            ToolVariant::GraphBlasIncrementalParallel.label(),
            "GraphBLAS Incremental (8 threads)"
        );
        assert_eq!(ToolVariant::NmfIncremental.label(), "NMF Incremental");
        assert_eq!(FIGURE5_VARIANTS.len(), 6);
        assert_eq!(ALL_VARIANTS.len(), 7);
    }

    #[test]
    fn thread_counts() {
        assert_eq!(ToolVariant::GraphBlasBatch.thread_count(), 1);
        assert_eq!(ToolVariant::GraphBlasBatchParallel.thread_count(), 8);
        assert!(ToolVariant::GraphBlasIncrementalParallel.is_parallel());
        assert!(!ToolVariant::NmfBatch.is_parallel());
    }

    #[test]
    fn build_solution_produces_every_variant_for_both_queries() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(301));
        let mut reference: Option<Vec<String>> = None;
        for &query in &[Query::Q1, Query::Q2] {
            for &variant in ALL_VARIANTS {
                let mut solution = build_solution(variant, query);
                let results =
                    ttc_social_media::solution::run_solution(solution.as_mut(), &workload);
                assert_eq!(results.len(), workload.changesets.len() + 1);
                if query == Query::Q1 {
                    if variant == ToolVariant::GraphBlasBatch {
                        reference = Some(results);
                    } else if let Some(reference) = &reference {
                        assert_eq!(&results, reference, "variant {variant:?} disagrees");
                    }
                }
            }
        }
    }

    #[test]
    fn run_in_pool_controls_thread_count() {
        let threads = run_in_pool(3, rayon::current_num_threads);
        assert_eq!(threads, 3);
        let one = run_in_pool(1, rayon::current_num_threads);
        assert_eq!(one, 1);
    }
}
