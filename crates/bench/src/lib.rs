//! Benchmark harness utilities: the tool-variant registry of the paper's Figure 5, the
//! two benchmark phases, timing with geometric means, and thread-pool control for the
//! "8 threads" series.
//!
//! The original evaluation uses the TTC 2018 benchmark framework: for each tool and
//! scale factor it measures (a) the *load and initial evaluation* phase and (b) the
//! *update and reevaluation* phase (applying every changeset and re-running the
//! query), repeats each run 5 times and reports the geometric mean. This crate
//! re-implements that protocol.

#![forbid(unsafe_code)]

pub mod harness;
pub mod registry;
pub mod report;
pub mod spgemm_steps;
pub mod workload;

pub use harness::{geometric_mean, measure_workload, PhaseTimings};
pub use registry::{build_solution, run_in_pool, ToolVariant, ALL_VARIANTS, FIGURE5_VARIANTS};
pub use spgemm_steps::{record_spgemm_steps, SpgemmStep};
pub use workload::{ArrivalPattern, ReadMix, ReadOp, ServeWorkload};
