//! Criterion benchmark of the streaming update driver: per-micro-batch update cost
//! of the batch vs incremental solutions under a mixed insert/retract stream.
//!
//! Complements the `stream_throughput` binary (which reports sustained
//! updates/second and latency percentiles as JSON): here each measurement is one
//! driver run over a fixed number of pre-generated micro-batches, so the criterion
//! numbers are comparable across commits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_scale_factor, ChangeSet};
use ttc_social_media::model::Query;
use ttc_social_media::solution::{GraphBlasBatch, GraphBlasIncremental};
use ttc_social_media::stream::StreamDriver;

fn batches_for(sf: u64, count: usize) -> (datagen::SocialNetwork, Vec<ChangeSet>) {
    let network = generate_scale_factor(sf).initial;
    let stream = UpdateStream::new(
        &network,
        StreamConfig {
            seed: 0xbead,
            batch_size: 32,
            ..StreamConfig::default()
        },
    );
    let batches = stream.take(count).collect();
    (network, batches)
}

fn bench_stream_updates(c: &mut Criterion) {
    for &sf in &[1u64, 4] {
        let (network, batches) = batches_for(sf, 20);
        let mut group = c.benchmark_group(format!("stream/sf{sf}/20x32ops"));
        group.sample_size(10);
        for query in [Query::Q1, Query::Q2] {
            group.bench_with_input(
                BenchmarkId::new("incremental", format!("{query:?}")),
                &query,
                |b, &query| {
                    b.iter(|| {
                        let mut solution = GraphBlasIncremental::new(query, false);
                        StreamDriver::default().run(
                            &mut solution,
                            &network,
                            batches.iter().cloned(),
                            batches.len(),
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new("batch", format!("{query:?}")),
                &query,
                |b, &query| {
                    b.iter(|| {
                        let mut solution = GraphBlasBatch::new(query, false);
                        StreamDriver::default().run(
                            &mut solution,
                            &network,
                            batches.iter().cloned(),
                            batches.len(),
                        )
                    })
                },
            );
        }
        group.finish();
    }
}

fn bench_generation_only(c: &mut Criterion) {
    let network = generate_scale_factor(1).initial;
    let mut group = c.benchmark_group("stream/generation");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("100x64ops"), &(), |b, _| {
        b.iter(|| {
            let stream = UpdateStream::new(&network, StreamConfig::default());
            let ops: usize = stream.take(100).map(|b| b.operations.len()).sum();
            assert!(ops > 0);
            ops
        })
    });
    group.finish();
}

criterion_group!(benches, bench_stream_updates, bench_generation_only);
criterion_main!(benches);
