//! Ablation B: how much does the affected-comment pruning (Steps 1–5 of the paper's
//! incremental Q2 algorithm) actually save, compared to re-scoring every comment after
//! each changeset?
//!
//! Three measurements per scale factor and changeset replay:
//! * `affected_detection_only` — just the affected-set computation (the `NewFriends`
//!   incidence trick),
//! * `rescore_affected` — detection + re-scoring only the affected comments (the
//!   paper's algorithm),
//! * `rescore_all` — re-scoring every comment (no pruning; what the batch variant
//!   effectively does for the scoring phase).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::generate_scale_factor;
use ttc_social_media::q2::{affected_comments, comment_score};
use ttc_social_media::{apply_changeset, SocialGraph};

fn bench_affected_set(c: &mut Criterion) {
    for &sf in &[1u64, 4, 16] {
        let workload = generate_scale_factor(sf);

        // Pre-apply the changesets once, recording (graph state, delta) pairs so the
        // benchmark bodies only measure detection / scoring.
        let mut graph = SocialGraph::from_network(&workload.initial);
        let mut steps = Vec::new();
        for changeset in &workload.changesets {
            let delta = apply_changeset(&mut graph, changeset);
            steps.push((graph.clone(), delta));
        }

        let mut group = c.benchmark_group(format!("ablation_affected_set/sf{sf}"));
        group.sample_size(10);

        group.bench_with_input(
            BenchmarkId::new("affected_detection_only", sf),
            &sf,
            |b, _| {
                b.iter(|| {
                    let mut total = 0usize;
                    for (g, delta) in &steps {
                        total += affected_comments(g, delta, false).len();
                    }
                    total
                })
            },
        );

        group.bench_with_input(BenchmarkId::new("rescore_affected", sf), &sf, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for (g, delta) in &steps {
                    for comment in affected_comments(g, delta, false) {
                        total += comment_score(g, comment);
                    }
                }
                total
            })
        });

        group.bench_with_input(BenchmarkId::new("rescore_all", sf), &sf, |b, _| {
            b.iter(|| {
                let mut total = 0u64;
                for (g, _) in &steps {
                    for comment in 0..g.comment_count() {
                        total += comment_score(g, comment);
                    }
                }
                total
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_affected_set);
criterion_main!(benches);
