//! Micro-benchmarks of the LAGraph-style algorithm layer on the synthetic friendship
//! graph (not a figure of the paper; quantifies the cost of the algorithm building
//! blocks the Q2 pipeline is assembled from, plus the extended algorithm set).

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::generate_scale_factor;
use graphblas::ops_traits::First;
use graphblas::Matrix;
use lagraph::{
    bfs_levels, connected_components, kcore_decomposition, label_propagation, pagerank, sssp_hops,
    triangle_count, triangle_count_par, LabelPropagationOptions, PageRankOptions, UnionFind,
};

/// Build the symmetric friendship adjacency matrix of a workload's initial network,
/// plus the raw edge list re-indexed to dense vertex ids.
fn friendship_matrix(scale_factor: u64) -> (Matrix<u64>, Vec<(usize, usize)>) {
    let workload = generate_scale_factor(scale_factor);
    let network = &workload.initial;
    let user_index: HashMap<u64, usize> = network
        .users
        .iter()
        .enumerate()
        .map(|(i, u)| (u.id, i))
        .collect();
    let n = network.users.len();
    let mut edges = Vec::with_capacity(network.friendships.len());
    let mut tuples = Vec::with_capacity(network.friendships.len() * 2);
    for &(a, b) in &network.friendships {
        let (ia, ib) = (user_index[&a], user_index[&b]);
        edges.push((ia, ib));
        tuples.push((ia, ib, 1u64));
        tuples.push((ib, ia, 1u64));
    }
    (
        Matrix::from_tuples(n, n, &tuples, First::new()).expect("indices in range"),
        edges,
    )
}

fn bench_connected_components(c: &mut Criterion) {
    let mut group = c.benchmark_group("lagraph/connected_components");
    group.sample_size(10);
    for &sf in &[1u64, 4] {
        let (friends, edges) = friendship_matrix(sf);
        group.bench_with_input(BenchmarkId::new("fastsv", sf), &sf, |b, _| {
            b.iter(|| connected_components(&friends).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("unionfind", sf), &sf, |b, _| {
            b.iter(|| {
                let mut uf = UnionFind::new(friends.nrows());
                for &(a, bb) in &edges {
                    uf.union(a, bb);
                }
                uf.component_count()
            })
        });
    }
    group.finish();
}

fn bench_algorithm_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("lagraph/algorithms");
    group.sample_size(10);
    for &sf in &[1u64, 4] {
        let (friends, _) = friendship_matrix(sf);
        group.bench_with_input(BenchmarkId::new("pagerank", sf), &sf, |b, _| {
            b.iter(|| pagerank(&friends, PageRankOptions::default()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("triangle_count", sf), &sf, |b, _| {
            b.iter(|| triangle_count(&friends).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("triangle_count_par", sf), &sf, |b, _| {
            b.iter(|| triangle_count_par(&friends).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("bfs", sf), &sf, |b, _| {
            b.iter(|| bfs_levels(&friends, 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sssp_hops", sf), &sf, |b, _| {
            b.iter(|| sssp_hops(&friends, 0).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("kcore", sf), &sf, |b, _| {
            b.iter(|| kcore_decomposition(&friends).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("label_propagation", sf), &sf, |b, _| {
            b.iter(|| label_propagation(&friends, LabelPropagationOptions::default()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_connected_components, bench_algorithm_suite);
criterion_main!(benches);
