//! Ablation C (the paper's future-work item 1): how the matrix storage format affects
//! update ingestion. Compares three ways of applying a stream of single-edge inserts:
//!
//! * `csr_insert_tuples` — batch-merging each changeset into the CSR structure (what
//!   the solution's `apply_changeset` does),
//! * `csr_set_element` — naive per-element CSR insertion (shifts the tail arrays),
//! * `dynamic_matrix` — the updatable [`graphblas::DynamicMatrix`] format with
//!   per-row delta buffers and periodic compaction (a CPU-side stand-in for
//!   faimGraph / Hornet).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas::ops_traits::First;
use graphblas::{DynamicMatrix, Matrix};

/// Deterministic pseudo-random edge stream.
fn edge_stream(n: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..count).map(|_| (next() % n, next() % n)).collect()
}

fn base_matrix(n: usize) -> Matrix<u64> {
    let tuples: Vec<(usize, usize, u64)> = edge_stream(n, 4 * n, 3)
        .into_iter()
        .map(|(r, c)| (r, c, 1))
        .collect();
    Matrix::from_tuples(n, n, &tuples, First::new()).expect("indices in range")
}

fn bench_update_ingestion(c: &mut Criterion) {
    for &n in &[2_000usize, 10_000] {
        let base = base_matrix(n);
        let updates = edge_stream(n, 2_000, 17);
        let mut group = c.benchmark_group(format!("ablation_dynamic_matrix/n{n}"));
        group.sample_size(10);

        group.bench_with_input(BenchmarkId::new("csr_insert_tuples", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                // batches of ~100 inserts, like the case study's changesets
                for chunk in updates.chunks(100) {
                    let tuples: Vec<(usize, usize, u64)> =
                        chunk.iter().map(|&(r, c)| (r, c, 1)).collect();
                    m.insert_tuples(&tuples, First::new()).unwrap();
                }
                m.nvals()
            })
        });

        group.bench_with_input(BenchmarkId::new("csr_set_element", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                for &(r, c) in &updates {
                    m.set(r, c, 1).unwrap();
                }
                m.nvals()
            })
        });

        group.bench_with_input(BenchmarkId::new("dynamic_matrix", n), &n, |b, _| {
            b.iter(|| {
                let mut m = DynamicMatrix::from_matrix(base.clone());
                for &(r, c) in &updates {
                    m.set(r, c, 1).unwrap();
                    m.maybe_compact();
                }
                m.nvals()
            })
        });

        group.finish();
    }
}

criterion_group!(benches, bench_update_ingestion);
criterion_main!(benches);
