//! Ablation C (the paper's future-work item 1): how the matrix storage format affects
//! update ingestion. Compares four ways of applying a stream of single-edge inserts:
//!
//! * `csr_insert_tuples` — batch-merging each changeset into the CSR structure (what
//!   the solution's `apply_changeset` does),
//! * `csr_set_element` — naive per-element CSR insertion (shifts the tail arrays),
//! * `dynamic_matrix_sorted` — the updatable [`graphblas::DynamicMatrix`] with the
//!   original dense sorted delta rows (every insert shifts the row tail),
//! * `dynamic_matrix_gapped` — the same format with gap-slot delta rows
//!   ([`graphblas::GappedList`]): inserts shift only to the nearest slack slot, wide
//!   rows carry a learned position model (a CPU-side stand-in for faimGraph /
//!   Hornet's per-block slack).
//!
//! Set `ABLATION_DYNMAT_QUICK` to bench the small size only (the bench-gate / CI
//! smoke configuration). The gapped variant also prints its delta occupancy once per
//! size, so the slack overhead behind the speedup is visible in the report.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas::ops_traits::First;
use graphblas::{DeltaLayout, DynamicMatrix, Matrix};

/// Deterministic pseudo-random edge stream.
fn edge_stream(n: usize, count: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    (0..count).map(|_| (next() % n, next() % n)).collect()
}

fn base_matrix(n: usize) -> Matrix<u64> {
    let tuples: Vec<(usize, usize, u64)> = edge_stream(n, 4 * n, 3)
        .into_iter()
        .map(|(r, c)| (r, c, 1))
        .collect();
    Matrix::from_tuples(n, n, &tuples, First::new()).expect("indices in range")
}

/// Replay the update stream through a [`DynamicMatrix`] with the given delta layout.
fn ingest_dynamic(base: &Matrix<u64>, updates: &[(usize, usize)], layout: DeltaLayout) -> usize {
    let mut m = DynamicMatrix::with_layout(base.clone(), layout);
    for &(r, c) in updates {
        m.set(r, c, 1).unwrap();
        m.maybe_compact();
    }
    m.nvals()
}

fn bench_update_ingestion(c: &mut Criterion) {
    let sizes: &[usize] = if std::env::var_os("ABLATION_DYNMAT_QUICK").is_some() {
        &[2_000]
    } else {
        &[2_000, 10_000]
    };
    for &n in sizes {
        let base = base_matrix(n);
        let updates = edge_stream(n, 2_000, 17);

        // report the gapped layout's delta occupancy (live / physical slots) right
        // before the compaction threshold, so the slack cost is on record
        {
            let mut probe = DynamicMatrix::with_layout(base.clone(), DeltaLayout::Gapped);
            for &(r, c) in &updates {
                probe.set(r, c, 1).unwrap();
                if probe.maybe_compact() {
                    break;
                }
            }
            let stats = probe.stats();
            eprintln!(
                "ablation_dynamic_matrix/n{n}: gapped delta occupancy {:.2} \
                 ({} live / {} slots), {} compaction(s)",
                stats.delta_occupancy(),
                stats.delta_live,
                stats.delta_slots,
                stats.compactions
            );
        }

        let mut group = c.benchmark_group(format!("ablation_dynamic_matrix/n{n}"));
        group.sample_size(10);

        group.bench_with_input(BenchmarkId::new("csr_insert_tuples", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                // batches of ~100 inserts, like the case study's changesets
                for chunk in updates.chunks(100) {
                    let tuples: Vec<(usize, usize, u64)> =
                        chunk.iter().map(|&(r, c)| (r, c, 1)).collect();
                    m.insert_tuples(&tuples, First::new()).unwrap();
                }
                m.nvals()
            })
        });

        group.bench_with_input(BenchmarkId::new("csr_set_element", n), &n, |b, _| {
            b.iter(|| {
                let mut m = base.clone();
                for &(r, c) in &updates {
                    m.set(r, c, 1).unwrap();
                }
                m.nvals()
            })
        });

        group.bench_with_input(BenchmarkId::new("dynamic_matrix_sorted", n), &n, |b, _| {
            b.iter(|| ingest_dynamic(&base, &updates, DeltaLayout::Sorted))
        });

        group.bench_with_input(BenchmarkId::new("dynamic_matrix_gapped", n), &n, |b, _| {
            b.iter(|| ingest_dynamic(&base, &updates, DeltaLayout::Gapped))
        });

        group.finish();
    }
}

criterion_group!(benches, bench_update_ingestion);
criterion_main!(benches);
