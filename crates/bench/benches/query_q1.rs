//! Criterion benchmark for Q1 (Figure 5, left column): the load-and-initial-evaluation
//! and update-and-reevaluation phases of every tool variant, on small scale factors
//! (the full sweep is produced by the `figure5` binary).

use bench::{build_solution, run_in_pool, ToolVariant, FIGURE5_VARIANTS};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::generate_scale_factor;
use ttc_social_media::model::Query;

fn bench_q1_phases(c: &mut Criterion) {
    for &sf in &[1u64, 4] {
        let workload = generate_scale_factor(sf);

        let mut group = c.benchmark_group(format!("q1/sf{sf}/load_and_initial"));
        group.sample_size(10);
        for &variant in FIGURE5_VARIANTS {
            group.bench_with_input(
                BenchmarkId::from_parameter(variant.label()),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        run_in_pool(variant.thread_count(), || {
                            let mut solution = build_solution(variant, Query::Q1);
                            solution.load_and_initial(&workload.initial)
                        })
                    })
                },
            );
        }
        group.finish();

        let mut group = c.benchmark_group(format!("q1/sf{sf}/update_and_reevaluation"));
        group.sample_size(10);
        for &variant in FIGURE5_VARIANTS {
            group.bench_with_input(
                BenchmarkId::from_parameter(variant.label()),
                &variant,
                |b, &variant| {
                    b.iter(|| {
                        run_in_pool(variant.thread_count(), || {
                            let mut solution = build_solution(variant, Query::Q1);
                            solution.load_and_initial(&workload.initial);
                            let mut last = String::new();
                            for changeset in &workload.changesets {
                                last = solution.update_and_reevaluate(changeset);
                            }
                            last
                        })
                    })
                },
            );
        }
        group.finish();
    }
    let _ = ToolVariant::GraphBlasIncrementalCc;
}

criterion_group!(benches, bench_q1_phases);
criterion_main!(benches);
