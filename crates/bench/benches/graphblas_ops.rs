//! Micro-benchmarks of the GraphBLAS substrate kernels (not a figure of the paper, but
//! the foundation its performance rests on): serial vs rayon-parallel `mxm`, `mxv` and
//! row reduction, plus `select` and `transpose`, on synthetic sparse matrices shaped
//! like the case study's (rectangular, ~4 non-zeros per row).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas::ops::{
    mxm, mxm_masked, mxm_masked_par, mxm_par, mxv, mxv_par, reduce_matrix_rows,
    reduce_matrix_rows_par, select_matrix,
};
use graphblas::ops_traits::{First, ValueGt};
use graphblas::semiring::stock;
use graphblas::{Matrix, MatrixMask, Vector};

/// Deterministic pseudo-random sparse matrix with ~`nnz_per_row` entries per row.
fn synthetic_matrix(nrows: usize, ncols: usize, nnz_per_row: usize, seed: u64) -> Matrix<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let mut tuples = Vec::with_capacity(nrows * nnz_per_row);
    for r in 0..nrows {
        for _ in 0..nnz_per_row {
            tuples.push((r, next() % ncols, 1u64 + (next() % 7) as u64));
        }
    }
    Matrix::from_tuples(nrows, ncols, &tuples, First::new()).expect("indices in range")
}

fn synthetic_vector(size: usize, nnz: usize, seed: u64) -> Vector<u64> {
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    let tuples: Vec<(usize, u64)> = (0..nnz).map(|_| (next() % size, 1)).collect();
    Vector::from_tuples(size, &tuples, First::new()).expect("indices in range")
}

fn bench_mxv(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxv");
    group.sample_size(20);
    for &n in &[2_000usize, 20_000] {
        let a = synthetic_matrix(n, n, 4, 7);
        let u = synthetic_vector(n, n / 2, 11);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| mxv(&a, &u, stock::plus_times::<u64>()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| mxv_par(&a, &u, stock::plus_times::<u64>()).unwrap())
        });
    }
    group.finish();
}

fn bench_mxm(c: &mut Criterion) {
    let mut group = c.benchmark_group("mxm");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let a = synthetic_matrix(n, n, 4, 13);
        let b_mat = synthetic_matrix(n, n, 4, 17);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| mxm(&a, &b_mat, stock::plus_times::<u64>()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, _| {
            b.iter(|| mxm_par(&a, &b_mat, stock::plus_times::<u64>()).unwrap())
        });
        // masked with the A pattern (triangle-count shape): push-down skips every
        // product outside an existing edge
        let mask_matrix = synthetic_matrix(n, n, 4, 19);
        group.bench_with_input(BenchmarkId::new("masked/serial", n), &n, |b, _| {
            let mask = MatrixMask::structural(&mask_matrix);
            b.iter(|| mxm_masked(&mask, &a, &b_mat, stock::plus_times::<u64>()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("masked/parallel", n), &n, |b, _| {
            let mask = MatrixMask::structural(&mask_matrix);
            b.iter(|| mxm_masked_par(&mask, &a, &b_mat, stock::plus_times::<u64>()).unwrap())
        });
    }
    group.finish();
}

fn bench_reduce_and_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_select_transpose");
    group.sample_size(20);
    let n = 50_000;
    let a = synthetic_matrix(n, n, 4, 23);
    group.bench_function("reduce_rows/serial", |b| {
        b.iter(|| reduce_matrix_rows(&a, graphblas::monoid::stock::plus::<u64>()))
    });
    group.bench_function("reduce_rows/parallel", |b| {
        b.iter(|| reduce_matrix_rows_par(&a, graphblas::monoid::stock::plus::<u64>()))
    });
    group.bench_function("select_value_gt", |b| {
        b.iter(|| select_matrix(&a, ValueGt::new(3u64)))
    });
    group.bench_function("transpose", |b| b.iter(|| a.transpose()));
    group.finish();
}

criterion_group!(benches, bench_mxv, bench_mxm, bench_reduce_and_select);
criterion_main!(benches);
