//! Ablation A (the paper's future-work item 2): Q2 incremental maintenance with the
//! affected-comments + FastSV re-scoring of the paper vs. a fully incremental
//! connected-components backend (union–find per comment, O(1) score reads).
//!
//! The interesting quantity is the update-and-reevaluation time; initial evaluation is
//! also reported because the incremental-CC variant pays a higher setup cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::generate_scale_factor;
use ttc_social_media::model::Query;
use ttc_social_media::solution::Solution;
use ttc_social_media::{GraphBlasIncremental, GraphBlasIncrementalCc};

fn bench_ablation(c: &mut Criterion) {
    for &sf in &[1u64, 4, 16] {
        let workload = generate_scale_factor(sf);

        let mut group = c.benchmark_group(format!("ablation_incremental_cc/sf{sf}"));
        group.sample_size(10);

        group.bench_with_input(
            BenchmarkId::new("fastsv_recompute/update", sf),
            &sf,
            |b, _| {
                b.iter(|| {
                    let mut solution = GraphBlasIncremental::new(Query::Q2, false);
                    solution.load_and_initial(&workload.initial);
                    let mut last = String::new();
                    for changeset in &workload.changesets {
                        last = solution.update_and_reevaluate(changeset);
                    }
                    last
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental_cc/update", sf),
            &sf,
            |b, _| {
                b.iter(|| {
                    let mut solution = GraphBlasIncrementalCc::new();
                    solution.load_and_initial(&workload.initial);
                    let mut last = String::new();
                    for changeset in &workload.changesets {
                        last = solution.update_and_reevaluate(changeset);
                    }
                    last
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("fastsv_recompute/initial", sf),
            &sf,
            |b, _| {
                b.iter(|| {
                    let mut solution = GraphBlasIncremental::new(Query::Q2, false);
                    solution.load_and_initial(&workload.initial)
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("incremental_cc/initial", sf),
            &sf,
            |b, _| {
                b.iter(|| {
                    let mut solution = GraphBlasIncrementalCc::new();
                    solution.load_and_initial(&workload.initial)
                })
            },
        );

        group.finish();
    }
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
