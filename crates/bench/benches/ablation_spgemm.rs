//! Ablation C: SpGEMM accumulation strategy and mask push-down, on the Q2
//! affected-set workload (`AC = Likes′ ⊕.⊗ NewFriendsIncidence`, Steps 1–4 of the
//! paper's Fig. 4b) at sf1.
//!
//! Two axes, four measurements per changeset replay:
//! * **accumulation** — the retained gather–sort–combine reference kernel
//!   (`mxm_reference`) vs. the SPA/merge Gustavson kernel (`mxm`) on the full
//!   product;
//! * **masking** — materialise-then-filter (`mxm_masked_postfilter`: the pre-PR-2
//!   behaviour of every masked multiply) vs. mask push-down (`mxm_masked`), with the
//!   mask fixed to the cells the detection actually consumes (the `AC = 2` cells
//!   whose row reduction yields the affected comments). The masked kernels compute
//!   the same answer; push-down skips the partial products for every other cell
//!   before the multiplication happens.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datagen::generate_scale_factor;
use graphblas::ops::{mxm, mxm_masked, mxm_masked_postfilter, mxm_reference, select_matrix};
use graphblas::ops_traits::ValueEq;
use graphblas::semiring::stock as semirings;
use graphblas::{Matrix, MatrixMask};
use ttc_social_media::{apply_changeset, SocialGraph};

/// One replayed detection step: the graph's `Likes` matrix and the friendship
/// incidence matrix of the changeset, plus the mask of consumed (`AC = 2`) cells.
struct Step {
    likes: Matrix<u64>,
    incidence: Matrix<u64>,
    consumed: Matrix<u64>,
}

fn record_steps(sf: u64) -> Vec<Step> {
    let workload = generate_scale_factor(sf);
    let mut graph = SocialGraph::from_network(&workload.initial);
    let mut steps = Vec::new();
    for changeset in &workload.changesets {
        let delta = apply_changeset(&mut graph, changeset);
        if delta.new_friendships.is_empty() {
            continue;
        }
        let incidence = delta.new_friends_incidence(&graph);
        let ac = mxm(&graph.likes, &incidence, semirings::plus_times::<u64>())
            .expect("likes columns equal incidence rows");
        let consumed = select_matrix(&ac, ValueEq::new(2u64));
        steps.push(Step {
            likes: graph.likes.clone(),
            incidence,
            consumed,
        });
    }
    steps
}

fn bench_spgemm(c: &mut Criterion) {
    // quick mode for the bench gate: sf1 only (sf4's replay recording dominates
    // the wall clock and adds nothing to the regression signal)
    let scale_factors: &[u64] = if std::env::var_os("ABLATION_SPGEMM_QUICK").is_some() {
        &[1]
    } else {
        &[1, 4]
    };
    for &sf in scale_factors {
        bench_spgemm_at(c, sf);
    }
}

fn bench_spgemm_at(c: &mut Criterion, sf: u64) {
    let steps = record_steps(sf);
    assert!(
        !steps.is_empty(),
        "sf{sf} replay produced no friendship changesets"
    );

    let mut group = c.benchmark_group(format!("ablation_spgemm/sf{sf}"));
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("unmasked_gather_sort_combine", sf),
        &sf,
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for step in &steps {
                    total +=
                        mxm_reference(&step.likes, &step.incidence, semirings::plus_times::<u64>())
                            .unwrap()
                            .nvals();
                }
                total
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("unmasked_spa_gustavson", sf),
        &sf,
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for step in &steps {
                    total += mxm(&step.likes, &step.incidence, semirings::plus_times::<u64>())
                        .unwrap()
                        .nvals();
                }
                total
            })
        },
    );

    group.bench_with_input(BenchmarkId::new("masked_postfilter", sf), &sf, |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for step in &steps {
                let mask = MatrixMask::structural(&step.consumed);
                total += mxm_masked_postfilter(
                    &mask,
                    &step.likes,
                    &step.incidence,
                    semirings::plus_times::<u64>(),
                )
                .unwrap()
                .nvals();
            }
            total
        })
    });

    group.bench_with_input(BenchmarkId::new("masked_pushdown", sf), &sf, |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for step in &steps {
                let mask = MatrixMask::structural(&step.consumed);
                total += mxm_masked(
                    &mask,
                    &step.likes,
                    &step.incidence,
                    semirings::plus_times::<u64>(),
                )
                .unwrap()
                .nvals();
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
