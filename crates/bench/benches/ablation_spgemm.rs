//! Ablation C: SpGEMM accumulation strategy and mask push-down, on the Q2
//! affected-set workload (`AC = Likes′ ⊕.⊗ NewFriendsIncidence`, Steps 1–4 of the
//! paper's Fig. 4b) at sf1.
//!
//! Three axes, five measurements per changeset replay:
//! * **accumulation** — the retained gather–sort–combine reference kernel
//!   (`mxm_reference`) vs. the SPA/merge Gustavson kernel (`mxm`) on the full
//!   product;
//! * **masking** — materialise-then-filter (`mxm_masked_postfilter`: the pre-PR-2
//!   behaviour of every masked multiply) vs. mask push-down (`mxm_masked`), with the
//!   mask fixed to the cells the detection actually consumes (the `AC = 2` cells
//!   whose row reduction yields the affected comments). The masked kernels compute
//!   the same answer; push-down skips the partial products for every other cell
//!   before the multiplication happens;
//! * **accumulator layout** — the pre-stamp AoS accumulators
//!   (`mxm_masked_reference_spa`: `Option`-slot SPA + `bool`-flag mask filter with a
//!   reset walk) vs. the generation-stamped SoA accumulators the push-down kernel
//!   uses today. Same kernel control flow, only the workspace layout differs.

use bench::record_spgemm_steps;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphblas::ops::{
    mxm, mxm_masked, mxm_masked_postfilter, mxm_masked_reference_spa, mxm_reference,
};
use graphblas::semiring::stock as semirings;
use graphblas::MatrixMask;

fn bench_spgemm(c: &mut Criterion) {
    // quick mode for the bench gate: sf1 only (sf4's replay recording dominates
    // the wall clock and adds nothing to the regression signal)
    let scale_factors: &[u64] = if std::env::var_os("ABLATION_SPGEMM_QUICK").is_some() {
        &[1]
    } else {
        &[1, 4]
    };
    for &sf in scale_factors {
        bench_spgemm_at(c, sf);
    }
}

fn bench_spgemm_at(c: &mut Criterion, sf: u64) {
    let steps = record_spgemm_steps(sf);
    assert!(
        !steps.is_empty(),
        "sf{sf} replay produced no friendship changesets"
    );

    let mut group = c.benchmark_group(format!("ablation_spgemm/sf{sf}"));
    group.sample_size(10);

    group.bench_with_input(
        BenchmarkId::new("unmasked_gather_sort_combine", sf),
        &sf,
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for step in &steps {
                    total +=
                        mxm_reference(&step.likes, &step.incidence, semirings::plus_times::<u64>())
                            .unwrap()
                            .nvals();
                }
                total
            })
        },
    );

    group.bench_with_input(
        BenchmarkId::new("unmasked_spa_gustavson", sf),
        &sf,
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for step in &steps {
                    total += mxm(&step.likes, &step.incidence, semirings::plus_times::<u64>())
                        .unwrap()
                        .nvals();
                }
                total
            })
        },
    );

    group.bench_with_input(BenchmarkId::new("masked_postfilter", sf), &sf, |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for step in &steps {
                let mask = MatrixMask::structural(&step.consumed);
                total += mxm_masked_postfilter(
                    &mask,
                    &step.likes,
                    &step.incidence,
                    semirings::plus_times::<u64>(),
                )
                .unwrap()
                .nvals();
            }
            total
        })
    });

    group.bench_with_input(
        BenchmarkId::new("masked_pushdown_reference_spa", sf),
        &sf,
        |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for step in &steps {
                    let mask = MatrixMask::structural(&step.consumed);
                    total += mxm_masked_reference_spa(
                        &mask,
                        &step.likes,
                        &step.incidence,
                        semirings::plus_times::<u64>(),
                    )
                    .unwrap()
                    .nvals();
                }
                total
            })
        },
    );

    group.bench_with_input(BenchmarkId::new("masked_pushdown", sf), &sf, |b, _| {
        b.iter(|| {
            let mut total = 0usize;
            for step in &steps {
                let mask = MatrixMask::structural(&step.consumed);
                total += mxm_masked(
                    &mask,
                    &step.likes,
                    &step.incidence,
                    semirings::plus_times::<u64>(),
                )
                .unwrap()
                .nvals();
            }
            total
        })
    });

    group.finish();
}

criterion_group!(benches, bench_spgemm);
criterion_main!(benches);
