//! `--help` drift guard for the streaming benchmark binaries.
//!
//! Each binary's argument parser and its `--help` output are maintained by
//! hand; these tests pin them together by running the real binaries (Cargo
//! exposes their paths via `CARGO_BIN_EXE_*`) and asserting that every flag
//! the parser accepts is mentioned in the help text. Adding a flag to the
//! parser without documenting it — the drift this repo shipped before
//! `--help` existed — fails here, as does documenting the flag list in this
//! test without teaching the binary about it (the binary rejects unknown
//! flags with exit code 2, covered below).

use std::process::Command;

/// Every flag `stream_throughput`'s parser accepts.
const STREAM_THROUGHPUT_FLAGS: &[&str] = &[
    "--sf",
    "--batches",
    "--batch-size",
    "--warmup",
    "--seed",
    "--deletions",
    "--query",
    "--variant",
    "--threads",
    "--shards",
    "--partitioner",
    "--rebalance",
    "--hot-tree",
    "--pipeline",
    "--queue-depth",
    "--kill-shard",
    "--recover",
    "--checkpoint-every",
    "--reshard",
    "--checkpoint-dir",
    "--smoke",
    "--help",
];

/// Every flag `serve_throughput`'s parser accepts.
const SERVE_THROUGHPUT_FLAGS: &[&str] = &[
    "--sf",
    "--batches",
    "--batch-size",
    "--warmup",
    "--seed",
    "--deletions",
    "--query",
    "--shards",
    "--threads",
    "--workload",
    "--readers",
    "--smoke",
    "--help",
];

/// Every flag `figure5`'s parser accepts.
const FIGURE5_FLAGS: &[&str] = &[
    "--query", "--phase", "--max-sf", "--runs", "--json", "--help",
];

/// Every flag `table2`'s parser accepts.
const TABLE2_FLAGS: &[&str] = &["--max-sf", "--help"];

/// Every flag `ttc_benchmark`'s parser accepts.
const TTC_BENCHMARK_FLAGS: &[&str] = &["--sf", "--runs", "--query", "--tools", "--help"];

fn help_text(bin: &str) -> String {
    let output = Command::new(bin)
        .arg("--help")
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "--help must exit 0, got {:?}",
        output.status
    );
    String::from_utf8(output.stdout).expect("help is UTF-8")
}

#[test]
fn stream_throughput_help_mentions_every_accepted_flag() {
    let help = help_text(env!("CARGO_BIN_EXE_stream_throughput"));
    for flag in STREAM_THROUGHPUT_FLAGS {
        assert!(help.contains(flag), "`{flag}` missing from --help:\n{help}");
    }
}

#[test]
fn serve_throughput_help_mentions_every_accepted_flag() {
    let help = help_text(env!("CARGO_BIN_EXE_serve_throughput"));
    for flag in SERVE_THROUGHPUT_FLAGS {
        assert!(help.contains(flag), "`{flag}` missing from --help:\n{help}");
    }
}

#[test]
fn figure5_help_mentions_every_accepted_flag() {
    let help = help_text(env!("CARGO_BIN_EXE_figure5"));
    for flag in FIGURE5_FLAGS {
        assert!(help.contains(flag), "`{flag}` missing from --help:\n{help}");
    }
}

#[test]
fn table2_help_mentions_every_accepted_flag() {
    let help = help_text(env!("CARGO_BIN_EXE_table2"));
    for flag in TABLE2_FLAGS {
        assert!(help.contains(flag), "`{flag}` missing from --help:\n{help}");
    }
}

#[test]
fn ttc_benchmark_help_mentions_every_accepted_flag() {
    let help = help_text(env!("CARGO_BIN_EXE_ttc_benchmark"));
    for flag in TTC_BENCHMARK_FLAGS {
        assert!(help.contains(flag), "`{flag}` missing from --help:\n{help}");
    }
}

#[test]
fn unknown_flags_are_rejected_with_a_help_hint() {
    for bin in [
        env!("CARGO_BIN_EXE_stream_throughput"),
        env!("CARGO_BIN_EXE_serve_throughput"),
        env!("CARGO_BIN_EXE_figure5"),
        env!("CARGO_BIN_EXE_table2"),
        env!("CARGO_BIN_EXE_ttc_benchmark"),
    ] {
        let output = Command::new(bin)
            .arg("--no-such-flag")
            .output()
            .expect("binary runs");
        assert_eq!(output.status.code(), Some(2), "unknown flag must exit 2");
        let err = String::from_utf8_lossy(&output.stderr);
        assert!(
            err.contains("--help"),
            "rejection should point at --help: {err}"
        );
    }
}
