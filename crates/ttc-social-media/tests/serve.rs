//! Integration tests of the epoch-published read path (`ttc_social_media::serve`)
//! through both engines.
//!
//! Every consistency claim in `DESIGN.md` §8's per-engine table is backed by a
//! named test here (or a model-check schedule in `tests/model_check.rs`):
//!
//! * Sync engine, freshness lag 0 / read-your-writes —
//!   [`sync_engine_publishes_every_batch_in_order`]
//! * Sync engine, per-entity lookups —
//!   [`sync_engine_views_carry_standings_and_components`]
//! * Pipelined engine, final-view freshness —
//!   [`pipelined_engine_final_view_matches_final_result`]
//! * Monotonic reads under concurrent readers —
//!   [`concurrent_readers_observe_monotonic_sealed_views`]
//! * Engine equivalence of served results —
//!   [`pipelined_serve_matches_sync_serve_results`]
//! * Publication under crash recovery —
//!   [`views_under_recovery_stay_contiguous_and_sealed`]
//! * Result-only fallback for snapshot-less solutions —
//!   [`unranked_solutions_serve_result_only_views`]
//! * Reclamation / chain survival past engine teardown —
//!   [`views_outlive_the_engine_that_published_them`]

use datagen::stream::{StreamConfig, UpdateStream};
use datagen::{generate_workload, ChangeSet, GeneratorConfig, SocialNetwork};
use ttc_social_media::model::Query;
use ttc_social_media::pipeline::{IngestEngine, PipelineConfig, PipelinedEngine, SyncEngine};
use ttc_social_media::recovery::RecoveryConfig;
use ttc_social_media::serve::QueryView;
use ttc_social_media::shard::{ShardBackend, ShardedSolution};
use ttc_social_media::solution::GraphBlasIncremental;
use ttc_social_media::stream::{StreamDriver, StreamDriverConfig};
use ttc_social_media::ViewReader;

fn network(seed: u64) -> SocialNetwork {
    generate_workload(&GeneratorConfig::tiny(seed)).initial
}

fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
    UpdateStream::new(
        network,
        StreamConfig {
            seed,
            batch_size: 12,
            deletion_weight: 0.3,
            ..StreamConfig::default()
        },
    )
    .take(count)
    .collect()
}

fn sync_engine(warmup: usize) -> SyncEngine {
    SyncEngine::new(
        StreamDriver::new(StreamDriverConfig {
            warmup_batches: warmup,
            coalesce: true,
        }),
        Box::new(ShardedSolution::new(
            Query::Q1,
            ShardBackend::Incremental,
            2,
        )),
    )
}

/// Drain the full publication chain through `reader`, verifying every view's
/// seal along the way.
fn drain(reader: &mut ViewReader) -> Vec<std::sync::Arc<QueryView>> {
    let mut views = vec![reader.view()];
    while reader.try_advance() {
        views.push(reader.view());
    }
    for view in &views {
        assert!(view.verify_seal(), "torn view at epoch {}", view.epoch());
    }
    views
}

#[test]
fn sync_engine_publishes_every_batch_in_order() {
    let initial = network(11);
    let stream = batches(&initial, 12, 8);
    let mut engine = sync_engine(2);
    let mut reader = engine.serve_views();

    let report = engine
        .run(&initial, &mut stream.clone().into_iter(), 6)
        .expect("sync engine cannot truncate");

    let views = drain(&mut reader);
    // genesis + initial + 8 applied batches (2 warm-up + 6 measured)
    assert_eq!(views.len(), 10);
    for (i, view) in views.iter().enumerate() {
        assert_eq!(view.epoch(), i as u64, "contiguous epochs");
    }
    assert_eq!(views[0].batch(), None);
    assert_eq!(views[1].batch(), None); // initial evaluation
    for (seq, view) in views[2..].iter().enumerate() {
        assert_eq!(view.batch(), Some(seq as u64), "batch tags follow seq");
    }

    // read-your-writes per batch: the view published for measured batch t
    // carries exactly the result the engine reported for t (warm-up offset 2)
    for (t, result) in report.results.iter().enumerate() {
        assert_eq!(views[2 + 2 + t].result(), result);
    }
    assert_eq!(
        views.last().expect("non-empty").result(),
        report.stream.final_result,
        "freshness: the last view is the final result"
    );
}

#[test]
fn sync_engine_views_carry_standings_and_components() {
    let initial = network(21);
    let stream = batches(&initial, 22, 5);
    let mut engine = sync_engine(0);
    let mut reader = engine.serve_views();
    engine
        .run(&initial, &mut stream.into_iter(), 5)
        .expect("sync engine cannot truncate");

    let view = reader.latest();
    assert!(view.verify_seal());
    assert_eq!(view.query(), Query::Q1);

    // the top-k entries re-render to the published result, and each has a
    // standing with its 1-based rank
    let rendered: Vec<String> = view.entries().iter().map(|e| e.id.to_string()).collect();
    assert_eq!(rendered.join("|"), view.result());
    for (i, entry) in view.entries().iter().enumerate() {
        let standing = view.standing(entry.id).expect("top entries have standings");
        assert_eq!(standing.rank, Some(i + 1));
        assert_eq!(standing.score, entry.score);
    }
    assert!(view.candidate_count() >= view.entries().len());

    // every user of the initial network has a component id, and component ids
    // are themselves user ids (the minimum member)
    let components = view.components();
    assert!(components.user_count() >= initial.users.len());
    for user in &initial.users {
        let root = components.component_of(user.id).expect("known user");
        assert!(components.component_of(root).is_some());
        assert!(root <= user.id);
    }
}

#[test]
fn pipelined_engine_final_view_matches_final_result() {
    let initial = network(31);
    let stream = batches(&initial, 32, 10);
    let mut engine = PipelinedEngine::graphblas(
        Query::Q1,
        ShardBackend::Incremental,
        2,
        PipelineConfig {
            warmup_batches: 3,
            ..PipelineConfig::default()
        },
    );
    let mut reader = engine.serve_views();
    let report = engine
        .run(&initial, &mut stream.into_iter(), 7)
        .expect("no chaos injected");

    let views = drain(&mut reader);
    // genesis + initial + 10 merged batches (3 warm-up + 7 measured)
    assert_eq!(views.len(), 12);
    let last = views.last().expect("non-empty");
    assert_eq!(last.result(), report.stream.final_result);
    assert_eq!(last.batch(), Some(9));
    // measured results are served verbatim (warm-up offset 3 after the two
    // pre-batch views)
    for (t, result) in report.results.iter().enumerate() {
        assert_eq!(views[2 + 3 + t].result(), result);
    }
}

#[test]
fn concurrent_readers_observe_monotonic_sealed_views() {
    let initial = network(41);
    let stream = batches(&initial, 42, 12);
    let mut engine = PipelinedEngine::graphblas(
        Query::Q2,
        ShardBackend::Incremental,
        2,
        PipelineConfig::default(),
    );
    let reader = engine.serve_views();

    // readers poll the chain concurrently with the whole pipelined run
    let mut polls = Vec::new();
    for _ in 0..2 {
        let mut own = reader.clone();
        polls.push(std::thread::spawn(move || {
            let mut last = own.view().epoch();
            let mut observed = 1usize;
            loop {
                let view = own.latest();
                assert!(view.verify_seal(), "torn view at epoch {}", view.epoch());
                assert!(view.epoch() >= last, "monotonic reads violated");
                last = view.epoch();
                observed += 1;
                // 13 = initial view + 12 batches: the run is over
                if view.epoch() == 13 {
                    return (last, observed);
                }
                std::thread::yield_now();
            }
        }));
    }

    engine
        .run(&initial, &mut stream.into_iter(), 12)
        .expect("no chaos injected");
    for poll in polls {
        let (last, observed) = poll.join().expect("reader thread");
        assert_eq!(last, 13);
        assert!(observed >= 2);
    }
}

#[test]
fn pipelined_serve_matches_sync_serve_results() {
    let initial = network(51);
    let stream = batches(&initial, 52, 9);

    let mut sync = sync_engine(0);
    let mut sync_reader = sync.serve_views();
    sync.run(&initial, &mut stream.clone().into_iter(), 9)
        .expect("sync engine cannot truncate");

    let mut pipelined = PipelinedEngine::graphblas(
        Query::Q1,
        ShardBackend::Incremental,
        2,
        PipelineConfig::default(),
    );
    let mut pipe_reader = pipelined.serve_views();
    pipelined
        .run(&initial, &mut stream.into_iter(), 9)
        .expect("no chaos injected");

    let sync_views = drain(&mut sync_reader);
    let pipe_views = drain(&mut pipe_reader);
    assert_eq!(sync_views.len(), pipe_views.len());
    for (s, p) in sync_views.iter().zip(&pipe_views) {
        assert_eq!(s.epoch(), p.epoch());
        assert_eq!(s.batch(), p.batch());
        assert_eq!(s.result(), p.result(), "served results diverged");
        assert_eq!(
            s.components().component_count(),
            p.components().component_count()
        );
    }
}

#[test]
fn views_under_recovery_stay_contiguous_and_sealed() {
    let initial = network(61);
    let stream = batches(&initial, 62, 10);
    let mut engine = PipelinedEngine::graphblas(
        Query::Q1,
        ShardBackend::Incremental,
        2,
        PipelineConfig {
            kill_shards: vec![(0, 4), (1, 7)],
            recovery: Some(RecoveryConfig {
                checkpoint_every: 3,
            }),
            ..PipelineConfig::default()
        },
    );
    let mut reader = engine.serve_views();
    let report = engine
        .run(&initial, &mut stream.into_iter(), 10)
        .expect("recovery restores killed workers");
    let recovery = report
        .pipeline
        .as_ref()
        .and_then(|p| p.recovery.as_ref())
        .expect("recovery stats present");
    assert_eq!(recovery.crashes, 2);

    let views = drain(&mut reader);
    assert_eq!(views.len(), 12, "every batch served exactly once");
    for (i, view) in views.iter().enumerate() {
        assert_eq!(view.epoch(), i as u64);
    }
    assert_eq!(
        views.last().expect("non-empty").result(),
        report.stream.final_result
    );
}

#[test]
fn unranked_solutions_serve_result_only_views() {
    let initial = network(71);
    let stream = batches(&initial, 72, 4);
    // GraphBlasIncremental has no candidate_snapshot: views fall back to the
    // rendered result, with empty entries/standings but live components
    let mut engine = SyncEngine::new(
        StreamDriver::new(StreamDriverConfig::default()),
        Box::new(GraphBlasIncremental::new(Query::Q1, false)),
    );
    let mut reader = engine.serve_views();
    let report = engine
        .run(&initial, &mut stream.into_iter(), 4)
        .expect("sync engine cannot truncate");

    let view = reader.latest();
    assert!(view.verify_seal());
    assert_eq!(view.result(), report.stream.final_result);
    assert!(view.entries().is_empty());
    assert_eq!(view.candidate_count(), 0);
    assert!(view.components().user_count() >= initial.users.len());
}

#[test]
fn views_outlive_the_engine_that_published_them() {
    let initial = network(81);
    let stream = batches(&initial, 82, 3);
    let mut engine = sync_engine(0);
    let mut reader = engine.serve_views();
    let report = engine
        .run(&initial, &mut stream.into_iter(), 3)
        .expect("sync engine cannot truncate");
    drop(engine);

    // the chain is kept alive by the reader alone; reads still work and the
    // content is intact
    let views = drain(&mut reader);
    assert_eq!(views.len(), 5);
    assert_eq!(
        views.last().expect("non-empty").result(),
        report.stream.final_result
    );

    // a second run of a fresh engine starts a fresh chain at epoch 0
    let mut engine = sync_engine(0);
    let fresh = engine.serve_views();
    assert_eq!(fresh.view().epoch(), 0);
}
