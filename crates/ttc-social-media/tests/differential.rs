//! Differential and property-based tests for the case-study solutions: on randomly
//! generated workloads, every solution variant (batch, incremental, incremental-CC,
//! serial, parallel) must return identical results after every changeset, and the
//! maintained scores must match a from-scratch recomputation.

use datagen::{generate_workload, GeneratorConfig};
use proptest::prelude::*;
use ttc_social_media::model::Query;
use ttc_social_media::solution::{
    run_solution, GraphBlasBatch, GraphBlasIncremental, GraphBlasIncrementalCc,
};

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    // small but varied workloads
    (
        2usize..20,   // users
        1usize..6,    // posts
        2usize..30,   // comments
        0usize..25,   // friendships
        0usize..40,   // likes
        1usize..5,    // changesets
        1usize..25,   // total inserts
        any::<u64>(), // seed
    )
        .prop_map(
            |(users, posts, comments, friendships, likes, changesets, total_inserts, seed)| {
                GeneratorConfig {
                    scale_factor: 0,
                    users,
                    posts,
                    comments,
                    friendships,
                    likes,
                    changesets,
                    total_inserts,
                    skew: 0.9,
                    seed,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn q1_variants_agree_on_random_workloads(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut batch = GraphBlasBatch::new(Query::Q1, false);
        let mut batch_par = GraphBlasBatch::new(Query::Q1, true);
        let mut incremental = GraphBlasIncremental::new(Query::Q1, false);
        let mut incremental_par = GraphBlasIncremental::new(Query::Q1, true);

        let reference = run_solution(&mut batch, &workload);
        prop_assert_eq!(&reference, &run_solution(&mut batch_par, &workload));
        prop_assert_eq!(&reference, &run_solution(&mut incremental, &workload));
        prop_assert_eq!(&reference, &run_solution(&mut incremental_par, &workload));
    }

    #[test]
    fn q2_variants_agree_on_random_workloads(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut batch = GraphBlasBatch::new(Query::Q2, false);
        let mut batch_par = GraphBlasBatch::new(Query::Q2, true);
        let mut incremental = GraphBlasIncremental::new(Query::Q2, false);
        let mut incremental_par = GraphBlasIncremental::new(Query::Q2, true);
        let mut incremental_cc = GraphBlasIncrementalCc::new();

        let reference = run_solution(&mut batch, &workload);
        prop_assert_eq!(&reference, &run_solution(&mut batch_par, &workload));
        prop_assert_eq!(&reference, &run_solution(&mut incremental, &workload));
        prop_assert_eq!(&reference, &run_solution(&mut incremental_par, &workload));
        prop_assert_eq!(&reference, &run_solution(&mut incremental_cc, &workload));
    }

    #[test]
    fn results_always_have_at_most_three_ids(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut solution = GraphBlasIncremental::new(Query::Q2, false);
        for result in run_solution(&mut solution, &workload) {
            let ids: Vec<&str> = result.split('|').filter(|s| !s.is_empty()).collect();
            prop_assert!(ids.len() <= 3);
            // ids must be distinct
            let unique: std::collections::HashSet<&str> = ids.iter().copied().collect();
            prop_assert_eq!(unique.len(), ids.len());
        }
    }

    #[test]
    fn q1_scores_never_decrease_across_changesets(config in config_strategy()) {
        // the insert-only workload can only increase Q1 scores — the invariant that
        // justifies the paper's top-3 merging strategy
        let workload = generate_workload(&config);
        let mut graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        let mut previous = ttc_social_media::q1::q1_batch_scores(&graph, false);
        for changeset in &workload.changesets {
            ttc_social_media::apply_changeset(&mut graph, changeset);
            let current = ttc_social_media::q1::q1_batch_scores(&graph, false);
            for (post, old_score) in previous.iter() {
                prop_assert!(current.get(post).unwrap_or(0) >= old_score);
            }
            previous = current;
        }
    }

    #[test]
    fn q2_scores_never_decrease_across_changesets(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        let mut previous = ttc_social_media::q2::q2_batch_scores(&graph, false);
        for changeset in &workload.changesets {
            ttc_social_media::apply_changeset(&mut graph, changeset);
            let current = ttc_social_media::q2::q2_batch_scores(&graph, false);
            for (comment, old_score) in previous.iter() {
                prop_assert!(current.get(comment).unwrap_or(0) >= old_score);
            }
            previous = current;
        }
    }
}

#[test]
fn csv_loaded_workload_produces_identical_results() {
    // run the same workload once from memory and once through the CSV loader
    let workload = generate_workload(&GeneratorConfig::tiny(101));
    let network_csv = datagen::network_to_csv(&workload.initial);
    let changeset_csvs: Vec<String> = workload
        .changesets
        .iter()
        .map(datagen::changeset_to_csv)
        .collect();
    let reloaded =
        ttc_social_media::loader::load_workload_from_csv(&network_csv, &changeset_csvs).unwrap();

    let mut direct = GraphBlasIncremental::new(Query::Q1, false);
    let mut via_csv = GraphBlasIncremental::new(Query::Q1, false);
    assert_eq!(
        run_solution(&mut direct, &workload),
        run_solution(&mut via_csv, &reloaded)
    );
}

#[test]
fn solutions_are_reusable_across_workloads() {
    // loading a second workload resets the state completely
    let first = generate_workload(&GeneratorConfig::tiny(103));
    let second = generate_workload(&GeneratorConfig::tiny(104));
    let mut solution = GraphBlasIncremental::new(Query::Q2, false);
    let _ = run_solution(&mut solution, &first);
    let fresh_results = run_solution(&mut solution, &second);

    let mut fresh = GraphBlasIncremental::new(Query::Q2, false);
    assert_eq!(fresh_results, run_solution(&mut fresh, &second));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The affected-comment detection of the incremental Q2 algorithm (Steps 1-5 of
    /// Fig. 4b, the `NewFriends` incidence-matrix trick) must never miss a comment
    /// whose score actually changes: it may over-approximate, but every comment whose
    /// Q2 score differs after the changeset has to be in the affected set.
    #[test]
    fn q2_affected_set_covers_every_score_change(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        let mut before = ttc_social_media::q2::q2_batch_scores(&graph, false);
        for changeset in &workload.changesets {
            let delta = ttc_social_media::apply_changeset(&mut graph, changeset);
            let affected = ttc_social_media::q2::affected_comments(&graph, &delta, false);
            let affected_set: std::collections::HashSet<usize> = affected.into_iter().collect();
            let after = ttc_social_media::q2::q2_batch_scores(&graph, false);
            for comment in 0..graph.comment_count() {
                let old = before.get(comment).unwrap_or(0);
                let new = after.get(comment).unwrap_or(0);
                if old != new {
                    prop_assert!(
                        affected_set.contains(&comment),
                        "comment {} changed score {} -> {} but was not detected as affected",
                        comment, old, new
                    );
                }
            }
            before = after;
        }
    }

    /// The affected-set detection agrees between the serial and the rayon-parallel
    /// (comment-granularity) implementation.
    #[test]
    fn q2_affected_set_is_identical_serial_and_parallel(config in config_strategy()) {
        let workload = generate_workload(&config);
        let mut graph = ttc_social_media::SocialGraph::from_network(&workload.initial);
        for changeset in &workload.changesets {
            let delta = ttc_social_media::apply_changeset(&mut graph, changeset);
            let mut serial = ttc_social_media::q2::affected_comments(&graph, &delta, false);
            let mut parallel = ttc_social_media::q2::affected_comments(&graph, &delta, true);
            serial.sort_unstable();
            parallel.sort_unstable();
            prop_assert_eq!(serial, parallel);
        }
    }
}
