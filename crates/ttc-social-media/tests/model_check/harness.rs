// Shared model-check harness: the toy evaluator, the scripted schedule, the
// synchronous reference oracle, and the per-interleaving invariant body.
// Pulled in via `include!` by both `tests/model_check.rs` and the
// `mc_probe` example (files in `tests/` subdirectories are not test targets).

use datagen::model::{
    ChangeOperation, ChangeSet, Comment, ElementId, Post, SocialNetwork, User,
};
use std::collections::HashMap;
use ttc_social_media::shard::{ShardEvaluator, ShardFactory, ShardedSolution};
use ttc_social_media::solution::TOP_K;
use ttc_social_media::stream::StreamDriver;
use ttc_social_media::{
    IngestEngine, PipelineConfig, PipelinedEngine, Query, RankedEntry, RecoveryConfig, SyncEngine,
};

// ---------------------------------------------------------------------------
// Toy per-shard evaluator: cheap, deterministic, checkpoint/restore-compatible
// ---------------------------------------------------------------------------

/// Scores each comment as `1 + likes it received`; candidates are the shard's
/// exact top-[`TOP_K`] by the global `(score, timestamp, id)` ranking. Exact
/// scores and a total order make the evaluator a faithful stand-in for the
/// GraphBLAS backends in the merge protocol, at a tiny fraction of the cost.
struct ToyEvaluator {
    posts: usize,
    /// `(id, timestamp)` in insertion order (deterministic across replays).
    comments: Vec<(ElementId, u64)>,
    likes: HashMap<ElementId, u64>,
    candidates: Vec<RankedEntry>,
}

impl ToyEvaluator {
    fn from_network(part: &SocialNetwork) -> Self {
        let mut eval = ToyEvaluator {
            posts: part.posts.len(),
            comments: part.comments.iter().map(|c| (c.id, c.timestamp)).collect(),
            likes: HashMap::new(),
            candidates: Vec::new(),
        };
        for &(_, comment) in &part.likes {
            *eval.likes.entry(comment).or_insert(0) += 1;
        }
        eval.rescore();
        eval
    }

    fn rescore(&mut self) {
        let mut ranked: Vec<RankedEntry> = self
            .comments
            .iter()
            .map(|&(id, timestamp)| RankedEntry {
                score: 1 + self.likes.get(&id).copied().unwrap_or(0),
                timestamp,
                id,
            })
            .collect();
        ranked.sort_by_key(|e| std::cmp::Reverse((e.score, e.timestamp, e.id)));
        ranked.truncate(TOP_K);
        self.candidates = ranked;
    }
}

impl ShardEvaluator for ToyEvaluator {
    fn apply(&mut self, changeset: &ChangeSet) -> bool {
        for op in &changeset.operations {
            match op {
                ChangeOperation::AddPost { .. } => self.posts += 1,
                ChangeOperation::AddComment { comment } => {
                    self.comments.push((comment.id, comment.timestamp));
                }
                ChangeOperation::AddLike { comment, .. } => {
                    *self.likes.entry(*comment).or_insert(0) += 1;
                }
                ChangeOperation::RemoveLike { comment, .. } => {
                    if let Some(n) = self.likes.get_mut(comment) {
                        *n = n.saturating_sub(1);
                    }
                }
                // users and friendships do not contribute to the toy score
                _ => {}
            }
        }
        self.rescore();
        changeset.has_removals()
    }

    fn candidates(&self) -> &[RankedEntry] {
        &self.candidates
    }

    fn owned_sizes(&self) -> (usize, usize) {
        (self.posts, self.comments.len())
    }
}

struct ToyFactory;

impl ShardFactory for ToyFactory {
    fn build(&self, part: &SocialNetwork) -> Box<dyn ShardEvaluator> {
        Box::new(ToyEvaluator::from_network(part))
    }

    fn query(&self) -> Query {
        Query::Q1
    }

    fn name(&self) -> String {
        "Toy".into()
    }
}

// ---------------------------------------------------------------------------
// The model schedule: 2 shards, a handful of hand-built batches
// ---------------------------------------------------------------------------

fn user(id: ElementId) -> User {
    User {
        id,
        name: format!("u{id}"),
    }
}

fn post(id: ElementId, author: ElementId) -> Post {
    Post {
        id,
        timestamp: id,
        author,
    }
}

fn comment(id: ElementId, author: ElementId, root: ElementId) -> Comment {
    Comment {
        id,
        timestamp: id,
        author,
        parent: root,
        root_post: root,
    }
}

/// Users 1–4, one post per shard (modulo-2 partitioning shards posts by
/// author parity), one seed comment each.
fn toy_network() -> SocialNetwork {
    SocialNetwork {
        users: (1..=4).map(user).collect(),
        posts: vec![post(10, 1), post(11, 2)], // shard 1, shard 0
        comments: vec![comment(20, 3, 10), comment(21, 4, 11)],
        friendships: vec![(1, 2)],
        likes: vec![(1, 20)],
    }
}

/// Batches touching both shards each time, with a removal in the last batch so
/// the merge protocol exercises its rebuild path too.
fn toy_batches(count: usize) -> Vec<ChangeSet> {
    let all = vec![
        ChangeSet {
            operations: vec![
                ChangeOperation::AddComment {
                    comment: comment(22, 2, 10),
                },
                ChangeOperation::AddLike {
                    user: 4,
                    comment: 21,
                },
            ],
        },
        ChangeSet {
            operations: vec![
                ChangeOperation::AddLike {
                    user: 2,
                    comment: 22,
                },
                ChangeOperation::AddLike {
                    user: 3,
                    comment: 21,
                },
                ChangeOperation::AddComment {
                    comment: comment(23, 1, 11),
                },
            ],
        },
        ChangeSet {
            operations: vec![
                ChangeOperation::RemoveLike {
                    user: 1,
                    comment: 20,
                },
                ChangeOperation::AddLike {
                    user: 1,
                    comment: 23,
                },
            ],
        },
        ChangeSet {
            operations: vec![
                ChangeOperation::AddLike {
                    user: 2,
                    comment: 20,
                },
                ChangeOperation::AddLike {
                    user: 3,
                    comment: 23,
                },
            ],
        },
    ];
    assert!(count <= all.len(), "at most {} scripted batches", all.len());
    all.into_iter().take(count).collect()
}

/// Per-batch results of a synchronous, single-threaded reference run over the
/// same factory and partitioning — the byte-identity oracle for every
/// interleaving. Runs *outside* [`loomette::explore`] (the shadow primitives
/// pass through to `std` when no model execution is active).
fn reference_results(network: &SocialNetwork, batches: &[ChangeSet]) -> Vec<String> {
    let mut sync = SyncEngine::new(
        StreamDriver::default(),
        Box::new(ShardedSolution::with_factory(Box::new(ToyFactory), 2)),
    );
    let mut stream = batches.iter().cloned();
    sync.run(network, &mut stream, batches.len())
        .expect("sync engine never truncates")
        .results
}

fn pipeline_config(kills: Vec<(usize, u64)>, checkpoint_every: u64) -> PipelineConfig {
    PipelineConfig {
        queue_depth: 1,
        kill_shards: kills,
        recovery: Some(RecoveryConfig { checkpoint_every }),
        ..PipelineConfig::default()
    }
}

/// Run the full pipelined engine under the model once, asserting per-batch
/// byte-identity with the reference and `restores == crashes == kills`.
/// Panics here surface as [`loomette::ViolationKind::Panic`] with a trace.
fn check_pipeline_run(
    network: &SocialNetwork,
    batches: &[ChangeSet],
    expected: &[String],
    config: &PipelineConfig,
) {
    let kills = config.kill_shards.len() as u64;
    let mut engine = PipelinedEngine::new(Box::new(ToyFactory), 2, config.clone());
    let mut stream = batches.iter().cloned();
    let report = engine
        .run(network, &mut stream, batches.len())
        .expect("recovery must complete the run in every interleaving");
    assert_eq!(report.results, expected, "merged results diverged");
    let recovery = report
        .pipeline
        .expect("pipelined engine reports stats")
        .recovery
        .expect("recovery was configured");
    assert_eq!(recovery.crashes, kills, "every kill is a crash");
    assert_eq!(
        recovery.restores, recovery.crashes,
        "every crash must be restored exactly once"
    );
}

/// Like [`check_pipeline_run`], but with the epoch-published read path armed
/// and a concurrent reader interleaved with publish, kill, and respawn.
///
/// The reader performs a *fixed* number of non-blocking polls (a spinning
/// reader would multiply the per-execution op count and blow the exploration
/// budget), asserting on every observed view that the seal verifies (no torn
/// view) and that epochs never decrease (monotonic reads). After the run the
/// full chain is drained from genesis: epochs must be contiguous — every
/// batch published exactly once, even across worker crashes — and the tail
/// view must carry the final merged result (read-your-writes at the tail).
#[allow(dead_code)] // used by tests/model_check.rs; `mc_probe` shares this file via include!
fn check_pipeline_run_with_reader(
    network: &SocialNetwork,
    batches: &[ChangeSet],
    expected: &[String],
    config: &PipelineConfig,
) {
    let kills = config.kill_shards.len() as u64;
    let mut engine = PipelinedEngine::new(Box::new(ToyFactory), 2, config.clone());
    let mut reader = engine.serve_views();
    let mut probe = reader.clone();
    let poller = ttc_social_media::sync::thread::spawn(move || {
        let mut last = probe.view().epoch();
        for _ in 0..4 {
            let view = probe.latest();
            assert!(view.verify_seal(), "torn view at epoch {}", view.epoch());
            assert!(view.epoch() >= last, "monotonic reads violated");
            last = view.epoch();
        }
        last
    });

    let mut stream = batches.iter().cloned();
    let report = engine
        .run(network, &mut stream, batches.len())
        .expect("recovery must complete the run in every interleaving");
    assert_eq!(report.results, expected, "merged results diverged");
    let recovery = report
        .pipeline
        .expect("pipelined engine reports stats")
        .recovery
        .expect("recovery was configured");
    assert_eq!(recovery.crashes, kills, "every kill is a crash");
    assert_eq!(
        recovery.restores, recovery.crashes,
        "every crash must be restored exactly once"
    );

    let final_epoch = 1 + batches.len() as u64;
    let seen = poller.join().expect("the reader must not observe a violation");
    assert!(seen <= final_epoch, "reader ran ahead of the publications");

    // Drain the whole chain from genesis: exactly one sealed view per epoch.
    let mut epoch = reader.view().epoch();
    assert_eq!(epoch, 0, "the pre-run subscriber starts at genesis");
    while reader.try_advance() {
        let view = reader.view();
        assert!(view.verify_seal(), "torn view at epoch {}", view.epoch());
        assert_eq!(view.epoch(), epoch + 1, "publication gap");
        epoch = view.epoch();
    }
    assert_eq!(epoch, final_epoch, "every batch published exactly once");
    assert_eq!(
        reader.view().result(),
        expected.last().map(String::as_str).unwrap_or_default(),
        "the final view must serve the final merged result"
    );
}
