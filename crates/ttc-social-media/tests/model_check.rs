//! Deterministic model checking of the crash-recovery pipeline protocol.
//!
//! Compiled only with `--features model-check`, where the `crate::sync` facade
//! resolves to the [`loomette`] shadow primitives. Each test hands the **whole
//! pipelined engine** — supervisor, router, worker generations, dedup merge,
//! respawn — to [`loomette::explore`], which enumerates the bounded
//! interleavings of a small schedule (exhaustively where the space fits the
//! budget — see [`mc_config`]) and asserts, in *each* of them:
//!
//! * the merged per-batch results are byte-identical to a synchronous
//!   single-threaded reference run,
//! * `restores == crashes` (every injected kill was recovered exactly once),
//! * no deadlock (loomette reports a `Deadlock` violation with a replayable
//!   trace if any interleaving wedges).
//!
//! The evaluators under the model are deliberately trivial ([`ToyEvaluator`]):
//! the point is to explore the *protocol's* interleavings, not GraphBLAS
//! kernels, so each execution must cost microseconds.
//!
//! Two regression schedules reproduce the concurrency bugs fixed in the
//! crash-recovery revision; they compile only under the `test-bug-*` features
//! that revert those fixes, and assert the checker finds the violation (see
//! the `bug_` tests at the bottom).

#![cfg(feature = "model-check")]

include!("model_check/harness.rs");

use loomette::Config;

/// The exploration budget for the suite: preemption bound 0, i.e. context
/// switches only where a thread *blocks* (channel full/empty, lock contention,
/// join) or finishes. That is exactly the space of communication orderings of
/// the supervisor/worker protocol. Measured with `examples/mc_probe.rs`
/// (release build):
///
/// * 3-batch schedules with zero, one, or two same-seq kills — 93k–147k
///   executions (~30–60s), **exhaust** the space;
/// * the 4-batch double-kill mid-replay schedule — exceeds the budget (every
///   respawned worker generation and extra batch multiplies the orderings),
///   so it runs as a *bounded* sweep under [`explore_no_violation`];
/// * bound 2 does not exhaust even the one-kill schedule within 500k
///   executions.
fn mc_config() -> Config {
    Config {
        max_preemptions: Some(0),
        max_executions: 300_000,
        ..Config::default()
    }
}

/// Explore a schedule whose bounded interleaving space is small enough to
/// exhaust, and require a clean, *complete* exploration.
#[cfg(not(any(
    feature = "test-bug-absorbed-exit",
    feature = "test-bug-midreplay-undercount"
)))]
fn explore_clean(
    kills: Vec<(usize, u64)>,
    checkpoint_every: u64,
    batches: usize,
) -> loomette::Report {
    let report = explore_no_violation(kills, checkpoint_every, batches);
    assert!(
        report.complete,
        "exploration must exhaust the bounded interleaving space: {report}"
    );
    report
}

/// Explore a schedule up to the execution budget, requiring every explored
/// interleaving to be clean. Used for schedules whose full bound-0 space is
/// too large to exhaust (see [`mc_config`]).
#[cfg(not(any(
    feature = "test-bug-absorbed-exit",
    feature = "test-bug-midreplay-undercount"
)))]
fn explore_no_violation(
    kills: Vec<(usize, u64)>,
    checkpoint_every: u64,
    batches: usize,
) -> loomette::Report {
    let network = toy_network();
    let batches = toy_batches(batches);
    let expected = reference_results(&network, &batches);
    let config = pipeline_config(kills, checkpoint_every);
    let report = loomette::explore(mc_config(), || {
        check_pipeline_run(&network, &batches, &expected, &config)
    });
    if let Some(violation) = &report.violation {
        panic!("{violation}");
    }
    report
}

// ---------------------------------------------------------------------------
// Clean schedules: every interleaving correct, exploration exhaustive
// ---------------------------------------------------------------------------
// Gated out under the bug-revert features: with a fix reverted these schedules
// *should* fail, and the `bug_` tests below assert exactly that.

#[cfg(not(any(
    feature = "test-bug-absorbed-exit",
    feature = "test-bug-midreplay-undercount"
)))]
mod clean {
    use super::*;

    /// The headline schedule of the acceptance criteria: 2 shards × 3 batches
    /// × 1 kill, checkpoint every 2 batches, queue depth 1.
    #[test]
    fn exhaustive_two_shard_three_batch_one_kill_recovery() {
        let report = explore_clean(vec![(1, 1)], 2, 3);
        // surface the explored-state count in the test output (run with
        // `--nocapture` or see the CI log)
        println!("2 shards x 3 batches x kill(1,1): {report}");
        assert!(
            report.executions > 100,
            "suspiciously small space: {report}"
        );
    }

    #[test]
    fn no_kill_schedule_is_clean() {
        let report = explore_clean(vec![], 2, 3);
        println!("2 shards x 3 batches, no kills: {report}");
    }

    /// Both shards die before the same sequence number — restores must not
    /// interfere with each other (the satellite-2 poisoning fix keeps one
    /// shard's crash from cascading into the other's restore).
    #[test]
    fn both_shards_killed_at_the_same_batch_recover() {
        let report = explore_clean(vec![(0, 1), (1, 1)], 2, 3);
        println!("2 shards x 3 batches x kill(0,1)+(1,1): {report}");
    }

    /// The second kill lands while the replacement worker may still be
    /// replaying its backlog — the schedule of the mid-replay undercount bug.
    /// The only bounded (non-exhaustive) sweep in the suite: the fourth batch
    /// and second respawned generation push the space past the budget.
    #[test]
    fn a_second_kill_during_backlog_replay_recovers() {
        let report = explore_no_violation(vec![(1, 1), (1, 2)], 2, 4);
        println!("2 shards x 4 batches x kill(1,1)+(1,2): {report}");
        assert!(
            report.complete || report.executions >= 100_000,
            "budget not spent: {report}"
        );
    }

    /// Explore a serve-armed schedule: the pipelined engine with the
    /// epoch-published read path on and a bounded reader thread interleaved
    /// with publish/kill/respawn (see `check_pipeline_run_with_reader`).
    /// The 2-batch schedules below exhaust their bound-0 spaces in ~10–18k
    /// executions (the fixed-poll reader adds a thread but no blocking ops),
    /// so a clean, complete exploration is required.
    fn explore_serve(kills: Vec<(usize, u64)>, batches: usize) -> loomette::Report {
        let network = toy_network();
        let batches = toy_batches(batches);
        let expected = reference_results(&network, &batches);
        let config = pipeline_config(kills, 2);
        let report = loomette::explore(mc_config(), || {
            check_pipeline_run_with_reader(&network, &batches, &expected, &config)
        });
        if let Some(violation) = &report.violation {
            panic!("{violation}");
        }
        assert!(
            report.complete,
            "exploration must exhaust the bounded interleaving space: {report}"
        );
        report
    }

    /// Serve satellite, clean half: a concurrent reader over a 2-batch
    /// schedule without kills — no torn view, monotonic epochs, contiguous
    /// publication chain in every explored interleaving.
    #[test]
    fn serve_reader_interleaved_with_publishes_is_clean() {
        let report = explore_serve(vec![], 2);
        println!("serve reader, 2 batches, no kills: {report}");
    }

    /// Serve satellite, crash half: the reader keeps observing sealed,
    /// monotonic views while shard 1 is killed and respawned mid-stream, and
    /// the chain still ends contiguous — publication survives recovery.
    #[test]
    fn serve_reader_survives_a_kill_and_respawn() {
        let report = explore_serve(vec![(1, 1)], 2);
        println!("serve reader, 2 batches x kill(1,1): {report}");
    }

    /// Bounded-staleness satellite: a reader blocked in
    /// `ViewReader::wait_for_epoch` against a concurrent publisher. The
    /// classic lost-wakeup bug (publisher signals between the reader's
    /// predicate check and its park) would surface here as a deadlock
    /// violation; the shadow condvar registers the waiter before releasing
    /// the gate lock, so every explored interleaving must terminate with the
    /// reader holding the promised epoch.
    #[test]
    fn wait_for_epoch_never_loses_a_wakeup() {
        use ttc_social_media::serve::{view_channel, CandidateSnapshot, ViewBuilder};
        use ttc_social_media::sync::thread;
        use ttc_social_media::Query;

        let report = loomette::explore(mc_config(), || {
            let mut builder = ViewBuilder::new(Query::Q1);
            let (mut publisher, mut reader) = view_channel(builder.genesis());
            let writer = thread::spawn(move || {
                let snap = CandidateSnapshot::default();
                publisher.publish(builder.build(None, &snap, "7"));
                publisher.publish(builder.build(Some(0), &snap, "7"));
            });
            let view = reader.wait_for_epoch(2);
            assert!(view.epoch() >= 2, "stale view: epoch {}", view.epoch());
            assert!(view.verify_seal(), "torn view observed");
            writer.join().expect("publisher thread exits cleanly");
        });
        if let Some(violation) = &report.violation {
            panic!("{violation}");
        }
        assert!(
            report.complete,
            "exploration must exhaust the bounded interleaving space: {report}"
        );
        println!("wait_for_epoch vs concurrent publisher: {report}");
    }

    /// The toy evaluator itself, outside the model: pipelined (std threads)
    /// equals the synchronous reference on the scripted batches.
    #[test]
    fn toy_evaluator_matches_reference_outside_the_model() {
        let network = toy_network();
        let batches = toy_batches(4);
        let expected = reference_results(&network, &batches);
        check_pipeline_run(
            &network,
            &batches,
            &expected,
            &pipeline_config(vec![(1, 1)], 2),
        );
    }
}

// ---------------------------------------------------------------------------
// Regression schedules: the checker must find the reverted PR 6 bugs
// ---------------------------------------------------------------------------

/// Explore a schedule expecting a violation; assert the recorded trace replays
/// to the same violation (the checker's output is a reproducible witness, not
/// a flake).
#[cfg(any(
    feature = "test-bug-absorbed-exit",
    feature = "test-bug-midreplay-undercount"
))]
fn explore_expecting_violation(
    kills: Vec<(usize, u64)>,
    checkpoint_every: u64,
    batches: usize,
) -> loomette::Violation {
    let network = toy_network();
    let batches = toy_batches(batches);
    let expected = reference_results(&network, &batches);
    let config = pipeline_config(kills, checkpoint_every);
    let report = loomette::explore(mc_config(), || {
        check_pipeline_run(&network, &batches, &expected, &config)
    });
    let violation = report
        .violation
        .expect("the reverted bug must be caught within the bounded space");
    let replayed = loomette::replay(mc_config(), &violation.trace, || {
        check_pipeline_run(&network, &batches, &expected, &config)
    });
    let again = replayed
        .violation
        .expect("replaying the recorded trace must reproduce the violation");
    assert_eq!(again.kind, violation.kind, "replay diverged: {again}");
    violation
}

/// With the absorbed-exit fix reverted, a crash whose exit notification was
/// already absorbed by the outcome sweep is counted again, so the supervisor
/// waits for a worker generation that has already gone — a deadlock on some
/// interleavings of a double-kill schedule.
#[cfg(feature = "test-bug-absorbed-exit")]
#[test]
fn bug_absorbed_exit_revert_is_caught_as_a_violation() {
    let violation = explore_expecting_violation(vec![(0, 1), (1, 1)], 2, 3);
    println!("absorbed-exit revert caught: {violation}");
}

/// With the mid-replay accounting fix reverted, a worker killed while still
/// replaying its restore backlog reports no restore latency, so
/// `restores < crashes` — caught by the invariant assertion in the model body.
#[cfg(feature = "test-bug-midreplay-undercount")]
#[test]
fn bug_midreplay_undercount_revert_is_caught_as_a_violation() {
    use loomette::ViolationKind;
    let violation = explore_expecting_violation(vec![(1, 1), (1, 2)], 2, 4);
    assert_eq!(
        violation.kind,
        ViolationKind::Panic,
        "the undercount surfaces as a failed invariant assertion: {violation}"
    );
    println!("mid-replay undercount revert caught: {violation}");
}
