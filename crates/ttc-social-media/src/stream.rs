//! Streaming update driver: sustained-throughput measurement over micro-batches.
//!
//! The paper's harness replays a finite list of changesets and times the two TTC
//! phases. This module is the continuous counterpart: a [`StreamDriver`] pulls
//! micro-batches from any changeset iterator (typically
//! [`datagen::stream::UpdateStream`]), **coalesces** each batch (last operation per
//! edge wins — an add cancels a pending retraction of the same edge and vice
//! versa), feeds it through any [`Solution`], and records per-batch latency. The
//! resulting [`StreamReport`] carries the p50/p90/p99/max latency and the sustained
//! updates/second — the numbers every scaling experiment (sharding, async
//! ingestion, alternative backends) is benchmarked against. This driver is the
//! synchronous engine; its staged asynchronous counterpart (bounded queues,
//! watermark merge) lives in [`crate::pipeline`], with both behind
//! [`crate::pipeline::IngestEngine`].
//!
//! Parallelism follows the measured solution: a parallel solution variant re-scores
//! its affected sets with the `graphblas::ops::par` kernels on the ambient rayon
//! pool, so callers size the pool (e.g. with `rayon::ThreadPoolBuilder` +
//! `install`, as the `bench` crate's `run_in_pool` does) around
//! [`StreamDriver::run`].
//!
//! # Example
//!
//! ```
//! use datagen::stream::{StreamConfig, UpdateStream};
//! use datagen::{generate_workload, GeneratorConfig};
//! use ttc_social_media::model::Query;
//! use ttc_social_media::solution::GraphBlasIncremental;
//! use ttc_social_media::stream::StreamDriver;
//!
//! let network = generate_workload(&GeneratorConfig::tiny(3)).initial;
//! let stream = UpdateStream::new(&network, StreamConfig { seed: 9, batch_size: 8, ..StreamConfig::default() });
//! let mut solution = GraphBlasIncremental::new(Query::Q1, false);
//! let report = StreamDriver::default().run(&mut solution, &network, stream, 5);
//! assert_eq!(report.batches, 5);
//! assert!(report.updates_per_sec > 0.0);
//! ```

use std::collections::HashMap;
use std::time::Instant;

use datagen::{ChangeOperation, ChangeSet, ElementId, SocialNetwork};

use crate::solution::Solution;

/// Merge a micro-batch so that each `likes` / `friends` edge carries at most one
/// operation: the **last** one in sequence order. This is exact — adds are ignored
/// on present edges and retractions on absent ones, so the final presence of an
/// edge after replaying the whole sequence equals the effect of its last operation
/// alone. Node insertions (users, posts, comments) are always unique and kept.
pub fn coalesce(batch: &ChangeSet) -> ChangeSet {
    #[derive(Hash, PartialEq, Eq)]
    enum EdgeKey {
        Like(ElementId, ElementId),
        Friend(ElementId, ElementId),
    }
    fn key(op: &ChangeOperation) -> Option<EdgeKey> {
        match op {
            ChangeOperation::AddLike { user, comment }
            | ChangeOperation::RemoveLike { user, comment } => Some(EdgeKey::Like(*user, *comment)),
            ChangeOperation::AddFriendship { a, b }
            | ChangeOperation::RemoveFriendship { a, b } => {
                Some(EdgeKey::Friend(*a.min(b), *a.max(b)))
            }
            _ => None,
        }
    }

    let mut last_for_key: HashMap<EdgeKey, usize> = HashMap::new();
    for (position, op) in batch.operations.iter().enumerate() {
        if let Some(k) = key(op) {
            last_for_key.insert(k, position);
        }
    }
    let operations = batch
        .operations
        .iter()
        .enumerate()
        .filter(|(position, op)| match key(op) {
            Some(k) => last_for_key[&k] == *position,
            None => true,
        })
        .map(|(_, op)| op.clone())
        .collect();
    ChangeSet { operations }
}

/// Configuration of a [`StreamDriver`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamDriverConfig {
    /// Batches fed through the solution before measurement starts (their latency is
    /// excluded from the report; their updates still apply).
    pub warmup_batches: usize,
    /// Whether batches are coalesced before application (on by default; turning it
    /// off measures the raw sequential-operation path).
    pub coalesce: bool,
}

impl Default for StreamDriverConfig {
    fn default() -> Self {
        StreamDriverConfig {
            warmup_batches: 0,
            coalesce: true,
        }
    }
}

/// Latency and throughput of one measured streaming run. Produced by
/// [`StreamDriver::run`].
#[derive(Clone, Debug, PartialEq)]
pub struct StreamReport {
    /// Name of the measured solution.
    pub solution: String,
    /// Measured batches (warm-up excluded).
    pub batches: usize,
    /// Operations emitted by the stream across the measured batches.
    pub total_operations: usize,
    /// Operations actually applied after coalescing.
    pub applied_operations: usize,
    /// Wall-clock seconds spent in `update_and_reevaluate` across measured batches.
    pub elapsed_secs: f64,
    /// Sustained throughput: emitted operations per second of update time.
    pub updates_per_sec: f64,
    /// Median per-batch latency in seconds.
    pub p50_latency_secs: f64,
    /// 90th-percentile per-batch latency in seconds.
    pub p90_latency_secs: f64,
    /// 99th-percentile per-batch latency in seconds.
    pub p99_latency_secs: f64,
    /// Worst per-batch latency in seconds.
    pub max_latency_secs: f64,
    /// Seconds spent in the initial load-and-evaluate phase (not part of the
    /// throughput figures).
    pub load_secs: f64,
    /// The query result after the last measured batch (`id|id|id`).
    pub final_result: String,
}

/// Escape a string into a JSON string literal (RFC 8259: `"`, `\` and control
/// characters). `format!("{value:?}")` is *not* a substitute — Rust's `Debug`
/// renders control and non-ASCII characters as `\u{…}`, which no JSON parser
/// accepts, so reports containing such a solution name or result would poison
/// the bench gate's diffing.
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a float as a JSON number at full precision — the same rule
/// `bench::report` inherits from `serde_json`'s `Number` (Rust's shortest
/// round-trippable `Display`), with non-finite values as `null`. Fixed-width
/// `{:.6}` formatting is *not* a substitute: sub-microsecond latencies — the
/// normal p50 regime of the incremental backends on small batches — all
/// serialized as `0.000000`, erasing the very signal the latency fields exist
/// to carry.
fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string() // JSON has no NaN/Inf
    }
}

impl StreamReport {
    /// Render the report as a single JSON object.
    ///
    /// The field order is stable (the declaration order below, never
    /// alphabetised), strings are escaped per RFC 8259, and floats carry full
    /// precision, so the bench gate can parse reports back and diff them across
    /// runs byte-reliably.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"solution\":{},\"batches\":{},\"total_operations\":{},",
                "\"applied_operations\":{},\"elapsed_secs\":{},",
                "\"updates_per_sec\":{},\"p50_latency_secs\":{},",
                "\"p90_latency_secs\":{},\"p99_latency_secs\":{},",
                "\"max_latency_secs\":{},\"load_secs\":{},\"final_result\":{}}}"
            ),
            json_string(&self.solution),
            self.batches,
            self.total_operations,
            self.applied_operations,
            json_f64(self.elapsed_secs),
            json_f64(self.updates_per_sec),
            json_f64(self.p50_latency_secs),
            json_f64(self.p90_latency_secs),
            json_f64(self.p99_latency_secs),
            json_f64(self.max_latency_secs),
            json_f64(self.load_secs),
            json_string(&self.final_result),
        )
    }
}

/// Value at percentile `p` (0–100) of an **ascending-sorted** slice, by
/// standard nearest-rank (`rank = ⌈p/100 · len⌉`, 1-based) — the one
/// definition every latency figure in this workspace uses ([`StreamReport`]
/// and the per-shard blocks of `stream_throughput --shards`), so merged and
/// per-shard percentiles stay comparable.
///
/// The previous implementation rounded on a `(len − 1)` scale, which is
/// neither nearest-rank nor linear interpolation: `percentile(&[1,2,3,4],
/// 50.0)` returned `3.0`, biasing every even-length p50/p90 upward by up to
/// one rank.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Write-side callbacks fired as a [`StreamDriver`] run advances, after the
/// load phase and after every applied batch (warm-up included).
///
/// This is the hook the serving layer uses to publish one
/// [`crate::serve::QueryView`] per batch from the synchronous engine without
/// the driver knowing anything about publication: the observer sees the
/// coalesced changeset that was applied, the rendered result, and the
/// solution (for [`Solution::candidate_snapshot`]). Timing is captured
/// *before* the observer runs, so observation cost never pollutes the
/// latency percentiles.
pub trait RunObserver {
    /// The initial network was loaded and evaluated to `result`.
    fn loaded(&mut self, initial: &SocialNetwork, result: &str, solution: &dyn Solution);

    /// Batch `seq` (0-based, counting warm-up batches too) was applied and
    /// re-evaluated to `result`. `changes` is the changeset exactly as the
    /// solution saw it (coalesced if the driver coalesces).
    fn applied(&mut self, seq: u64, changes: &ChangeSet, result: &str, solution: &dyn Solution);
}

/// Observer that ignores every event — the default for unobserved runs.
struct NoopObserver;

impl RunObserver for NoopObserver {
    fn loaded(&mut self, _initial: &SocialNetwork, _result: &str, _solution: &dyn Solution) {}
    fn applied(
        &mut self,
        _seq: u64,
        _changes: &ChangeSet,
        _result: &str,
        _solution: &dyn Solution,
    ) {
    }
}

/// Drives micro-batches from an update stream through a [`Solution`], measuring
/// per-batch latency. See the [module documentation](self).
#[derive(Clone, Debug, Default)]
pub struct StreamDriver {
    config: StreamDriverConfig,
}

impl StreamDriver {
    /// Create a driver with the given configuration.
    pub fn new(config: StreamDriverConfig) -> Self {
        StreamDriver { config }
    }

    /// Load `initial` into `solution`, then pull `batches` micro-batches (plus the
    /// configured warm-up) from `stream`, apply each, and report latency
    /// percentiles and sustained throughput.
    pub fn run(
        &self,
        solution: &mut dyn Solution,
        initial: &SocialNetwork,
        stream: impl Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> StreamReport {
        self.run_with_results(solution, initial, stream, batches).0
    }

    /// Like [`StreamDriver::run`], but additionally collect the query result of
    /// **every measured batch** (warm-up excluded), in batch order. This is the
    /// reusable synchronous core the pipelined engine is differentially tested
    /// against: byte-identical per-batch results, not just the final one.
    pub fn run_with_results(
        &self,
        solution: &mut dyn Solution,
        initial: &SocialNetwork,
        stream: impl Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> (StreamReport, Vec<String>) {
        self.run_with_observer(solution, initial, stream, batches, &mut NoopObserver)
    }

    /// Like [`StreamDriver::run_with_results`], with a [`RunObserver`]
    /// notified after the load and after every applied batch (warm-up
    /// included) — the synchronous engine's entry point for view publication.
    pub fn run_with_observer(
        &self,
        solution: &mut dyn Solution,
        initial: &SocialNetwork,
        mut stream: impl Iterator<Item = ChangeSet>,
        batches: usize,
        observer: &mut dyn RunObserver,
    ) -> (StreamReport, Vec<String>) {
        let load_start = Instant::now();
        let mut result = solution.load_and_initial(initial);
        let load_secs = load_start.elapsed().as_secs_f64();
        observer.loaded(initial, &result, solution);

        let mut seq = 0u64;
        for _ in 0..self.config.warmup_batches {
            if let Some(batch) = stream.next() {
                let batch = if self.config.coalesce {
                    coalesce(&batch)
                } else {
                    batch
                };
                let warm_result = solution.update_and_reevaluate(&batch);
                observer.applied(seq, &batch, &warm_result, solution);
                seq += 1;
            }
        }

        let mut latencies = Vec::with_capacity(batches);
        let mut results = Vec::with_capacity(batches);
        let mut total_operations = 0usize;
        let mut applied_operations = 0usize;
        let mut measured = 0usize;
        for batch in stream.by_ref().take(batches) {
            total_operations += batch.operations.len();
            let batch = if self.config.coalesce {
                coalesce(&batch)
            } else {
                batch
            };
            applied_operations += batch.operations.len();
            let start = Instant::now();
            result = solution.update_and_reevaluate(&batch);
            latencies.push(start.elapsed().as_secs_f64());
            observer.applied(seq, &batch, &result, solution);
            seq += 1;
            results.push(result.clone());
            measured += 1;
        }

        let elapsed_secs: f64 = latencies.iter().sum();
        let mut sorted = latencies;
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite")); // lint: allow(panic) — latencies are Duration-derived seconds, never NaN
        let report = StreamReport {
            solution: solution.name(),
            batches: measured,
            total_operations,
            applied_operations,
            elapsed_secs,
            updates_per_sec: if elapsed_secs > 0.0 {
                total_operations as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_latency_secs: percentile(&sorted, 50.0),
            p90_latency_secs: percentile(&sorted, 90.0),
            p99_latency_secs: percentile(&sorted, 99.0),
            max_latency_secs: sorted.last().copied().unwrap_or(0.0),
            load_secs,
            final_result: result,
        };
        (report, results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Query;
    use crate::solution::{run_solution, GraphBlasBatch, GraphBlasIncremental};
    use datagen::stream::{StreamConfig, UpdateStream};
    use datagen::{generate_workload, GeneratorConfig};

    fn network() -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(23)).initial
    }

    fn stream(seed: u64, network: &SocialNetwork) -> UpdateStream {
        UpdateStream::new(
            network,
            StreamConfig {
                seed,
                batch_size: 12,
                ..StreamConfig::default()
            },
        )
    }

    #[test]
    fn coalesce_drops_add_remove_pairs() {
        use datagen::ChangeOperation::*;
        let batch = ChangeSet {
            operations: vec![
                AddLike {
                    user: 1,
                    comment: 11,
                },
                RemoveLike {
                    user: 1,
                    comment: 11,
                },
                AddFriendship { a: 1, b: 2 },
                RemoveFriendship { b: 1, a: 2 }, // reversed orientation, same edge
                AddFriendship { a: 1, b: 2 },
                AddLike {
                    user: 2,
                    comment: 11,
                },
            ],
        };
        let merged = coalesce(&batch);
        assert_eq!(
            merged.operations,
            vec![
                RemoveLike {
                    user: 1,
                    comment: 11
                },
                AddFriendship { a: 1, b: 2 },
                AddLike {
                    user: 2,
                    comment: 11
                },
            ]
        );
    }

    #[test]
    fn coalesce_keeps_node_insertions() {
        use datagen::ChangeOperation::*;
        let batch = ChangeSet {
            operations: vec![
                AddUser {
                    user: datagen::User {
                        id: 9,
                        name: "u".into(),
                    },
                },
                AddLike {
                    user: 9,
                    comment: 11,
                },
            ],
        };
        assert_eq!(coalesce(&batch).operations.len(), 2);
    }

    #[test]
    fn coalesced_batch_has_the_same_effect_as_the_sequence() {
        let network = network();
        for seed in [1u64, 2, 3] {
            let batches: Vec<ChangeSet> = stream(seed, &network).take(6).collect();
            let mut raw = GraphBlasBatch::new(Query::Q2, false);
            let mut merged = GraphBlasBatch::new(Query::Q2, false);
            raw.load_and_initial(&network);
            merged.load_and_initial(&network);
            for batch in &batches {
                let a = raw.update_and_reevaluate(batch);
                let b = merged.update_and_reevaluate(&coalesce(batch));
                assert_eq!(a, b, "seed {seed}");
            }
        }
    }

    #[test]
    fn driver_reports_consistent_statistics() {
        let network = network();
        let mut solution = GraphBlasIncremental::new(Query::Q1, false);
        let report = StreamDriver::default().run(&mut solution, &network, stream(7, &network), 12);
        assert_eq!(report.batches, 12);
        assert!(report.total_operations > 0);
        assert!(report.applied_operations <= report.total_operations);
        assert!(report.updates_per_sec > 0.0);
        assert!(report.p50_latency_secs <= report.p90_latency_secs);
        assert!(report.p90_latency_secs <= report.p99_latency_secs);
        assert!(report.p99_latency_secs <= report.max_latency_secs);
        assert!(report.elapsed_secs > 0.0);
        assert!(!report.final_result.is_empty());
        assert!(report.solution.contains("Incremental"));
    }

    #[test]
    fn warmup_batches_are_excluded_from_measurement() {
        let network = network();
        let driver = StreamDriver::new(StreamDriverConfig {
            warmup_batches: 3,
            coalesce: true,
        });
        let mut solution = GraphBlasIncremental::new(Query::Q2, false);
        let report = driver.run(&mut solution, &network, stream(11, &network), 4);
        assert_eq!(report.batches, 4);
    }

    #[test]
    fn streamed_incremental_matches_batch_recomputation() {
        // the driver's end state must agree with a batch solution replaying the
        // same (coalesced) batches
        let network = network();
        let batches: Vec<ChangeSet> = stream(17, &network).take(8).collect();
        for query in [Query::Q1, Query::Q2] {
            let mut incremental = GraphBlasIncremental::new(query, false);
            let report = StreamDriver::default().run(
                &mut incremental,
                &network,
                batches.iter().cloned(),
                batches.len(),
            );
            let mut reference = GraphBlasBatch::new(query, false);
            let workload = datagen::Workload {
                initial: network.clone(),
                changesets: batches.clone(),
            };
            let expected = run_solution(&mut reference, &workload);
            assert_eq!(
                &report.final_result,
                expected.last().unwrap(),
                "query {query:?}"
            );
        }
    }

    #[test]
    fn report_json_is_well_formed() {
        let network = network();
        let mut solution = GraphBlasIncremental::new(Query::Q1, false);
        let report = StreamDriver::default().run(&mut solution, &network, stream(5, &network), 3);
        let json = report.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for field in [
            "\"solution\"",
            "\"updates_per_sec\"",
            "\"p50_latency_secs\"",
            "\"p99_latency_secs\"",
            "\"final_result\"",
        ] {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn report_json_parses_back_with_serde_json() {
        // the bench gate diffs reports by parsing them; every field must survive
        // a round trip, including strings that need escaping
        let network = network();
        let mut solution = GraphBlasIncremental::new(Query::Q2, false);
        let mut report =
            StreamDriver::default().run(&mut solution, &network, stream(13, &network), 4);
        report.solution = "odd \"name\"\twith\nescapes \u{1} and béyond".to_string();
        let parsed = serde_json::from_str(&report.to_json())
            .expect("StreamReport::to_json must emit valid JSON");
        assert_eq!(
            parsed.get("solution").and_then(serde_json::Value::as_str),
            Some(report.solution.as_str())
        );
        assert_eq!(
            parsed.get("batches").and_then(serde_json::Value::as_u64),
            Some(report.batches as u64)
        );
        assert_eq!(
            parsed
                .get("total_operations")
                .and_then(serde_json::Value::as_u64),
            Some(report.total_operations as u64)
        );
        assert_eq!(
            parsed
                .get("final_result")
                .and_then(serde_json::Value::as_str),
            Some(report.final_result.as_str())
        );
        let close = |key: &str, expected: f64| {
            let got = parsed
                .get(key)
                .and_then(serde_json::Value::as_f64)
                .unwrap_or_else(|| panic!("missing numeric field {key}"));
            assert!(
                (got - expected).abs() <= 1e-6_f64.max(expected.abs() * 1e-6),
                "field {key}: parsed {got} vs reported {expected}"
            );
        };
        close("elapsed_secs", report.elapsed_secs);
        close("updates_per_sec", report.updates_per_sec);
        close("p50_latency_secs", report.p50_latency_secs);
        close("p90_latency_secs", report.p90_latency_secs);
        close("p99_latency_secs", report.p99_latency_secs);
        close("max_latency_secs", report.max_latency_secs);
        close("load_secs", report.load_secs);
    }

    #[test]
    fn report_json_keeps_sub_microsecond_latencies() {
        // regression: fixed {:.6} formatting serialized every sub-microsecond
        // p50 as 0.000000, so the fastest (most interesting) latency figures
        // vanished from the report
        let network = network();
        let mut solution = GraphBlasIncremental::new(Query::Q1, false);
        let mut report =
            StreamDriver::default().run(&mut solution, &network, stream(19, &network), 2);
        report.p50_latency_secs = 2.5e-7;
        report.p90_latency_secs = 7.5e-7;
        let parsed = serde_json::from_str(&report.to_json()).expect("valid JSON");
        assert_eq!(
            parsed
                .get("p50_latency_secs")
                .and_then(serde_json::Value::as_f64),
            Some(2.5e-7),
            "sub-microsecond p50 must survive serialization at full precision"
        );
        assert_eq!(
            parsed
                .get("p90_latency_secs")
                .and_then(serde_json::Value::as_f64),
            Some(7.5e-7)
        );
        // non-finite values render as null rather than poisoning the parser
        report.p99_latency_secs = f64::NAN;
        let parsed = serde_json::from_str(&report.to_json()).expect("valid JSON with null");
        assert!(matches!(
            parsed.get("p99_latency_secs"),
            Some(serde_json::Value::Null)
        ));
    }

    #[test]
    fn report_json_field_order_is_stable() {
        let network = network();
        let mut solution = GraphBlasIncremental::new(Query::Q1, false);
        let report = StreamDriver::default().run(&mut solution, &network, stream(3, &network), 2);
        let json = report.to_json();
        let positions: Vec<usize> = [
            "\"solution\"",
            "\"batches\"",
            "\"total_operations\"",
            "\"applied_operations\"",
            "\"elapsed_secs\"",
            "\"updates_per_sec\"",
            "\"p50_latency_secs\"",
            "\"p90_latency_secs\"",
            "\"p99_latency_secs\"",
            "\"max_latency_secs\"",
            "\"load_secs\"",
            "\"final_result\"",
        ]
        .iter()
        .map(|field| {
            json.find(field)
                .unwrap_or_else(|| panic!("missing {field}"))
        })
        .collect();
        assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "field order changed: {json}"
        );
    }

    #[test]
    fn percentile_nearest_rank() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 100.0), 4.0);
        // nearest rank: ⌈0.5 · 4⌉ = rank 2 (the old (len−1)-scale rounding
        // returned 3.0 here — an upward-biased median)
        assert_eq!(percentile(&sorted, 50.0), 2.0);
        assert_eq!(percentile(&sorted, 90.0), 4.0); // ⌈3.6⌉ = rank 4
        assert_eq!(percentile(&sorted, 25.0), 1.0); // ⌈1.0⌉ = rank 1
        assert_eq!(percentile(&[], 50.0), 0.0);
        // odd lengths: the true median element
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), 2.0);
    }
}
