//! Crash tolerance for the sharded streaming pipeline: per-shard checkpoints,
//! a sequenced changeset log, and restore-and-replay.
//!
//! PR 5 taught the staged pipeline to *detect* a dead shard worker
//! ([`crate::pipeline::EngineError::TruncatedRun`]); this module is what turns
//! detection into survival. The design is the classic checkpoint/replay
//! discipline of streaming engines, specialised to the invariants this
//! codebase already maintains:
//!
//! * **Checkpoints** ([`ShardCheckpoint`]): every [`RecoveryConfig::checkpoint_every`]
//!   applied batches, a shard serialises its mirror [`SocialNetwork`] — the
//!   same replayable per-shard state the rebalancer keeps (DESIGN.md §5.6) —
//!   plus its current candidate list, tagged with `applied_through` (the number
//!   of batches folded in, i.e. the next sequence number the shard expects).
//!   The codec is a deterministic little-endian binary format with a trailing
//!   checksum: the same state always encodes to the same bytes, and a
//!   truncated or corrupted snapshot fails with a named [`CheckpointError`]
//!   instead of a panic.
//! * **Changeset log** ([`ChangesetLog`]): the routed per-shard changesets are
//!   already sequenced (`datagen::stream::SequencedBatch` stamps them at
//!   ingest), so the log is a plain append-only queue, pruned below the latest
//!   checkpoint's `applied_through` — its length is bounded by the checkpoint
//!   interval plus the pipeline's queue lag.
//! * **Restore**: build a fresh evaluator from the checkpointed network via the
//!   run's [`ShardFactory`](crate::shard::ShardFactory) — evaluator state is a
//!   deterministic function of the sub-network, the same property the
//!   rebalancer's donor rebuild leans on — then replay the log through the
//!   ordinary apply path. The replayed outcomes are byte-identical to the ones
//!   the dead worker would have produced, which is what lets the replacement
//!   rejoin the watermark merge with no visible gap
//!   (`tests/recovery_differential.rs` proves per-batch byte-identity under
//!   kills at arbitrary sequence numbers).
//!
//! The store ([`CheckpointStore`]) is an in-process stand-in for durable
//! storage: checkpoints cross it only as encoded bytes, so the codec is on the
//! real recovery path, not just under test.

use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

// Sync primitives come from the `crate::sync` facade so the store can be
// model-checked together with the pipeline (std re-exports in normal builds).
use crate::sync::{Arc, Mutex, MutexGuard};

use datagen::partition::Partitioner;
use datagen::{ChangeSet, Comment, Post, SocialNetwork, User};

use crate::shard::ShardRouter;
use crate::top_k::RankedEntry;

// ---------------------------------------------------------------------------
// Configuration and counters
// ---------------------------------------------------------------------------

/// Configuration of the pipeline's crash-recovery path
/// ([`crate::pipeline::PipelineConfig::recovery`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// A checkpoint is published after every `checkpoint_every` applied batches
    /// (clamped to ≥ 1). Smaller values bound the changeset log (and so replay
    /// time after a crash) tighter at the cost of serialising the mirror more
    /// often.
    pub checkpoint_every: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            checkpoint_every: 8,
        }
    }
}

/// Recovery counters of one pipelined run, surfaced through
/// [`crate::pipeline::PipelineStats::recovery`] and the `stream_throughput`
/// report's `recovery` block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RecoveryStats {
    /// Shard-worker deaths observed (kill injection or a caught panic).
    pub crashes: u64,
    /// Successful restores (one per crash when recovery is enabled).
    pub restores: u64,
    /// Changeset-log entries replayed across all restores.
    pub replayed_batches: u64,
    /// Checkpoints published (the initial per-shard checkpoints included).
    pub checkpoints: u64,
    /// Total encoded size of all published checkpoints, in bytes.
    pub checkpoint_bytes: u64,
    /// Worst restore latency (checkpoint load + rebuild + replay), in seconds.
    pub max_restore_secs: f64,
}

// ---------------------------------------------------------------------------
// Checkpoint codec
// ---------------------------------------------------------------------------

/// Why a checkpoint snapshot failed to decode. Every variant is a named,
/// recoverable error: feeding the codec truncated or corrupted bytes must
/// never panic — a recovery path that dies on bad input is not a recovery
/// path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer ends before the encoded fields do.
    Truncated {
        /// Bytes the decoder needed to make progress.
        needed: usize,
        /// Bytes actually available.
        len: usize,
    },
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// The format version is newer than this decoder understands.
    UnsupportedVersion(u32),
    /// The trailing checksum does not match the body — the snapshot was
    /// corrupted at rest or in transit.
    ChecksumMismatch,
    /// All fields decoded but bytes remain — the snapshot was produced by a
    /// different (longer) schema.
    TrailingBytes(usize),
    /// A user name is not valid UTF-8.
    InvalidUtf8,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Truncated { needed, len } => {
                write!(f, "checkpoint truncated: needed {needed} bytes, have {len}")
            }
            CheckpointError::BadMagic => write!(f, "not a checkpoint (bad magic)"),
            CheckpointError::UnsupportedVersion(v) => {
                write!(f, "unsupported checkpoint version {v}")
            }
            CheckpointError::ChecksumMismatch => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::TrailingBytes(n) => {
                write!(f, "checkpoint has {n} trailing bytes after the last field")
            }
            CheckpointError::InvalidUtf8 => write!(f, "checkpoint user name is not valid UTF-8"),
        }
    }
}

impl std::error::Error for CheckpointError {}

const MAGIC: &[u8; 4] = b"TTCK";
const VERSION: u32 = 1;

/// FNV-1a over `bytes` — cheap, dependency-free corruption detection (not
/// authentication; a checkpoint store is trusted, disks and truncated writes
/// are not).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn put_u64(buf: &mut Vec<u8>, value: u64) {
    buf.extend_from_slice(&value.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, value: &str) {
    put_u64(buf, value.len() as u64);
    buf.extend_from_slice(value.as_bytes());
}

/// Bounds-checked little-endian reader over the checkpoint body.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.at.checked_add(n).ok_or(CheckpointError::Truncated {
            needed: usize::MAX,
            len: self.buf.len(),
        })?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated {
                needed: end,
                len: self.buf.len(),
            });
        }
        let slice = &self.buf[self.at..end]; // lint: allow(index) — end was bounds-checked against buf.len() just above
        self.at = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        let bytes = self.take(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes"))) // lint: allow(panic) — take(4) returned exactly 4 bytes
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        let bytes = self.take(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes"))) // lint: allow(panic) — take(8) returned exactly 8 bytes
    }

    fn string(&mut self) -> Result<String, CheckpointError> {
        let len = self.u64()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CheckpointError::InvalidUtf8)
    }

    /// Element count of a variable-length section, with the allocation clamped
    /// by what the remaining bytes could possibly hold (`min_elem_bytes` per
    /// element) so a corrupted count cannot drive an absurd reservation.
    fn count(&mut self, min_elem_bytes: usize) -> Result<(usize, usize), CheckpointError> {
        let count = self.u64()? as usize;
        let cap = count.min((self.buf.len() - self.at) / min_elem_bytes.max(1));
        Ok((count, cap))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }
}

/// One shard's recoverable state: the mirror sub-network its evaluator is a
/// deterministic function of, the candidate list at snapshot time (restore
/// verifies the rebuilt evaluator reproduces it), and the number of batches
/// folded in.
///
/// The encoding is canonical — the same value always encodes to the same
/// bytes — so `snapshot → restore → snapshot` round-trips to identical bytes,
/// which is how the codec tests pin down that a restore loses nothing.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardCheckpoint {
    /// Batches applied when the snapshot was taken; equivalently, the first
    /// sequence number *not* covered by this checkpoint (replay starts here).
    pub applied_through: u64,
    /// The shard's mirror sub-network: initial partition plus every routed
    /// changeset through `applied_through` batches.
    pub network: SocialNetwork,
    /// The shard's top-k candidates at snapshot time, best first.
    pub candidates: Vec<RankedEntry>,
}

impl ShardCheckpoint {
    /// Serialise to the canonical binary form (magic, version, fields,
    /// trailing FNV-1a checksum).
    pub fn encode(&self) -> Vec<u8> {
        Self::encode_parts(self.applied_through, &self.network, &self.candidates)
    }

    /// [`ShardCheckpoint::encode`] over borrowed parts — what a live shard
    /// worker calls at a checkpoint boundary, so publishing never clones the
    /// mirror network.
    pub fn encode_parts(
        applied_through: u64,
        network: &SocialNetwork,
        candidates: &[RankedEntry],
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC);
        buf.extend_from_slice(&VERSION.to_le_bytes());
        put_u64(&mut buf, applied_through);
        let n = network;
        put_u64(&mut buf, n.users.len() as u64);
        for user in &n.users {
            put_u64(&mut buf, user.id);
            put_str(&mut buf, &user.name);
        }
        put_u64(&mut buf, n.posts.len() as u64);
        for post in &n.posts {
            put_u64(&mut buf, post.id);
            put_u64(&mut buf, post.timestamp);
            put_u64(&mut buf, post.author);
        }
        put_u64(&mut buf, n.comments.len() as u64);
        for comment in &n.comments {
            put_u64(&mut buf, comment.id);
            put_u64(&mut buf, comment.timestamp);
            put_u64(&mut buf, comment.author);
            put_u64(&mut buf, comment.parent);
            put_u64(&mut buf, comment.root_post);
        }
        put_u64(&mut buf, n.friendships.len() as u64);
        for &(a, b) in &n.friendships {
            put_u64(&mut buf, a);
            put_u64(&mut buf, b);
        }
        put_u64(&mut buf, n.likes.len() as u64);
        for &(user, comment) in &n.likes {
            put_u64(&mut buf, user);
            put_u64(&mut buf, comment);
        }
        put_u64(&mut buf, candidates.len() as u64);
        for entry in candidates {
            put_u64(&mut buf, entry.score);
            put_u64(&mut buf, entry.timestamp);
            put_u64(&mut buf, entry.id);
        }
        let checksum = fnv1a(&buf);
        put_u64(&mut buf, checksum);
        buf
    }

    /// Decode a snapshot produced by [`ShardCheckpoint::encode`]. Never
    /// panics: truncation, corruption, and schema drift all surface as a
    /// named [`CheckpointError`].
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // The checksum guards everything else, so verify it first: a corrupted
        // length field must not be trusted even transiently.
        let body_len = bytes
            .len()
            .checked_sub(8)
            .ok_or(CheckpointError::Truncated {
                needed: MAGIC.len() + 4 + 8,
                len: bytes.len(),
            })?;
        let (body, tail) = bytes.split_at(body_len);
        let stored = u64::from_le_bytes(tail.try_into().expect("8 bytes")); // lint: allow(panic) — split_at left exactly the 8-byte checksum in tail (length checked above)
        if fnv1a(body) != stored {
            // distinguish the common truncation case for operators: a body too
            // short to even hold the header is truncation, not bit rot
            if body.len() < MAGIC.len() + 4 + 8 {
                return Err(CheckpointError::Truncated {
                    needed: MAGIC.len() + 4 + 8 + 8,
                    len: bytes.len(),
                });
            }
            return Err(CheckpointError::ChecksumMismatch);
        }
        let mut r = Reader { buf: body, at: 0 };
        if r.take(MAGIC.len())? != MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let applied_through = r.u64()?;
        let (count, cap) = r.count(16)?;
        let mut users = Vec::with_capacity(cap);
        for _ in 0..count {
            let id = r.u64()?;
            let name = r.string()?;
            users.push(User { id, name });
        }
        let (count, cap) = r.count(24)?;
        let mut posts = Vec::with_capacity(cap);
        for _ in 0..count {
            posts.push(Post {
                id: r.u64()?,
                timestamp: r.u64()?,
                author: r.u64()?,
            });
        }
        let (count, cap) = r.count(40)?;
        let mut comments = Vec::with_capacity(cap);
        for _ in 0..count {
            comments.push(Comment {
                id: r.u64()?,
                timestamp: r.u64()?,
                author: r.u64()?,
                parent: r.u64()?,
                root_post: r.u64()?,
            });
        }
        let (count, cap) = r.count(16)?;
        let mut friendships = Vec::with_capacity(cap);
        for _ in 0..count {
            friendships.push((r.u64()?, r.u64()?));
        }
        let (count, cap) = r.count(16)?;
        let mut likes = Vec::with_capacity(cap);
        for _ in 0..count {
            likes.push((r.u64()?, r.u64()?));
        }
        let (count, cap) = r.count(24)?;
        let mut candidates = Vec::with_capacity(cap);
        for _ in 0..count {
            candidates.push(RankedEntry {
                score: r.u64()?,
                timestamp: r.u64()?,
                id: r.u64()?,
            });
        }
        if r.remaining() != 0 {
            return Err(CheckpointError::TrailingBytes(r.remaining()));
        }
        Ok(ShardCheckpoint {
            applied_through,
            network: SocialNetwork {
                users,
                posts,
                comments,
                friendships,
                likes,
            },
            candidates,
        })
    }

    /// Re-partition this checkpoint over a new topology: one checkpoint per
    /// shard of `partitioner` (whose count must be `new_count`).
    ///
    /// This is the §5.6 donor-rebuild path applied wholesale — a fresh
    /// [`ShardRouter`] over the mirror network re-derives sticky ownership and
    /// the presence-tracked friendship replicas ("edge in shard iff both
    /// endpoints present"), so an evaluator built from each part is exact by
    /// the same argument as the initial load. The candidate lists are routed
    /// to their new owners, which keeps every entry exact but may leave a
    /// part's list short of its true top-k (a submission ranked below the
    /// donor's k can enter a narrower shard's top-k): callers that publish
    /// these checkpoints re-stamp the lists from the rebuilt evaluators.
    pub fn split(&self, partitioner: &dyn Partitioner, new_count: usize) -> Vec<ShardCheckpoint> {
        debug_assert_eq!(
            partitioner.shard_count(),
            new_count,
            "split must be driven by an already-resized policy"
        );
        let router = ShardRouter::with_partitioner(&self.network, partitioner.clone_box());
        let parts = router.split_initial(&self.network);
        let mut candidates: Vec<Vec<RankedEntry>> = vec![Vec::new(); new_count];
        for entry in &self.candidates {
            // Q2 ranks comments, Q1 ranks posts; either way the owner is the
            // shard of the submission's discussion tree.
            let owner = router
                .shard_of_comment(entry.id)
                .or_else(|| router.shard_of_post(entry.id));
            if let Some(list) = owner.and_then(|shard| candidates.get_mut(shard)) {
                list.push(*entry);
            }
        }
        parts
            .into_iter()
            .zip(candidates)
            .map(|(network, candidates)| ShardCheckpoint {
                applied_through: self.applied_through,
                network,
                candidates,
            })
            .collect()
    }

    /// Union the per-shard checkpoints of one drained topology back into a
    /// single checkpoint (the first half of a reshard: merge, then
    /// [`ShardCheckpoint::split`] under the new policy).
    ///
    /// Ownership is a partition, so posts, comments, and likes concatenate
    /// disjointly in shard order; the broadcast-replicated user registries and
    /// the friendship replicas are deduplicated (first occurrence wins, which
    /// keeps the merge deterministic). The checkpoints must all be drained to
    /// the same `applied_through`.
    ///
    /// **The merged friendship set under-approximates the live graph**: an
    /// edge whose endpoints were never co-present on any shard exists in no
    /// mirror, only in the live router's global adjacency. A caller resharding
    /// a live stream must overwrite `network.friendships` with
    /// [`ShardRouter::live_friendships`] before splitting, or later presence
    /// backfills would miss those edges (DESIGN.md §5.8).
    pub fn merge(checkpoints: Vec<Self>) -> Self {
        let applied_through = checkpoints
            .iter()
            .map(|c| c.applied_through)
            .max()
            .unwrap_or(0);
        debug_assert!(
            checkpoints
                .iter()
                .all(|c| c.applied_through == applied_through),
            "merged checkpoints must be drained to one applied_through"
        );
        let mut network = SocialNetwork::default();
        let mut candidates = Vec::new();
        let mut seen_users = HashSet::new();
        let mut seen_edges = HashSet::new();
        for checkpoint in checkpoints {
            for user in checkpoint.network.users {
                if seen_users.insert(user.id) {
                    network.users.push(user);
                }
            }
            network.posts.extend(checkpoint.network.posts);
            network.comments.extend(checkpoint.network.comments);
            for (a, b) in checkpoint.network.friendships {
                if seen_edges.insert((a.min(b), a.max(b))) {
                    network.friendships.push((a, b));
                }
            }
            network.likes.extend(checkpoint.network.likes);
            candidates.extend(checkpoint.candidates);
        }
        ShardCheckpoint {
            applied_through,
            network,
            candidates,
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint store
// ---------------------------------------------------------------------------

/// The shared per-shard checkpoint store: an in-process stand-in for durable
/// storage. Workers publish encoded snapshots as they stream; the supervisor
/// loads the latest one when a worker dies. Snapshots cross the store only as
/// bytes, so every restore exercises the full codec.
///
/// Clones share state (`Arc`), which is how one store serves every stage
/// thread of a run.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    slots: Arc<Mutex<Vec<Option<StoredCheckpoint>>>>,
}

#[derive(Debug)]
struct StoredCheckpoint {
    applied_through: u64,
    bytes: Vec<u8>,
}

impl CheckpointStore {
    /// Create an empty store with one slot per shard.
    pub fn new(shards: usize) -> Self {
        CheckpointStore {
            slots: Arc::new(Mutex::new((0..shards).map(|_| None).collect())),
        }
    }

    /// Poisoning policy: **recover the guard**. A panicking worker (a crashed
    /// evaluator unwinding through `publish`) poisons this mutex, but every
    /// write is a whole-slot replacement guarded by the monotone
    /// `applied_through` check, so the data is never left half-updated — and
    /// propagating the poison would cascade one shard's crash into failed
    /// restores of *unrelated* shards (the bug fixed in this revision: the
    /// old `.expect("checkpoint store poisoned")` here killed the supervisor
    /// exactly when recovery was needed most).
    fn slots(&self) -> MutexGuard<'_, Vec<Option<StoredCheckpoint>>> {
        match self.slots.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publish `bytes` as `shard`'s snapshot covering `applied_through`
    /// batches. Stale publishes (older than what the slot already holds, e.g.
    /// from a replay that re-crossed an old checkpoint boundary) are ignored —
    /// the store is monotone per shard.
    pub fn publish(&self, shard: usize, applied_through: u64, bytes: Vec<u8>) {
        let mut slots = self.slots();
        let slot = &mut slots[shard]; // lint: allow(index) — shard ids come from the supervisor, which sized the store over 0..shards
        if slot
            .as_ref()
            .is_none_or(|stored| stored.applied_through <= applied_through)
        {
            *slot = Some(StoredCheckpoint {
                applied_through,
                bytes,
            });
        }
    }

    /// `applied_through` of `shard`'s latest snapshot, if one was published —
    /// what the changeset log prunes against.
    pub fn applied_through(&self, shard: usize) -> Option<u64> {
        let slots = self.slots();
        slots[shard].as_ref().map(|stored| stored.applied_through) // lint: allow(index) — shard < shards as above
    }

    /// Load `shard`'s latest snapshot as `(applied_through, bytes)`.
    pub fn load(&self, shard: usize) -> Option<(u64, Vec<u8>)> {
        let slots = self.slots();
        slots[shard] // lint: allow(index) — shard < shards as above
            .as_ref()
            .map(|stored| (stored.applied_through, stored.bytes.clone()))
    }

    /// Adjust the slot count to a new topology (elastic reshard): slots for
    /// shards that disappeared are dropped, new shards start empty. Surviving
    /// slots keep their snapshots, which the monotone publish rule supersedes
    /// as the post-reshard checkpoints land.
    pub fn resize(&self, shards: usize) {
        let mut slots = self.slots();
        slots.resize_with(shards, || None);
    }
}

// ---------------------------------------------------------------------------
// Store trait and the file-backed store
// ---------------------------------------------------------------------------

/// What the pipeline requires of a checkpoint store. [`CheckpointStore`] is
/// the in-process implementation every test and default run uses;
/// [`FileCheckpointStore`] persists the same encoded snapshots to a directory
/// (`stream_throughput --checkpoint-dir`). Snapshots cross every
/// implementation as encoded bytes only, so the codec — checksum included —
/// is always on the restore path.
pub trait CheckpointStorage: Send + Sync + fmt::Debug {
    /// Publish `bytes` as `shard`'s snapshot covering `applied_through`
    /// batches. Implementations must be monotone per shard: a stale publish
    /// (older than what is already stored) is ignored.
    fn publish(&self, shard: usize, applied_through: u64, bytes: Vec<u8>);

    /// `applied_through` of `shard`'s latest verifiable snapshot, if any.
    fn applied_through(&self, shard: usize) -> Option<u64>;

    /// Load `shard`'s latest snapshot as `(applied_through, bytes)`. A
    /// snapshot that fails verification must not be served (`None`, never a
    /// panic): the caller treats a missing snapshot as "rebuild from the
    /// initial partition and replay".
    fn load(&self, shard: usize) -> Option<(u64, Vec<u8>)>;

    /// Adjust to a new shard count during an elastic reshard. Shards `>=
    /// shards` will never be addressed again.
    fn resize(&self, shards: usize);
}

impl CheckpointStorage for CheckpointStore {
    fn publish(&self, shard: usize, applied_through: u64, bytes: Vec<u8>) {
        CheckpointStore::publish(self, shard, applied_through, bytes);
    }

    fn applied_through(&self, shard: usize) -> Option<u64> {
        CheckpointStore::applied_through(self, shard)
    }

    fn load(&self, shard: usize) -> Option<(u64, Vec<u8>)> {
        CheckpointStore::load(self, shard)
    }

    fn resize(&self, shards: usize) {
        CheckpointStore::resize(self, shards);
    }
}

/// Durable checkpoints: one `shard-N.ttck` file per shard under a directory,
/// written via a temp-file rename so a crash mid-write never clobbers the
/// previous good snapshot, and **verified before parse** on every read — the
/// trailing FNV-1a checksum and the TTCK header are checked before any length
/// field is trusted, so a corrupted or truncated file degrades to "no
/// checkpoint" instead of a panic or a garbage restore.
#[derive(Clone, Debug)]
pub struct FileCheckpointStore {
    dir: PathBuf,
}

impl FileCheckpointStore {
    /// Open (creating if needed) a store rooted at `dir`. Snapshots already
    /// present — a previous run's — are served as-is, which is what makes the
    /// store durable across processes.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(FileCheckpointStore { dir })
    }

    fn path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard-{shard}.ttck"))
    }

    /// Checksum + header verification without decoding the body: returns the
    /// snapshot's `applied_through` iff the bytes are a well-sealed TTCK
    /// snapshot of a version this build understands.
    fn verify(bytes: &[u8]) -> Option<u64> {
        let body_len = bytes.len().checked_sub(8)?;
        let (body, tail) = bytes.split_at(body_len);
        let stored = u64::from_le_bytes(tail.try_into().ok()?);
        if fnv1a(body) != stored {
            return None;
        }
        if body.get(..MAGIC.len())? != MAGIC {
            return None;
        }
        let version = u32::from_le_bytes(body.get(4..8)?.try_into().ok()?);
        if version != VERSION {
            return None;
        }
        Some(u64::from_le_bytes(body.get(8..16)?.try_into().ok()?))
    }

    fn read_verified(&self, shard: usize) -> Option<(u64, Vec<u8>)> {
        let bytes = std::fs::read(self.path(shard)).ok()?;
        let applied_through = Self::verify(&bytes)?;
        Some((applied_through, bytes))
    }
}

impl CheckpointStorage for FileCheckpointStore {
    fn publish(&self, shard: usize, applied_through: u64, bytes: Vec<u8>) {
        if CheckpointStorage::applied_through(self, shard)
            .is_some_and(|have| have > applied_through)
        {
            return; // monotone per shard, like the in-process store
        }
        let tmp = self.dir.join(format!("shard-{shard}.ttck.tmp"));
        if let Err(err) = std::fs::write(&tmp, &bytes) {
            eprintln!("checkpoint publish failed for shard {shard}: {err}");
            return;
        }
        if let Err(err) = std::fs::rename(&tmp, self.path(shard)) {
            eprintln!("checkpoint publish failed for shard {shard}: {err}");
        }
    }

    fn applied_through(&self, shard: usize) -> Option<u64> {
        self.read_verified(shard)
            .map(|(applied_through, _)| applied_through)
    }

    fn load(&self, shard: usize) -> Option<(u64, Vec<u8>)> {
        self.read_verified(shard)
    }

    fn resize(&self, shards: usize) {
        // drop the files of shards that no longer exist so a later process
        // restart cannot resurrect a pre-reshard topology
        let Ok(entries) = std::fs::read_dir(&self.dir) else {
            return;
        };
        for entry in entries.flatten() {
            let name = entry.file_name();
            let stale = name
                .to_str()
                .and_then(|name| name.strip_prefix("shard-"))
                .and_then(|rest| rest.strip_suffix(".ttck"))
                .and_then(|index| index.parse::<usize>().ok())
                .is_some_and(|index| index >= shards);
            if stale {
                let _ = std::fs::remove_file(entry.path());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Changeset log
// ---------------------------------------------------------------------------

/// One routed changeset retained for replay, with the ingest-enqueue instant
/// the pipeline's end-to-end latency accounting needs when the outcome is
/// re-delivered by a replay.
#[derive(Clone, Debug)]
pub struct LogEntry {
    /// Ingest sequence number of the batch this changeset was routed from.
    pub seq: u64,
    /// When the originating batch entered the pipeline.
    pub enqueued: Instant,
    /// The shard's slice of the (coalesced) batch.
    pub ops: ChangeSet,
}

/// The append-only sequenced changeset log of one shard: every changeset
/// routed to the shard since its latest checkpoint. Bounded by the checkpoint
/// interval — entries below the latest snapshot's `applied_through` are pruned
/// as the stream advances.
#[derive(Debug, Default)]
pub struct ChangesetLog {
    entries: VecDeque<LogEntry>,
}

impl ChangesetLog {
    /// Append one routed changeset. Sequence numbers must be appended in
    /// order (the route stage is the single writer).
    pub fn append(&mut self, entry: LogEntry) {
        debug_assert!(
            self.entries.back().is_none_or(|last| last.seq < entry.seq),
            "changeset log appended out of order"
        );
        self.entries.push_back(entry);
    }

    /// Drop every entry covered by a checkpoint with the given
    /// `applied_through` (i.e. entries with `seq < applied_through`).
    pub fn prune_through(&mut self, applied_through: u64) {
        while self
            .entries
            .front()
            .is_some_and(|entry| entry.seq < applied_through)
        {
            self.entries.pop_front();
        }
    }

    /// The entries a restore must replay: sequence numbers in
    /// `[from, through]` (inclusive on both ends).
    pub fn replay_range(&self, from: u64, through: u64) -> impl Iterator<Item = &LogEntry> {
        self.entries
            .iter()
            .filter(move |entry| entry.seq >= from && entry.seq <= through)
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the log holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::ChangeOperation;

    fn sample_network() -> SocialNetwork {
        SocialNetwork {
            users: vec![
                User {
                    id: 1,
                    name: "alice".to_string(),
                },
                User {
                    id: 2,
                    name: "bób".to_string(), // non-ASCII survives the codec
                },
            ],
            posts: vec![Post {
                id: 10,
                timestamp: 100,
                author: 1,
            }],
            comments: vec![Comment {
                id: 20,
                timestamp: 101,
                author: 2,
                parent: 10,
                root_post: 10,
            }],
            friendships: vec![(1, 2)],
            likes: vec![(1, 20), (2, 20)],
        }
    }

    fn sample_checkpoint() -> ShardCheckpoint {
        ShardCheckpoint {
            applied_through: 7,
            network: sample_network(),
            candidates: vec![
                RankedEntry {
                    score: 42,
                    timestamp: 101,
                    id: 20,
                },
                RankedEntry {
                    score: 1,
                    timestamp: 100,
                    id: 10,
                },
            ],
        }
    }

    #[test]
    fn encode_decode_round_trips_to_identical_bytes() {
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.encode();
        let decoded = ShardCheckpoint::decode(&bytes).expect("well-formed snapshot");
        assert_eq!(decoded, checkpoint);
        assert_eq!(decoded.encode(), bytes, "the encoding is canonical");
    }

    #[test]
    fn empty_state_round_trips() {
        let checkpoint = ShardCheckpoint {
            applied_through: 0,
            network: SocialNetwork::default(),
            candidates: Vec::new(),
        };
        let bytes = checkpoint.encode();
        assert_eq!(
            ShardCheckpoint::decode(&bytes).expect("empty is well-formed"),
            checkpoint
        );
    }

    #[test]
    fn every_truncation_is_a_named_error_not_a_panic() {
        let bytes = sample_checkpoint().encode();
        for cut in 0..bytes.len() {
            let err = ShardCheckpoint::decode(&bytes[..cut])
                .expect_err("a strict prefix must never decode");
            assert!(
                matches!(
                    err,
                    CheckpointError::Truncated { .. } | CheckpointError::ChecksumMismatch
                ),
                "cut at {cut}: unexpected error {err:?}"
            );
        }
    }

    #[test]
    fn corruption_is_detected_by_the_checksum() {
        let bytes = sample_checkpoint().encode();
        // flip one bit in a handful of positions across the buffer, the
        // trailing checksum itself included
        for at in [0, 4, 12, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 0x01;
            let err = ShardCheckpoint::decode(&corrupt).expect_err("corruption must not decode");
            assert_eq!(err, CheckpointError::ChecksumMismatch, "byte {at}");
        }
    }

    #[test]
    fn bad_magic_and_versions_are_named() {
        let mut bytes = sample_checkpoint().encode();
        // valid checksum over a wrong magic: re-seal after tampering
        bytes[0] = b'X';
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            ShardCheckpoint::decode(&bytes),
            Err(CheckpointError::BadMagic)
        );

        let mut bytes = sample_checkpoint().encode();
        bytes[4] = 99; // version field
        let body_len = bytes.len() - 8;
        let checksum = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            ShardCheckpoint::decode(&bytes),
            Err(CheckpointError::UnsupportedVersion(99))
        );
    }

    #[test]
    fn resealed_trailing_bytes_are_named() {
        // a schema-drifted (longer) snapshot with a *valid* checksum must be
        // rejected by the field parser, not silently half-read
        let mut bytes = sample_checkpoint().encode();
        bytes.truncate(bytes.len() - 8);
        bytes.extend_from_slice(&[0xAB, 0xCD, 0xEF]);
        let checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&checksum.to_le_bytes());
        assert_eq!(
            ShardCheckpoint::decode(&bytes),
            Err(CheckpointError::TrailingBytes(3))
        );
    }

    #[test]
    fn errors_render_for_operators() {
        let rendered = CheckpointError::Truncated { needed: 10, len: 3 }.to_string();
        assert!(rendered.contains("truncated"), "{rendered}");
        assert!(CheckpointError::ChecksumMismatch
            .to_string()
            .contains("checksum"),);
    }

    #[test]
    fn store_is_monotone_per_shard() {
        let store = CheckpointStore::new(2);
        assert_eq!(store.applied_through(0), None);
        assert_eq!(store.load(1), None);
        store.publish(0, 8, vec![1]);
        store.publish(0, 16, vec![2]);
        assert_eq!(store.load(0), Some((16, vec![2])));
        // a stale publish (replay re-crossing an old boundary) is ignored
        store.publish(0, 8, vec![3]);
        assert_eq!(store.load(0), Some((16, vec![2])));
        // equal applied_through re-publishes (idempotent replay) are accepted
        store.publish(0, 16, vec![4]);
        assert_eq!(store.applied_through(0), Some(16));
        assert_eq!(store.applied_through(1), None, "slots are per shard");
        // clones share state
        let clone = store.clone();
        clone.publish(1, 4, vec![9]);
        assert_eq!(store.load(1), Some((4, vec![9])));
    }

    #[test]
    fn log_prunes_below_checkpoints_and_replays_ranges() {
        let mut log = ChangesetLog::default();
        assert!(log.is_empty());
        let now = Instant::now();
        for seq in 0..10u64 {
            log.append(LogEntry {
                seq,
                enqueued: now,
                ops: ChangeSet {
                    operations: vec![ChangeOperation::AddFriendship { a: seq, b: seq + 1 }],
                },
            });
        }
        assert_eq!(log.len(), 10);
        log.prune_through(4); // a checkpoint covering seqs 0..=3 landed
        assert_eq!(log.len(), 6);
        let replayed: Vec<u64> = log.replay_range(4, 7).map(|e| e.seq).collect();
        assert_eq!(replayed, vec![4, 5, 6, 7]);
        let tail: Vec<u64> = log.replay_range(8, 100).map(|e| e.seq).collect();
        assert_eq!(
            tail,
            vec![8, 9],
            "an open-ended tail replay is bounded by the log"
        );
        log.prune_through(100);
        assert!(log.is_empty());
    }

    #[test]
    fn default_recovery_config_bounds_the_log() {
        let config = RecoveryConfig::default();
        assert_eq!(config.checkpoint_every, 8);
        let stats = RecoveryStats::default();
        assert_eq!(stats.crashes, 0);
        assert_eq!(stats.max_restore_secs, 0.0);
    }

    #[test]
    fn a_poisoned_store_still_serves_every_shard() {
        // regression: the store used to `.expect("checkpoint store poisoned")`
        // on every lock, so one thread panicking while holding the slots lock
        // cascaded into failed restores of *unrelated* shards. The store's
        // monotone whole-slot publishes mean a poisoned lock never guards
        // half-written data — `slots()` recovers the guard via `into_inner`.
        use crate::sync::panic::{catch_unwind, AssertUnwindSafe};
        let store = CheckpointStore::new(2);
        store.publish(0, 8, vec![1, 2, 3]);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let _guard = store.slots();
            panic!("injected panic while holding the slots lock");
        }));
        assert!(result.is_err(), "the injected panic must propagate");
        // publishes and restores of a *different* shard keep working...
        store.publish(1, 4, vec![9]);
        assert_eq!(store.load(1), Some((4, vec![9])));
        // ...and the shard published before the poison is still intact
        assert_eq!(store.load(0), Some((8, vec![1, 2, 3])));
        store.publish(0, 16, vec![4]);
        assert_eq!(store.applied_through(0), Some(16));
    }

    #[test]
    fn store_resize_drops_vanished_shards_and_opens_new_slots() {
        let store = CheckpointStore::new(4);
        store.publish(0, 8, vec![1]);
        store.publish(3, 8, vec![3]);
        store.resize(2);
        assert_eq!(store.load(0), Some((8, vec![1])), "surviving slot kept");
        store.resize(4);
        assert_eq!(store.load(3), None, "re-grown slot starts empty");
        store.publish(3, 2, vec![9]);
        assert_eq!(store.load(3), Some((2, vec![9])));
    }

    fn edge_set(network: &SocialNetwork) -> HashSet<(u64, u64)> {
        network
            .friendships
            .iter()
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect()
    }

    #[test]
    fn split_re_partitions_and_merge_reassembles() {
        use datagen::{generate_workload, GeneratorConfig};
        let network = generate_workload(&GeneratorConfig::tiny(19)).initial;
        let candidates: Vec<RankedEntry> = network
            .comments
            .iter()
            .take(4)
            .map(|c| RankedEntry {
                score: 5,
                timestamp: c.timestamp,
                id: c.id,
            })
            .collect();
        let whole = ShardCheckpoint {
            applied_through: 12,
            network: network.clone(),
            candidates: candidates.clone(),
        };

        use datagen::partition::ModuloPartitioner;
        let policy = ModuloPartitioner::new(3);
        let parts = whole.split(&policy, 3);
        assert_eq!(parts.len(), 3);
        // the split is the initial-load partition: payload partitioned,
        // registries replicated, every part at the same applied_through
        assert_eq!(
            parts.iter().map(|p| p.network.posts.len()).sum::<usize>(),
            network.posts.len()
        );
        assert_eq!(
            parts.iter().map(|p| p.network.likes.len()).sum::<usize>(),
            network.likes.len()
        );
        for part in &parts {
            assert_eq!(part.applied_through, 12);
            assert_eq!(part.network.users.len(), network.users.len());
            assert!(edge_set(&part.network).is_subset(&edge_set(&network)));
        }
        // every candidate landed on exactly one part
        let routed: usize = parts.iter().map(|p| p.candidates.len()).sum();
        assert_eq!(routed, candidates.len());

        // merge(split(x)) holds the same payload as x, up to concatenation
        // order and the replica under-approximation of friendships
        let merged = ShardCheckpoint::merge(parts);
        assert_eq!(merged.applied_through, 12);
        assert_eq!(merged.network.posts.len(), network.posts.len());
        assert_eq!(merged.network.comments.len(), network.comments.len());
        assert_eq!(merged.network.likes.len(), network.likes.len());
        assert_eq!(merged.network.users.len(), network.users.len());
        assert!(edge_set(&merged.network).is_subset(&edge_set(&network)));
        let merged_candidates: HashSet<u64> = merged.candidates.iter().map(|c| c.id).collect();
        let original: HashSet<u64> = candidates.iter().map(|c| c.id).collect();
        assert_eq!(merged_candidates, original);
    }

    #[test]
    fn merge_of_nothing_is_the_empty_checkpoint() {
        let merged = ShardCheckpoint::merge(Vec::new());
        assert_eq!(merged.applied_through, 0);
        assert_eq!(merged.network, SocialNetwork::default());
        assert!(merged.candidates.is_empty());
    }

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ttck-store-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn file_store_round_trips_through_a_directory() {
        let dir = temp_store_dir("roundtrip");
        let store = FileCheckpointStore::open(&dir).expect("temp dir is writable");
        let checkpoint = sample_checkpoint();
        let bytes = checkpoint.encode();
        CheckpointStorage::publish(&store, 0, checkpoint.applied_through, bytes.clone());
        assert_eq!(
            CheckpointStorage::applied_through(&store, 0),
            Some(checkpoint.applied_through)
        );
        let (applied_through, loaded) =
            CheckpointStorage::load(&store, 0).expect("published snapshot loads");
        assert_eq!(applied_through, checkpoint.applied_through);
        assert_eq!(
            ShardCheckpoint::decode(&loaded).expect("loaded bytes decode"),
            checkpoint
        );
        // stale publishes are ignored, like the in-process store
        CheckpointStorage::publish(&store, 0, 1, vec![0; 16]);
        assert_eq!(CheckpointStorage::load(&store, 0), Some((7, bytes.clone())));
        // durability: a second store over the same directory serves the snapshot
        let reopened = FileCheckpointStore::open(&dir).expect("reopen");
        assert_eq!(CheckpointStorage::load(&reopened, 0), Some((7, bytes)));
        assert_eq!(CheckpointStorage::load(&reopened, 1), None, "per shard");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_refuses_corrupted_and_truncated_snapshots() {
        let dir = temp_store_dir("corruption");
        let store = FileCheckpointStore::open(&dir).expect("temp dir is writable");
        let bytes = sample_checkpoint().encode();
        CheckpointStorage::publish(&store, 0, 7, bytes.clone());
        let path = dir.join("shard-0.ttck");

        // flip one byte mid-file: verify-before-parse must reject it
        let mut corrupt = bytes.clone();
        corrupt[bytes.len() / 2] ^= 0x40;
        std::fs::write(&path, &corrupt).expect("rewrite");
        assert_eq!(CheckpointStorage::load(&store, 0), None);
        assert_eq!(CheckpointStorage::applied_through(&store, 0), None);

        // truncate: same refusal, and a later good publish recovers the slot
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("rewrite");
        assert_eq!(CheckpointStorage::load(&store, 0), None);
        CheckpointStorage::publish(&store, 0, 7, bytes.clone());
        assert_eq!(CheckpointStorage::load(&store, 0), Some((7, bytes)));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_store_resize_drops_stale_shard_files() {
        let dir = temp_store_dir("resize");
        let store = FileCheckpointStore::open(&dir).expect("temp dir is writable");
        let bytes = sample_checkpoint().encode();
        for shard in 0..4 {
            CheckpointStorage::publish(&store, shard, 7, bytes.clone());
        }
        CheckpointStorage::resize(&store, 2);
        assert!(CheckpointStorage::load(&store, 0).is_some());
        assert!(CheckpointStorage::load(&store, 1).is_some());
        assert_eq!(CheckpointStorage::load(&store, 2), None);
        assert_eq!(CheckpointStorage::load(&store, 3), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
