//! Q2 incremental maintenance (lower half of Fig. 4b).
//!
//! After a changeset, the first phase (Steps 1–5) collects the comments that might be
//! affected (see [`crate::q2::affected`]); the second phase (Steps 6–9) recomputes the
//! scores of exactly those comments with the batch per-comment kernel. The changed
//! scores are merged into the previous top-3 (new scores overwrite existing ones).
//!
//! Because the per-comment re-scoring is a *full* recomputation of that comment's
//! Σ csᵢ² value, the same machinery absorbs streaming retractions: the affected-set
//! detection adds the comments of removed likes and removed friendships (see
//! [`crate::q2::affected`]), and since retracted scores may shrink, the top-k
//! candidates are rebuilt (not merged) after a changeset containing removals.

use graphblas::Vector;
use rayon::prelude::*;

use crate::graph::SocialGraph;
use crate::q2::affected::affected_comments;
use crate::q2::batch::q2_batch_scores;
use crate::q2::scoring::comment_score;
use crate::top_k::{RankedEntry, TopKTracker};
use crate::update::GraphDelta;

/// Incremental Q2 evaluator: full evaluation on the first call, affected-only
/// re-evaluation afterwards.
#[derive(Clone, Debug)]
pub struct Q2Incremental {
    scores: Vector<u64>,
    tracker: TopKTracker,
    parallel: bool,
    k: usize,
}

impl Q2Incremental {
    /// Create an evaluator returning the top `k` comments (the case study uses `k = 3`).
    pub fn new(parallel: bool, k: usize) -> Self {
        Q2Incremental {
            scores: Vector::new(0),
            tracker: TopKTracker::new(k),
            parallel,
            k,
        }
    }

    /// First (full) evaluation, retaining all scores and the top-k candidates.
    pub fn initialize(&mut self, graph: &SocialGraph) -> String {
        self.scores = q2_batch_scores(graph, self.parallel);
        let entries = (0..graph.comment_count()).map(|c| RankedEntry {
            score: self.scores.get(c).unwrap_or(0),
            timestamp: graph.comment_timestamp(c),
            id: graph.comment_id(c),
        });
        self.tracker.rebuild(entries);
        self.tracker.format()
    }

    /// Incremental re-evaluation after `delta` has been applied to `graph`: only the
    /// affected comments are re-scored.
    pub fn update(&mut self, graph: &SocialGraph, delta: &GraphDelta) -> String {
        self.scores.resize(graph.comment_count());

        // Steps 1–5: affected comments.
        let affected = affected_comments(graph, delta, self.parallel);

        // Steps 6–9: re-score the affected comments with the batch kernel,
        // parallelised at comment granularity as in the paper.
        let new_scores: Vec<(usize, u64)> = if self.parallel {
            affected
                .par_iter()
                .map(|&c| (c, comment_score(graph, c)))
                .collect()
        } else {
            affected
                .iter()
                .map(|&c| (c, comment_score(graph, c)))
                .collect()
        };

        let mut changes = Vec::with_capacity(new_scores.len());
        for (c, score) in new_scores {
            self.scores
                .set(c, score)
                .expect("comment index within the grown score vector"); // lint: allow(panic) — the vector was grown to cover the comment index on the previous line
            changes.push(RankedEntry {
                score,
                timestamp: graph.comment_timestamp(c),
                id: graph.comment_id(c),
            });
        }
        if delta.has_removals() {
            // Retractions can decrease scores; merging is only exact under monotone
            // growth, so rebuild the candidates from the maintained score vector.
            let entries = (0..graph.comment_count()).map(|c| RankedEntry {
                score: self.scores.get(c).unwrap_or(0),
                timestamp: graph.comment_timestamp(c),
                id: graph.comment_id(c),
            });
            self.tracker.rebuild(entries);
        } else {
            self.tracker.merge_changes(changes);
        }
        self.tracker.format()
    }

    /// The maintained score of a comment index (0 if absent), for tests and
    /// inspection.
    pub fn score_of(&self, comment_index: usize) -> u64 {
        self.scores.get(comment_index).unwrap_or(0)
    }

    /// Number of comments whose score is currently tracked.
    pub fn tracked_comments(&self) -> usize {
        self.scores.size()
    }

    /// The `k` this evaluator was configured with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current top-k candidates (best first). The sharded pipeline merges these
    /// per-shard candidate lists into the global top-k; each comment is owned by
    /// exactly one shard, so its entry here carries its exact global score.
    pub fn candidates(&self) -> &[RankedEntry] {
        self.tracker.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::q2::batch::q2_batch_ranked;
    use crate::top_k::format_result;
    use crate::update::apply_changeset;

    #[test]
    fn initialize_matches_batch() {
        let g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q2Incremental::new(false, 3);
        assert_eq!(inc.initialize(&g), "12|11|13");
    }

    #[test]
    fn paper_update_produces_expected_scores() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q2Incremental::new(false, 3);
        inc.initialize(&g);
        let delta = apply_changeset(&mut g, &paper_example_changeset());
        let result = inc.update(&g, &delta);

        let c2 = g.comments.index_of(12).unwrap();
        let c4 = g.comments.index_of(14).unwrap();
        assert_eq!(inc.score_of(c2), 16);
        assert_eq!(inc.score_of(c4), 1);
        assert_eq!(result, "12|11|14");
    }

    #[test]
    fn incremental_matches_batch_after_every_changeset() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(53));
        let mut g = SocialGraph::from_network(&workload.initial);
        let mut inc = Q2Incremental::new(false, 3);
        let initial = inc.initialize(&g);
        assert_eq!(initial, format_result(&q2_batch_ranked(&g, false, 3)));

        for changeset in &workload.changesets {
            let delta = apply_changeset(&mut g, changeset);
            let incremental_result = inc.update(&g, &delta);
            let batch_result = format_result(&q2_batch_ranked(&g, false, 3));
            assert_eq!(incremental_result, batch_result);

            let batch_scores = q2_batch_scores(&g, false);
            for c in 0..g.comment_count() {
                assert_eq!(
                    inc.score_of(c),
                    batch_scores.get(c).unwrap_or(0),
                    "comment index {c}"
                );
            }
        }
    }

    #[test]
    fn parallel_incremental_matches_serial() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(59));
        let mut g1 = SocialGraph::from_network(&workload.initial);
        let mut g2 = g1.clone();
        let mut serial = Q2Incremental::new(false, 3);
        let mut parallel = Q2Incremental::new(true, 3);
        assert_eq!(serial.initialize(&g1), parallel.initialize(&g2));
        for cs in &workload.changesets {
            let d1 = apply_changeset(&mut g1, cs);
            let d2 = apply_changeset(&mut g2, cs);
            assert_eq!(serial.update(&g1, &d1), parallel.update(&g2, &d2));
        }
    }

    #[test]
    fn update_with_empty_changeset_is_a_noop() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q2Incremental::new(false, 3);
        let before = inc.initialize(&g);
        let delta = apply_changeset(&mut g, &datagen::ChangeSet::default());
        assert_eq!(inc.update(&g, &delta), before);
        assert_eq!(inc.tracked_comments(), 3);
    }
}
