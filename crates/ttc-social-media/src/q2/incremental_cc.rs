//! Q2 with a fully incremental connected-components backend.
//!
//! The paper's future-work item (2) proposes replacing the per-comment batch FastSV
//! run (Step 8 of the incremental Q2 algorithm) with an *incremental* connected
//! components algorithm. On the insert-only TTC workload the incremental CC reduces
//! to union–find maintenance (see [`lagraph::incremental_cc`]): each comment keeps
//! the partition of its likers, and new likes / friendships update the partitions —
//! and therefore the Σ csᵢ² scores — in near-constant time, with no subgraph
//! extraction and no FastSV iteration at all. Streaming retractions fall outside
//! what union–find can maintain (it cannot *un*-union), so the partitions of the
//! comments touched by a retraction are rebuilt from the updated matrices; all other
//! comments keep their incremental state.
//!
//! The ablation benchmark `ablation_incremental_cc` compares this variant against the
//! paper's recompute-the-affected-comments approach.

use std::collections::HashMap;

use graphblas::Index;
use lagraph::IncrementalConnectedComponents;

use crate::graph::SocialGraph;
use crate::top_k::{RankedEntry, TopKTracker};
use crate::update::GraphDelta;

/// Incremental Q2 evaluator backed by per-comment incremental connected components.
#[derive(Clone, Debug)]
pub struct Q2IncrementalCc {
    /// Partition of the likers of each comment, indexed by dense comment index.
    per_comment: Vec<IncrementalConnectedComponents>,
    /// For each user (dense index), the comments they like — needed to locate the
    /// comments affected by a new friendship.
    comments_liked_by: HashMap<Index, Vec<Index>>,
    tracker: TopKTracker,
    k: usize,
}

impl Q2IncrementalCc {
    /// Create an evaluator returning the top `k` comments.
    pub fn new(k: usize) -> Self {
        Q2IncrementalCc {
            per_comment: Vec::new(),
            comments_liked_by: HashMap::new(),
            tracker: TopKTracker::new(k),
            k,
        }
    }

    /// First evaluation: build the per-comment partitions from the loaded graph.
    pub fn initialize(&mut self, graph: &SocialGraph) -> String {
        let n = graph.comment_count();
        self.per_comment = vec![IncrementalConnectedComponents::new(); n];
        self.comments_liked_by.clear();

        // Register every liker of every comment.
        for (c, u, _) in graph.likes.iter() {
            self.per_comment[c].add_vertex(u as u64);
            self.comments_liked_by.entry(u).or_default().push(c);
        }
        // Connect likers who are friends: for each friendship (a, b), every comment
        // liked by both gets the edge.
        for (a, b, _) in graph.friends.iter() {
            if a < b {
                self.connect_common_comments(a, b);
            }
        }

        let entries = (0..n).map(|c| RankedEntry {
            score: self.per_comment[c].sum_of_squared_component_sizes(),
            timestamp: graph.comment_timestamp(c),
            id: graph.comment_id(c),
        });
        self.tracker.rebuild(entries);
        self.tracker.format()
    }

    /// Incremental re-evaluation after `delta` has been applied to `graph`.
    ///
    /// Union–find cannot *un*-union, so edge retractions are handled by rebuilding
    /// the partitions of exactly the comments a retraction touches from the updated
    /// matrices (the insert-only fast path is unchanged). The candidate pool is then
    /// rebuilt rather than merged, since retracted scores may shrink.
    pub fn update(&mut self, graph: &SocialGraph, delta: &GraphDelta) -> String {
        // New comments: empty partitions.
        while self.per_comment.len() < graph.comment_count() {
            self.per_comment.push(IncrementalConnectedComponents::new());
        }

        let mut touched: Vec<Index> = Vec::new();

        // Retractions first: drop the stale liker bookkeeping, then rebuild the
        // affected partitions from the (already updated) Likes / Friends matrices.
        if delta.has_removals() {
            let mut dirty: std::collections::BTreeSet<Index> = std::collections::BTreeSet::new();
            for &(c, u) in &delta.removed_likes {
                if let Some(liked) = self.comments_liked_by.get_mut(&u) {
                    liked.retain(|&lc| lc != c);
                }
                dirty.insert(c);
            }
            for &(a, b) in &delta.removed_friendships {
                let liked_a = self.comments_liked_by.get(&a).cloned().unwrap_or_default();
                let liked_b: std::collections::HashSet<Index> = self
                    .comments_liked_by
                    .get(&b)
                    .map(|v| v.iter().copied().collect())
                    .unwrap_or_default();
                for c in liked_a {
                    if liked_b.contains(&c) {
                        dirty.insert(c);
                    }
                }
            }
            for &c in &dirty {
                self.rebuild_partition(graph, c);
            }
            touched.extend(dirty);
        }

        // New likes: add the liker, and connect them to every existing liker of the
        // same comment who is already their friend (reading the updated Friends matrix).
        for &(c, u) in &delta.new_likes {
            let cc = &mut self.per_comment[c];
            cc.add_vertex(u as u64);
            let (friend_cols, _) = graph.friends.row(u);
            for &friend in friend_cols {
                if cc.contains_vertex(friend as u64) {
                    cc.add_edge(u as u64, friend as u64);
                }
            }
            self.comments_liked_by.entry(u).or_default().push(c);
            touched.push(c);
        }

        // New friendships: connect the endpoints in every comment both of them like.
        for &(a, b) in &delta.new_friendships {
            touched.extend(self.connect_common_comments(a, b));
        }

        // New comments are "touched" too (their score is 0 until someone likes them,
        // but they must enter the candidate pool for completeness).
        touched.extend(delta.new_comments.iter().copied());

        touched.sort_unstable();
        touched.dedup();

        if delta.has_removals() {
            // retracted scores may have shrunk: rebuild the candidate pool
            let entries = (0..graph.comment_count()).map(|c| RankedEntry {
                score: self.per_comment[c].sum_of_squared_component_sizes(),
                timestamp: graph.comment_timestamp(c),
                id: graph.comment_id(c),
            });
            self.tracker.rebuild(entries);
        } else {
            let changes: Vec<RankedEntry> = touched
                .into_iter()
                .map(|c| RankedEntry {
                    score: self.per_comment[c].sum_of_squared_component_sizes(),
                    timestamp: graph.comment_timestamp(c),
                    id: graph.comment_id(c),
                })
                .collect();
            self.tracker.merge_changes(changes);
        }
        self.tracker.format()
    }

    /// Current score of a comment index.
    pub fn score_of(&self, comment_index: Index) -> u64 {
        self.per_comment
            .get(comment_index)
            .map(|cc| cc.sum_of_squared_component_sizes())
            .unwrap_or(0)
    }

    /// The `k` this evaluator was configured with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current top-k candidates (best first). The sharded pipeline merges these
    /// per-shard candidate lists into the global top-k; each comment is owned by
    /// exactly one shard, so its entry here carries its exact global score.
    pub fn candidates(&self) -> &[RankedEntry] {
        self.tracker.current()
    }

    /// Rebuild the liker partition of one comment from the current `Likes` and
    /// `Friends` matrices (used after retractions, which union–find cannot undo).
    fn rebuild_partition(&mut self, graph: &SocialGraph, c: Index) {
        let cc = &mut self.per_comment[c];
        cc.clear();
        let (likers, _) = graph.likes.row(c);
        let liker_set: std::collections::HashSet<Index> = likers.iter().copied().collect();
        for &u in likers {
            cc.add_vertex(u as u64);
            let (friends, _) = graph.friends.row(u);
            for &v in friends {
                if v < u && liker_set.contains(&v) {
                    cc.add_edge(u as u64, v as u64);
                }
            }
        }
    }

    /// Connect users `a` and `b` in every comment liked by both; returns the affected
    /// comment indices.
    fn connect_common_comments(&mut self, a: Index, b: Index) -> Vec<Index> {
        let liked_a = self.comments_liked_by.get(&a).cloned().unwrap_or_default();
        let liked_b: std::collections::HashSet<Index> = self
            .comments_liked_by
            .get(&b)
            .map(|v| v.iter().copied().collect())
            .unwrap_or_default();
        let mut affected = Vec::new();
        for c in liked_a {
            if liked_b.contains(&c) {
                self.per_comment[c].add_edge(a as u64, b as u64);
                affected.push(c);
            }
        }
        affected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::q2::batch::{q2_batch_ranked, q2_batch_scores};
    use crate::top_k::format_result;
    use crate::update::apply_changeset;

    #[test]
    fn initialize_matches_batch_on_paper_example() {
        let g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q2IncrementalCc::new(3);
        assert_eq!(inc.initialize(&g), "12|11|13");
        let c2 = g.comments.index_of(12).unwrap();
        assert_eq!(inc.score_of(c2), 5);
    }

    #[test]
    fn paper_update_matches_figure_3b() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q2IncrementalCc::new(3);
        inc.initialize(&g);
        let delta = apply_changeset(&mut g, &paper_example_changeset());
        let result = inc.update(&g, &delta);
        let c2 = g.comments.index_of(12).unwrap();
        let c4 = g.comments.index_of(14).unwrap();
        assert_eq!(inc.score_of(c2), 16);
        assert_eq!(inc.score_of(c4), 1);
        assert_eq!(result, "12|11|14");
    }

    #[test]
    fn agrees_with_batch_and_fastsv_incremental_on_synthetic_workload() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(61));
        let mut g = SocialGraph::from_network(&workload.initial);
        let mut cc_variant = Q2IncrementalCc::new(3);
        let mut fastsv_variant = crate::q2::incremental::Q2Incremental::new(false, 3);

        let a = cc_variant.initialize(&g);
        let b = fastsv_variant.initialize(&g);
        assert_eq!(a, b);

        for cs in &workload.changesets {
            let delta = apply_changeset(&mut g, cs);
            let a = cc_variant.update(&g, &delta);
            let b = fastsv_variant.update(&g, &delta);
            let batch = format_result(&q2_batch_ranked(&g, false, 3));
            assert_eq!(a, batch);
            assert_eq!(b, batch);

            // per-comment scores agree with the batch recomputation
            let batch_scores = q2_batch_scores(&g, false);
            for c in 0..g.comment_count() {
                assert_eq!(
                    cc_variant.score_of(c),
                    batch_scores.get(c).unwrap_or(0),
                    "comment index {c}"
                );
            }
        }
    }

    #[test]
    fn k_accessor() {
        assert_eq!(Q2IncrementalCc::new(7).k(), 7);
    }
}
