//! Detection of the comments whose Q2 score may have changed (Steps 1–5 of the lower
//! half of Fig. 4b).
//!
//! A comment is *affected* by a changeset if
//! 1. it is a new comment,
//! 2. it received a new `likes` edge, or
//! 3. two users who both like it became friends (which may merge two of its
//!    components).
//!
//! Streaming workloads add the retraction mirror images:
//! 4. it lost a `likes` edge (the liker leaves its group entirely), or
//! 5. two users who both like it ended their friendship (which may split one of its
//!    components). Case (5) reuses the Fig. 4b incidence-matrix detection verbatim —
//!    the `Likes` matrix is unchanged by a friendship retraction, so "both endpoints
//!    like the comment" still identifies exactly the candidates.
//!
//! Case (3) is detected with linear algebra: the `NewFriends` incidence matrix
//! (`users′ × |new friendships|`, two 1s per column) is multiplied with `Likes′`,
//! producing the `AC` matrix that counts, per (comment, new friendship), how many of
//! the friendship's endpoints like the comment. Cells equal to 2 are kept
//! (`GxB_select`), reduced row-wise with logical OR, and the resulting comment ids are
//! extracted. The product runs on the SPA Gustavson `mxm` kernel; the
//! `ablation_spgemm` benchmark replays exactly this workload to compare accumulation
//! strategies and mask push-down against the retained reference kernels.

use std::collections::BTreeSet;

use graphblas::monoid::stock as monoids;
use graphblas::ops::{mxm, mxm_par, reduce_matrix_rows, select_matrix};
use graphblas::ops_traits::ValueEq;
use graphblas::semiring::stock as semirings;
use graphblas::Index;

use crate::graph::SocialGraph;
use crate::update::GraphDelta;

/// Collect the (sorted, deduplicated) dense comment indices whose score may have been
/// changed by `delta`.
pub fn affected_comments(graph: &SocialGraph, delta: &GraphDelta, parallel: bool) -> Vec<Index> {
    let mut affected: BTreeSet<Index> = BTreeSet::new();

    // Case 1: new comments.
    affected.extend(delta.new_comments.iter().copied());

    // Case 2: comments with new incoming likes.
    affected.extend(delta.new_likes.iter().map(|&(c, _)| c));

    // Case 4: comments that lost a like.
    affected.extend(delta.removed_likes.iter().map(|&(c, _)| c));

    // Case 3: new friendships between two users who like the same comment.
    if !delta.new_friendships.is_empty() {
        let incidence = delta.new_friends_incidence(graph);
        affected.extend(comments_liked_by_both_endpoints(
            graph, &incidence, parallel,
        ));
    }

    // Case 5: retracted friendships between two users who like the same comment.
    if !delta.removed_friendships.is_empty() {
        let incidence = delta.removed_friends_incidence(graph);
        affected.extend(comments_liked_by_both_endpoints(
            graph, &incidence, parallel,
        ));
    }

    affected.into_iter().collect()
}

/// Steps 1–4 of Fig. 4b's detection: given a `users × |pairs|` incidence matrix, the
/// comments liked by *both* endpoints of at least one pair.
fn comments_liked_by_both_endpoints(
    graph: &SocialGraph,
    incidence: &graphblas::Matrix<u64>,
    parallel: bool,
) -> Vec<Index> {
    // Step 1: AC = Likes′ ⊕.⊗ Incidence  (comments′ × |pairs|)
    let ac = if parallel {
        mxm_par(&graph.likes, incidence, semirings::plus_times::<u64>())
    } else {
        mxm(&graph.likes, incidence, semirings::plus_times::<u64>())
    }
    .expect("Likes columns equal the incidence rows (users)"); // lint: allow(panic) — dimension equality is a construction invariant of the graph matrices

    // Step 2: keep cells equal to 2 — both endpoints like the comment.
    let both = select_matrix(&ac, ValueEq::new(2u64));

    // Step 3: row-wise logical OR.
    let ac_vector = reduce_matrix_rows(&both, monoids::lor::<u64>());

    // Step 4: extract the comment ids.
    ac_vector.indices().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::update::apply_changeset;

    #[test]
    fn paper_update_affects_c2_and_c4() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let delta = apply_changeset(&mut g, &paper_example_changeset());
        let affected = affected_comments(&g, &delta, false);
        let c2 = g.comments.index_of(12).unwrap();
        let c4 = g.comments.index_of(14).unwrap();
        // exactly the ∆comments ∪ ∆likes ∪ friendship-affected set {2, 4} of Fig. 4b
        assert_eq!(affected, vec![c2, c4]);
    }

    #[test]
    fn new_friendship_between_likers_affects_the_comment() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        // u1 and u3 both like c2 and are not friends yet
        let cs = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::AddFriendship { a: 101, b: 103 }],
        };
        let delta = apply_changeset(&mut g, &cs);
        let affected = affected_comments(&g, &delta, false);
        let c2 = g.comments.index_of(12).unwrap();
        assert_eq!(affected, vec![c2]);
    }

    #[test]
    fn friendship_between_non_likers_affects_nothing() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        // add a fresh user and befriend them with u1: no comment is affected
        let cs = datagen::ChangeSet {
            operations: vec![
                datagen::ChangeOperation::AddUser {
                    user: datagen::User {
                        id: 109,
                        name: "u9".into(),
                    },
                },
                datagen::ChangeOperation::AddFriendship { a: 101, b: 109 },
            ],
        };
        let delta = apply_changeset(&mut g, &cs);
        assert!(affected_comments(&g, &delta, false).is_empty());
    }

    #[test]
    fn friendship_where_only_one_endpoint_likes_affects_nothing() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        // u1 likes c2, u2 does not (initially) — wait, u2 likes c1 only; pick c2:
        // friendship u1-u2: u1 likes c2, u2 likes c1 -> no comment has both
        // (note u1-u2 are already friends initially, so use u4 and u2: u4 likes c2,
        // u2 likes c1)
        let cs = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::AddFriendship { a: 104, b: 102 }],
        };
        let delta = apply_changeset(&mut g, &cs);
        // AC column for (u4, u2): c1 gets 1 (u2), c2 gets 1 (u4) -> no 2-valued cell
        assert!(affected_comments(&g, &delta, false).is_empty());
    }

    #[test]
    fn new_like_affects_only_that_comment() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let cs = datagen::ChangeSet {
            operations: vec![datagen::ChangeOperation::AddLike {
                user: 101,
                comment: 11,
            }],
        };
        let delta = apply_changeset(&mut g, &cs);
        let affected = affected_comments(&g, &delta, false);
        assert_eq!(affected, vec![g.comments.index_of(11).unwrap()]);
    }

    #[test]
    fn parallel_detection_matches_serial() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(47));
        let mut g = SocialGraph::from_network(&workload.initial);
        for cs in &workload.changesets {
            let delta = apply_changeset(&mut g, cs);
            assert_eq!(
                affected_comments(&g, &delta, false),
                affected_comments(&g, &delta, true)
            );
        }
    }

    #[test]
    fn empty_delta_affects_nothing() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let delta = apply_changeset(&mut g, &datagen::ChangeSet::default());
        assert!(affected_comments(&g, &delta, false).is_empty());
    }
}
