//! Per-comment scoring: the shared kernel of the batch and incremental Q2 algorithms
//! (Steps 1–4 / 6–9 of Fig. 4b).
//!
//! For one comment the steps are:
//! 1. collect the users who like the comment (one row of the `Likes` matrix),
//! 2. extract the induced friendship subgraph (`GrB_extract` on the `Friends` matrix),
//! 3. run connected components (FastSV) on the subgraph,
//! 4. sum the squared component sizes.

use graphblas::ops::extract_submatrix;
use graphblas::{Index, IndexSelection};
use lagraph::{connected_components, sum_of_squared_component_sizes};

use crate::graph::SocialGraph;

/// Score of a single comment: Σᵢ csᵢ² over the connected components of the friendship
/// subgraph induced by the users who like the comment. A comment nobody likes scores 0.
pub fn comment_score(graph: &SocialGraph, comment: Index) -> u64 {
    let (likers, _) = graph.likes.row(comment);
    score_of_likers(graph, likers)
}

/// Score of a comment given the (sorted) dense user indices that like it.
pub fn score_of_likers(graph: &SocialGraph, likers: &[Index]) -> u64 {
    if likers.is_empty() {
        return 0;
    }
    if likers.len() == 1 {
        return 1;
    }
    // Step 2: induced subgraph of the Friends matrix.
    let subgraph = extract_submatrix(
        &graph.friends,
        &IndexSelection::List(likers),
        &IndexSelection::List(likers),
    )
    .expect("liker indices are valid user indices"); // lint: allow(panic) — liker indices come from the interned user index space
                                                     // Step 3: connected components (FastSV).
    let labels = connected_components(&subgraph).expect("induced subgraph is square"); // lint: allow(panic) — the induced subgraph is square by construction
                                                                                       // Step 4: sum of squared component sizes.
    sum_of_squared_component_sizes(&labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::update::apply_changeset;

    #[test]
    fn initial_scores_match_figure_3a() {
        let g = SocialGraph::from_network(&paper_example_network());
        let c1 = g.comments.index_of(11).unwrap();
        let c2 = g.comments.index_of(12).unwrap();
        let c3 = g.comments.index_of(13).unwrap();
        // c1: likers {u2, u3}, friends -> one component of 2 -> 4
        assert_eq!(comment_score(&g, c1), 4);
        // c2: likers {u1, u3, u4}; u3-u4 friends, u1 isolated -> 1 + 4 = 5
        assert_eq!(comment_score(&g, c2), 5);
        // c3: no likers -> 0
        assert_eq!(comment_score(&g, c3), 0);
    }

    #[test]
    fn updated_scores_match_figure_3b() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        apply_changeset(&mut g, &paper_example_changeset());
        let c2 = g.comments.index_of(12).unwrap();
        let c4 = g.comments.index_of(14).unwrap();
        // c2: likers {u1, u2, u3, u4} now form a single component -> 16
        assert_eq!(comment_score(&g, c2), 16);
        // c4: single liker u4 -> 1
        assert_eq!(comment_score(&g, c4), 1);
    }

    #[test]
    fn single_liker_scores_one_without_extraction() {
        let g = SocialGraph::from_network(&paper_example_network());
        let u1 = g.users.index_of(101).unwrap();
        assert_eq!(score_of_likers(&g, &[u1]), 1);
        assert_eq!(score_of_likers(&g, &[]), 0);
    }

    #[test]
    fn likers_with_no_friendships_are_all_singletons() {
        let g = SocialGraph::from_network(&paper_example_network());
        let u1 = g.users.index_of(101).unwrap();
        let u4 = g.users.index_of(104).unwrap();
        // u1 and u4 are not friends initially
        assert_eq!(score_of_likers(&g, &[u1, u4]), 2);
    }
}
