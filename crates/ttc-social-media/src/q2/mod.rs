//! Query 2: *influential comments*.
//!
//! The score of a comment is computed on the friendship subgraph induced by the users
//! who like it: the sum of squared connected-component sizes. The query returns the
//! top-3 comments.

pub mod affected;
pub mod batch;
pub mod incremental;
pub mod incremental_cc;
pub mod scoring;

pub use affected::affected_comments;
pub use batch::{q2_batch_ranked, q2_batch_scores};
pub use incremental::Q2Incremental;
pub use incremental_cc::Q2IncrementalCc;
pub use scoring::comment_score;
