//! Q2 batch evaluation (upper half of Fig. 4b): score every comment, return the top 3.
//!
//! The paper parallelises this phase "using OpenMP constructs at the granularity of
//! comments"; here the same parallelisation is expressed with a rayon parallel
//! iterator over the comment indices.

use graphblas::Vector;
use rayon::prelude::*;

use crate::graph::SocialGraph;
use crate::q2::scoring::comment_score;
use crate::top_k::{top_k, RankedEntry};

/// Compute the Q2 score of every comment. The returned vector is dense over the
/// comment index space (comments nobody likes carry an explicit 0).
pub fn q2_batch_scores(graph: &SocialGraph, parallel: bool) -> Vector<u64> {
    let n = graph.comment_count();
    let scores: Vec<u64> = if parallel {
        (0..n)
            .into_par_iter()
            .map(|c| comment_score(graph, c))
            .collect()
    } else {
        (0..n).map(|c| comment_score(graph, c)).collect()
    };
    Vector::dense_from_fn(n, |c| scores[c])
}

/// Full Q2 evaluation: ranked top-`k` comments.
pub fn q2_batch_ranked(graph: &SocialGraph, parallel: bool, k: usize) -> Vec<RankedEntry> {
    let scores = q2_batch_scores(graph, parallel);
    let entries = (0..graph.comment_count()).map(|c| RankedEntry {
        score: scores.get(c).unwrap_or(0),
        timestamp: graph.comment_timestamp(c),
        id: graph.comment_id(c),
    });
    top_k(entries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::top_k::format_result;
    use crate::update::apply_changeset;

    #[test]
    fn initial_ranking_matches_figure_3a() {
        let g = SocialGraph::from_network(&paper_example_network());
        let ranked = q2_batch_ranked(&g, false, 3);
        // c2 (id 12) scores 5, c1 (id 11) scores 4, c3 (id 13) scores 0
        assert_eq!(format_result(&ranked), "12|11|13");
        assert_eq!(ranked[0].score, 5);
        assert_eq!(ranked[1].score, 4);
        assert_eq!(ranked[2].score, 0);
    }

    #[test]
    fn updated_ranking_matches_figure_3b() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        apply_changeset(&mut g, &paper_example_changeset());
        let ranked = q2_batch_ranked(&g, false, 3);
        // c2 now scores 16, c1 stays at 4, c4 scores 1
        assert_eq!(format_result(&ranked), "12|11|14");
        assert_eq!(ranked[0].score, 16);
        assert_eq!(ranked[2].score, 1);
    }

    #[test]
    fn parallel_matches_serial() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(41));
        let g = SocialGraph::from_network(&workload.initial);
        assert_eq!(q2_batch_scores(&g, false), q2_batch_scores(&g, true));
        assert_eq!(
            format_result(&q2_batch_ranked(&g, false, 3)),
            format_result(&q2_batch_ranked(&g, true, 3))
        );
    }

    #[test]
    fn scores_are_dense_over_comments() {
        let g = SocialGraph::from_network(&paper_example_network());
        let scores = q2_batch_scores(&g, false);
        assert_eq!(scores.nvals(), g.comment_count());
        assert_eq!(scores.size(), g.comment_count());
    }

    #[test]
    fn scores_match_object_model_recomputation() {
        // differential test against a straightforward object-model computation
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(43));
        let network = &workload.initial;
        let g = SocialGraph::from_network(network);
        let scores = q2_batch_scores(&g, false);

        for comment in &network.comments {
            let likers: Vec<u64> = network
                .likes
                .iter()
                .filter(|&&(_, c)| c == comment.id)
                .map(|&(u, _)| u)
                .collect();
            // union-find over the likers using the friendships
            let mut uf = lagraph::UnionFind::new(likers.len());
            for (i, &a) in likers.iter().enumerate() {
                for (j, &b) in likers.iter().enumerate().skip(i + 1) {
                    let friends = network
                        .friendships
                        .iter()
                        .any(|&(x, y)| (x == a && y == b) || (x == b && y == a));
                    if friends {
                        uf.union(i, j);
                    }
                }
            }
            let expected = uf.sum_of_squared_component_sizes();
            let c = g.comments.index_of(comment.id).unwrap();
            assert_eq!(
                scores.get(c).unwrap_or(0),
                expected,
                "comment {}",
                comment.id
            );
        }
    }
}
