//! Top-k selection and result formatting.
//!
//! Both queries return the **top 3** submissions ordered by score (descending), with
//! ties broken by the newer timestamp and then by the larger id — the ordering used by
//! the TTC 2018 benchmark framework. Results are rendered as `id|id|id`, the format
//! the original framework compares against the reference output.
//!
//! The incremental solutions follow the paper's approach: "merging the previous top 3
//! scores and the new ones yields the new result (new scores overwrite existing
//! ones)". Because the workload is insert-only, scores never decrease, so merging the
//! previous top-3 candidates with the changed scores is exact. [`TopKTracker`]
//! implements that merge.

use std::collections::HashSet;

use datagen::ElementId;

/// One ranked entry: `(score, timestamp, id)`.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RankedEntry {
    /// Query score of the submission.
    pub score: u64,
    /// Timestamp of the submission (newer wins ties).
    pub timestamp: u64,
    /// External element id (larger wins remaining ties).
    pub id: ElementId,
}

impl RankedEntry {
    /// Ordering key: higher score first, then newer timestamp, then larger id.
    fn key(&self) -> (u64, u64, ElementId) {
        (self.score, self.timestamp, self.id)
    }
}

/// Select the top `k` entries from an iterator of candidates.
///
/// Candidates may contain several entries for the same id (e.g. a stale score next
/// to a recomputed one); only the highest-ranked entry per id survives, so an id can
/// never occupy two of the `k` slots. (`Vec::dedup_by_key` would only drop *adjacent*
/// duplicates, which same-id entries with different scores are not after sorting.)
pub fn top_k(entries: impl IntoIterator<Item = RankedEntry>, k: usize) -> Vec<RankedEntry> {
    let mut all: Vec<RankedEntry> = entries.into_iter().collect();
    all.sort_by_key(|entry| std::cmp::Reverse(entry.key()));
    let mut seen: HashSet<ElementId> = HashSet::with_capacity(all.len());
    all.retain(|e| seen.insert(e.id));
    all.truncate(k);
    all
}

/// Render a ranked list in the benchmark's `id|id|id` output format.
pub fn format_result(entries: &[RankedEntry]) -> String {
    entries
        .iter()
        .map(|e| e.id.to_string())
        .collect::<Vec<_>>()
        .join("|")
}

/// Incrementally maintained top-k: keeps the current best `k` candidates and merges in
/// changed scores, exactly as the paper's incremental algorithms do.
#[derive(Clone, Debug)]
pub struct TopKTracker {
    k: usize,
    current: Vec<RankedEntry>,
}

impl TopKTracker {
    /// Create a tracker for the best `k` entries.
    pub fn new(k: usize) -> Self {
        TopKTracker {
            k,
            current: Vec::new(),
        }
    }

    /// Initialise (or re-initialise) from a full set of scores.
    pub fn rebuild(&mut self, entries: impl IntoIterator<Item = RankedEntry>) {
        self.current = top_k(entries, self.k);
    }

    /// Merge changed scores into the ranking: new scores overwrite the previous score
    /// of the same element, and the merged candidate pool is re-ranked.
    ///
    /// Correct under the case study's insert-only workload, where scores never
    /// decrease; an element can only enter (or move up in) the top k.
    pub fn merge_changes(&mut self, changes: impl IntoIterator<Item = RankedEntry>) {
        // Later changes overwrite earlier ones for the same element, so a batch that
        // touches an element twice contributes only its most recent score (relying on
        // top_k's highest-wins dedup instead would resurrect a stale higher score).
        let mut pool: Vec<RankedEntry> = Vec::with_capacity(self.k + 8);
        let mut slot_of: std::collections::HashMap<ElementId, usize> =
            std::collections::HashMap::new();
        for change in changes {
            match slot_of.get(&change.id) {
                Some(&slot) => pool[slot] = change,
                None => {
                    slot_of.insert(change.id, pool.len());
                    pool.push(change);
                }
            }
        }
        // previous candidates that were not overwritten by a change
        for &entry in &self.current {
            if !slot_of.contains_key(&entry.id) {
                pool.push(entry);
            }
        }
        self.current = top_k(pool, self.k);
    }

    /// The current best entries, best first.
    pub fn current(&self) -> &[RankedEntry] {
        &self.current
    }

    /// The current result in `id|id|id` format.
    pub fn format(&self) -> String {
        format_result(&self.current)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(score: u64, timestamp: u64, id: ElementId) -> RankedEntry {
        RankedEntry {
            score,
            timestamp,
            id,
        }
    }

    #[test]
    fn orders_by_score_then_timestamp_then_id() {
        let ranked = top_k(vec![e(10, 5, 1), e(20, 1, 2), e(10, 9, 3), e(10, 9, 4)], 3);
        assert_eq!(
            ranked.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![2, 4, 3]
        );
    }

    #[test]
    fn truncates_to_k() {
        let ranked = top_k((0..10).map(|i| e(i, 0, i)), 3);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].id, 9);
    }

    #[test]
    fn fewer_than_k_candidates() {
        let ranked = top_k(vec![e(1, 0, 7)], 3);
        assert_eq!(ranked.len(), 1);
        assert_eq!(format_result(&ranked), "7");
    }

    #[test]
    fn format_is_pipe_separated() {
        let ranked = top_k(vec![e(3, 0, 1), e(2, 0, 2), e(1, 0, 3)], 3);
        assert_eq!(format_result(&ranked), "1|2|3");
        assert_eq!(format_result(&[]), "");
    }

    #[test]
    fn tracker_rebuild_then_merge() {
        let mut tracker = TopKTracker::new(3);
        tracker.rebuild(vec![e(25, 10, 1), e(10, 11, 2)]);
        assert_eq!(tracker.format(), "1|2");

        // p2's score grows past p1
        tracker.merge_changes(vec![e(40, 11, 2)]);
        assert_eq!(tracker.format(), "2|1");
        assert_eq!(tracker.current()[0].score, 40);
    }

    #[test]
    fn tracker_merge_adds_new_elements() {
        let mut tracker = TopKTracker::new(3);
        tracker.rebuild(vec![e(5, 1, 1), e(4, 1, 2), e(3, 1, 3)]);
        tracker.merge_changes(vec![e(10, 2, 9)]);
        assert_eq!(tracker.format(), "9|1|2");
    }

    #[test]
    fn tracker_overwrite_does_not_duplicate() {
        let mut tracker = TopKTracker::new(3);
        tracker.rebuild(vec![e(5, 1, 1), e(4, 1, 2)]);
        tracker.merge_changes(vec![e(6, 1, 2), e(6, 1, 2)]);
        let ids: Vec<ElementId> = tracker.current().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![2, 1]);
    }

    #[test]
    fn duplicate_ids_never_occupy_two_slots() {
        // Regression: two entries for id 7 with different scores are NOT adjacent
        // after sorting (id 5 ranks between them), so dedup_by_key used to keep both
        // and id 7 occupied two of the three slots.
        let ranked = top_k(vec![e(50, 0, 7), e(40, 0, 5), e(30, 0, 7), e(20, 0, 9)], 3);
        let ids: Vec<ElementId> = ranked.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 5, 9]);
        assert_eq!(ranked[0].score, 50); // the highest-ranked entry for id 7 survives
    }

    #[test]
    fn duplicate_ids_keep_highest_ranked_entry() {
        let ranked = top_k(vec![e(10, 1, 3), e(10, 9, 3), e(10, 5, 3)], 3);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].timestamp, 9); // newest timestamp wins the tie
    }

    #[test]
    fn tracker_rebuild_with_duplicate_ids_has_no_duplicates() {
        let mut tracker = TopKTracker::new(3);
        tracker.rebuild(vec![e(50, 0, 7), e(40, 0, 5), e(30, 0, 7), e(20, 0, 9)]);
        let ids: Vec<ElementId> = tracker.current().iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![7, 5, 9]);
    }

    #[test]
    fn tracker_merge_latest_change_wins_per_id() {
        // A batch can touch an element twice (e.g. a like added then retracted);
        // the most recent change must win, not the higher score.
        let mut tracker = TopKTracker::new(3);
        tracker.rebuild(vec![e(5, 1, 1)]);
        tracker.merge_changes(vec![e(50, 2, 2), e(10, 2, 2)]);
        assert_eq!(tracker.format(), "2|1");
        assert_eq!(tracker.current()[0].score, 10);
    }

    #[test]
    fn tie_breaking_prefers_newer_then_larger_id() {
        let ranked = top_k(vec![e(5, 10, 100), e(5, 10, 200), e(5, 20, 50)], 3);
        assert_eq!(
            ranked.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![50, 200, 100]
        );
    }
}
