//! Query 1: *influential posts*.
//!
//! The score of a post is `10 × (number of its direct or indirect comments)` plus the
//! number of users liking those comments; the query returns the top-3 posts.

pub mod batch;
pub mod incremental;

pub use batch::{q1_batch_ranked, q1_batch_scores};
pub use incremental::Q1Incremental;
