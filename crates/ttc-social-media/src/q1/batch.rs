//! Q1 batch evaluation (Alg. 1 of the paper).
//!
//! ```text
//! sum            ← [⊕ⱼ RootPost(:, j)]        row-wise sum: #comments per post
//! repliesScores  ← 10 × sum                    GrB_apply with "×10"
//! likesScore     ← RootPost ⊕.⊗ likesCount     #likes received via the post's comments
//! scores         ← repliesScores ⊕ likesScore
//! ```

use graphblas::monoid::stock as monoids;
use graphblas::ops::{
    apply_vector, ewise_add_vector, mxv, mxv_par, reduce_matrix_rows, reduce_matrix_rows_par,
};
use graphblas::ops_traits::{Plus, TimesConstant};
use graphblas::semiring::stock as semirings;
use graphblas::Vector;

use crate::graph::SocialGraph;
use crate::top_k::{top_k, RankedEntry};

/// Compute the Q1 score vector (indexed by dense post index). Posts without comments
/// have no stored entry (score 0).
pub fn q1_batch_scores(graph: &SocialGraph, parallel: bool) -> Vector<u64> {
    let likes_count = graph.likes_count();

    // Line 6: number of comments per post (the stored values of RootPost are all 1).
    let sum = if parallel {
        reduce_matrix_rows_par(&graph.root_post, monoids::plus::<u64>())
    } else {
        reduce_matrix_rows(&graph.root_post, monoids::plus::<u64>())
    };

    // Line 7: multiply by 10.
    let replies_scores = apply_vector(&sum, TimesConstant::new(10u64));

    // Line 8: likes received through the post's comments.
    let likes_score = if parallel {
        mxv_par(
            &graph.root_post,
            &likes_count,
            semirings::plus_second::<u64>(),
        )
    } else {
        mxv(
            &graph.root_post,
            &likes_count,
            semirings::plus_second::<u64>(),
        )
    }
    .expect("RootPost columns equal the likesCount dimension"); // lint: allow(panic) — dimension equality is a construction invariant of the graph matrices

    // Line 9: total score.
    ewise_add_vector(&replies_scores, &likes_score, Plus::new())
        .expect("both score vectors live in the post index space") // lint: allow(panic) — both vectors are sized over the post index space
}

/// Full Q1 evaluation: scores for every post (implicit zeros included) ranked by the
/// benchmark ordering.
pub fn q1_batch_ranked(graph: &SocialGraph, parallel: bool, k: usize) -> Vec<RankedEntry> {
    let scores = q1_batch_scores(graph, parallel);
    let entries = (0..graph.post_count()).map(|p| RankedEntry {
        score: scores.get(p).unwrap_or(0),
        timestamp: graph.post_timestamp(p),
        id: graph.post_id(p),
    });
    top_k(entries, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::top_k::format_result;
    use crate::update::apply_changeset;

    #[test]
    fn initial_scores_match_figure_3a() {
        let g = SocialGraph::from_network(&paper_example_network());
        let scores = q1_batch_scores(&g, false);
        let p1 = g.posts.index_of(1).unwrap();
        let p2 = g.posts.index_of(2).unwrap();
        // p1: 2 comments (20) + 5 likes = 25; p2: 1 comment (10) + 0 likes = 10
        assert_eq!(scores.get(p1), Some(25));
        assert_eq!(scores.get(p2), Some(10));
    }

    #[test]
    fn updated_scores_match_figure_3b() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        apply_changeset(&mut g, &paper_example_changeset());
        let scores = q1_batch_scores(&g, false);
        let p1 = g.posts.index_of(1).unwrap();
        let p2 = g.posts.index_of(2).unwrap();
        // p1 gains comment c4 (+10) and two new likes (+2): 25 + 12 = 37
        assert_eq!(scores.get(p1), Some(37));
        assert_eq!(scores.get(p2), Some(10));
    }

    #[test]
    fn parallel_scores_match_serial() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        apply_changeset(&mut g, &paper_example_changeset());
        assert_eq!(q1_batch_scores(&g, false), q1_batch_scores(&g, true));
    }

    #[test]
    fn ranking_orders_posts_by_score() {
        let g = SocialGraph::from_network(&paper_example_network());
        let ranked = q1_batch_ranked(&g, false, 3);
        assert_eq!(format_result(&ranked), "1|2");
        assert_eq!(ranked[0].score, 25);
    }

    #[test]
    fn posts_without_comments_score_zero_and_are_still_ranked() {
        let mut network = paper_example_network();
        network.posts.push(datagen::Post {
            id: 3,
            timestamp: 99,
            author: 101,
        });
        let g = SocialGraph::from_network(&network);
        let ranked = q1_batch_ranked(&g, false, 3);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[2].id, 3);
        assert_eq!(ranked[2].score, 0);
    }

    #[test]
    fn scores_on_synthetic_workload_are_consistent_with_definition() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(21));
        let g = SocialGraph::from_network(&workload.initial);
        let scores = q1_batch_scores(&g, false);
        // direct recomputation from the object model
        for post in &workload.initial.posts {
            let comments: Vec<u64> = workload
                .initial
                .comments
                .iter()
                .filter(|c| c.root_post == post.id)
                .map(|c| c.id)
                .collect();
            let likes = workload
                .initial
                .likes
                .iter()
                .filter(|(_, c)| comments.contains(c))
                .count() as u64;
            let expected = 10 * comments.len() as u64 + likes;
            let p = g.posts.index_of(post.id).unwrap();
            assert_eq!(scores.get(p).unwrap_or(0), expected, "post {}", post.id);
        }
    }
}
