//! Q1 incremental maintenance (Alg. 2 of the paper).
//!
//! The state between evaluations is the full score vector and the current top-3
//! candidates. After a changeset, only the score *increment* is computed:
//!
//! ```text
//! sum            ← [⊕ⱼ ∆RootPost(:, j)]        #new comments per post
//! repliesScores⁺ ← 10 × sum
//! likesScore⁺    ← RootPost′ ⊕.⊗ likesCount⁺    new likes, attributed via all comments
//! scores⁺        ← repliesScores⁺ ⊕ likesScore⁺
//! scores′        ← scores ⊕ scores⁺
//! ∆scores⟨scores⁺⟩ ← scores′                    only the changed scores
//! ```
//!
//! The changed scores are merged into the previous top-3 (new scores overwrite old
//! ones), which is exact because the insert-only workload never decreases a score.
//!
//! Streaming workloads may retract likes (`likesCount⁻`), computed with the same
//! `RootPost′ ⊕.⊗ likesCount⁻` product and *subtracted* from the maintained scores.
//! A retraction can decrease a score, so after a changeset with removals the top-k
//! candidates are rebuilt from the full (still incrementally maintained) score
//! vector instead of merged — an O(|posts|) scan, with no matrix work redone.

use graphblas::monoid::stock as monoids;
use graphblas::ops::{
    apply_vector, assign_vector_masked, ewise_add_vector, ewise_union_vector, mxv, mxv_par,
    reduce_matrix_rows,
};
use graphblas::ops_traits::{Minus, Plus, TimesConstant};
use graphblas::semiring::stock as semirings;
use graphblas::{Vector, VectorMask};

use crate::graph::SocialGraph;
use crate::q1::batch::q1_batch_scores;
use crate::top_k::{RankedEntry, TopKTracker};
use crate::update::GraphDelta;

/// Incremental Q1 evaluator. Create it, call [`Q1Incremental::initialize`] once with
/// the loaded graph, then [`Q1Incremental::update`] after each applied changeset.
#[derive(Clone, Debug)]
pub struct Q1Incremental {
    scores: Vector<u64>,
    tracker: TopKTracker,
    parallel: bool,
    k: usize,
}

impl Q1Incremental {
    /// Create an evaluator returning the top `k` posts (the case study uses `k = 3`).
    pub fn new(parallel: bool, k: usize) -> Self {
        Q1Incremental {
            scores: Vector::new(0),
            tracker: TopKTracker::new(k),
            parallel,
            k,
        }
    }

    /// First (full) evaluation: identical to the batch algorithm, but the scores and
    /// the top-k candidates are retained for later increments.
    pub fn initialize(&mut self, graph: &SocialGraph) -> String {
        self.scores = q1_batch_scores(graph, self.parallel);
        let entries = (0..graph.post_count()).map(|p| RankedEntry {
            score: self.scores.get(p).unwrap_or(0),
            timestamp: graph.post_timestamp(p),
            id: graph.post_id(p),
        });
        self.tracker.rebuild(entries);
        self.tracker.format()
    }

    /// Incremental re-evaluation after `delta` has been applied to `graph`.
    pub fn update(&mut self, graph: &SocialGraph, delta: &GraphDelta) -> String {
        // The post space may have grown.
        self.scores.resize(graph.post_count());

        // Lines 9–10: score increment from new comments.
        let delta_root_post = delta.delta_root_post(graph);
        let sum = reduce_matrix_rows(&delta_root_post, monoids::plus::<u64>());
        let replies_scores_plus = apply_vector(&sum, TimesConstant::new(10u64));

        // Line 11: score increment from new likes, attributed through *all* rootPost
        // edges (a new like may target an old comment).
        let likes_count_plus = delta.new_likes_count(graph);
        let likes_score_plus = if self.parallel {
            mxv_par(
                &graph.root_post,
                &likes_count_plus,
                semirings::plus_second::<u64>(),
            )
        } else {
            mxv(
                &graph.root_post,
                &likes_count_plus,
                semirings::plus_second::<u64>(),
            )
        }
        .expect("RootPost columns equal the likesCount⁺ dimension"); // lint: allow(panic) — dimension equality is a construction invariant of the graph matrices

        // Line 12: total increment.
        let scores_plus = ewise_add_vector(&replies_scores_plus, &likes_score_plus, Plus::new())
            .expect("increment vectors live in the post index space"); // lint: allow(panic) — increment vectors are sized over the post index space

        // Line 13: updated scores.
        let scores_new = ewise_add_vector(&self.scores, &scores_plus, Plus::new())
            .expect("scores and increment share the post index space"); // lint: allow(panic) — scores and increment are sized over the post index space

        // Streaming extension: score decrement from retracted likes, attributed the
        // same way (`RootPost′ ⊕.⊗ likesCount⁻`) and subtracted. Every decremented
        // post necessarily holds a score at least as large as the decrement (the
        // retracted likes were counted into it), so the u64 subtraction is safe.
        let scores_new = if delta.removed_likes.is_empty() {
            scores_new
        } else {
            let likes_count_minus = delta.removed_likes_count(graph);
            let likes_score_minus = if self.parallel {
                mxv_par(
                    &graph.root_post,
                    &likes_count_minus,
                    semirings::plus_second::<u64>(),
                )
            } else {
                mxv(
                    &graph.root_post,
                    &likes_count_minus,
                    semirings::plus_second::<u64>(),
                )
            }
            .expect("RootPost columns equal the likesCount⁻ dimension"); // lint: allow(panic) — dimension equality is a construction invariant of the graph matrices
            ewise_union_vector(&scores_new, 0, &likes_score_minus, 0, Minus::new())
                .expect("scores and decrement share the post index space") // lint: allow(panic) — scores and decrement are sized over the post index space
        };

        self.scores = scores_new;

        // Retractions may have *decreased* scores, in which case merging changed
        // entries into the previous candidates is no longer exact (a post may fall
        // out of the top k in favour of an untouched one). Rebuild the candidates
        // from the maintained score vector — an O(|posts|) scan, no matrix work —
        // and skip the ∆scores extraction entirely (it only feeds the merge).
        if delta.has_removals() {
            let entries = (0..graph.post_count()).map(|p| RankedEntry {
                score: self.scores.get(p).unwrap_or(0),
                timestamp: graph.post_timestamp(p),
                id: graph.post_id(p),
            });
            self.tracker.rebuild(entries);
            return self.tracker.format();
        }

        // Line 14: ∆scores⟨scores⁺⟩ ← scores′.
        let mut delta_scores = Vector::new(graph.post_count());
        assign_vector_masked(
            &mut delta_scores,
            &VectorMask::structural(&scores_plus),
            &self.scores,
        )
        .expect("mask and operands share the post index space"); // lint: allow(panic) — mask and operands are sized over the post index space

        // Merge changed scores (and brand-new posts, which may have score 0) into the
        // previous top-k candidates.
        let mut changes: Vec<RankedEntry> = delta_scores
            .iter()
            .map(|(p, score)| RankedEntry {
                score,
                timestamp: graph.post_timestamp(p),
                id: graph.post_id(p),
            })
            .collect();
        for &p in &delta.new_posts {
            if !delta_scores.contains(p) {
                changes.push(RankedEntry {
                    score: self.scores.get(p).unwrap_or(0),
                    timestamp: graph.post_timestamp(p),
                    id: graph.post_id(p),
                });
            }
        }
        self.tracker.merge_changes(changes);
        self.tracker.format()
    }

    /// The maintained score of a post index (0 if absent), for tests and inspection.
    pub fn score_of(&self, post_index: usize) -> u64 {
        self.scores.get(post_index).unwrap_or(0)
    }

    /// The number of posts whose score is currently tracked.
    pub fn tracked_posts(&self) -> usize {
        self.scores.size()
    }

    /// The `k` this evaluator was configured with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The current top-k candidates (best first). The sharded pipeline merges these
    /// per-shard candidate lists into the global top-k; each post is owned by
    /// exactly one shard, so its entry here carries its exact global score.
    pub fn candidates(&self) -> &[RankedEntry] {
        self.tracker.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network, SocialGraph};
    use crate::q1::batch::q1_batch_ranked;
    use crate::top_k::format_result;
    use crate::update::apply_changeset;

    #[test]
    fn initialize_matches_batch() {
        let g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q1Incremental::new(false, 3);
        let result = inc.initialize(&g);
        assert_eq!(result, format_result(&q1_batch_ranked(&g, false, 3)));
        assert_eq!(result, "1|2");
    }

    #[test]
    fn paper_update_produces_expected_increment() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q1Incremental::new(false, 3);
        inc.initialize(&g);

        let delta = apply_changeset(&mut g, &paper_example_changeset());
        let result = inc.update(&g, &delta);

        let p1 = g.posts.index_of(1).unwrap();
        let p2 = g.posts.index_of(2).unwrap();
        assert_eq!(inc.score_of(p1), 37); // 25 + 12, as in Fig. 4a
        assert_eq!(inc.score_of(p2), 10);
        assert_eq!(result, "1|2");
    }

    #[test]
    fn incremental_matches_batch_after_every_changeset() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(31));
        let mut g = SocialGraph::from_network(&workload.initial);
        let mut inc = Q1Incremental::new(false, 3);
        let initial = inc.initialize(&g);
        assert_eq!(initial, format_result(&q1_batch_ranked(&g, false, 3)));

        for changeset in &workload.changesets {
            let delta = apply_changeset(&mut g, changeset);
            let incremental_result = inc.update(&g, &delta);
            let batch_result = format_result(&q1_batch_ranked(&g, false, 3));
            assert_eq!(incremental_result, batch_result);

            // the full maintained score vector must equal the batch scores
            let batch_scores = crate::q1::batch::q1_batch_scores(&g, false);
            for p in 0..g.post_count() {
                assert_eq!(
                    inc.score_of(p),
                    batch_scores.get(p).unwrap_or(0),
                    "post {p}"
                );
            }
        }
    }

    #[test]
    fn update_with_empty_changeset_is_a_noop() {
        let mut g = SocialGraph::from_network(&paper_example_network());
        let mut inc = Q1Incremental::new(false, 3);
        let before = inc.initialize(&g);
        let delta = apply_changeset(&mut g, &datagen::ChangeSet::default());
        let after = inc.update(&g, &delta);
        assert_eq!(before, after);
    }

    #[test]
    fn parallel_incremental_matches_serial() {
        let workload = datagen::generate_workload(&datagen::GeneratorConfig::tiny(37));
        let mut g_serial = SocialGraph::from_network(&workload.initial);
        let mut g_parallel = g_serial.clone();
        let mut serial = Q1Incremental::new(false, 3);
        let mut parallel = Q1Incremental::new(true, 3);
        assert_eq!(
            serial.initialize(&g_serial),
            parallel.initialize(&g_parallel)
        );
        for changeset in &workload.changesets {
            let d1 = apply_changeset(&mut g_serial, changeset);
            let d2 = apply_changeset(&mut g_parallel, changeset);
            assert_eq!(
                serial.update(&g_serial, &d1),
                parallel.update(&g_parallel, &d2)
            );
        }
    }

    #[test]
    fn accessors_report_configuration() {
        let inc = Q1Incremental::new(false, 5);
        assert_eq!(inc.k(), 5);
        assert_eq!(inc.tracked_posts(), 0);
    }
}
