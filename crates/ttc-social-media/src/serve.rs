//! Epoch-published lock-free read path: immutable [`QueryView`] snapshots served
//! to concurrent readers between micro-batches.
//!
//! The paper's benchmark only ever *prints* the top-3 after each batch; a
//! production deployment of the same pipeline needs the opposite shape — many
//! readers querying the latest result (and per-entity detail: a user's
//! connected-component id, a comment's score and candidate standing) while the
//! apply path is busy building the next batch. This module provides that front
//! end for both engines in [`crate::pipeline`]:
//!
//! * The merge stage freezes one immutable [`QueryView`] per merged batch and
//!   hands it to a [`ViewPublisher`].
//! * Publication appends the view to a lock-free chain of epoch-tagged nodes.
//!   Each link is a `OnceLock<Arc<Node>>` taken from the [`crate::sync`]
//!   facade: writing it is a single release-store, reading it a single
//!   acquire-load, and under the `model-check` feature the loomette scheduler
//!   explores every publish/read interleaving.
//! * A [`ViewReader`] holds an `Arc` cursor into the chain. Reading the
//!   current view is one atomic load plus an `Arc` clone — no locks, no
//!   waiting on writers, no coordination between readers. Advancing to a newer
//!   view walks `next` pointers that are only ever written once.
//!
//! Views are tagged with a monotonically increasing **epoch** (0 = genesis,
//! 1 = the initial evaluation, +1 per merged batch) and the originating batch
//! sequence number, so read-your-writes and monotonic-reads guarantees are
//! mechanically checkable — see `DESIGN.md` §8 for the per-engine consistency
//! table and the memory-reclamation argument (retired views are reclaimed by
//! `Arc` reference counting once the last reader cursor moves past them; the
//! chain's iterative `Drop` keeps reclamation of long retired prefixes off the
//! call stack).
//!
//! # Example
//!
//! ```
//! use ttc_social_media::graph::paper_example_network;
//! use ttc_social_media::model::Query;
//! use ttc_social_media::serve::{view_channel, CandidateSnapshot, ViewBuilder};
//!
//! let mut builder = ViewBuilder::new(Query::Q2);
//! let (mut publisher, mut reader) = view_channel(builder.genesis());
//!
//! // The write side (in production: the engine's merge stage) publishes a
//! // view after the initial evaluation…
//! builder.observe_initial(&paper_example_network());
//! let view = builder.build(None, &CandidateSnapshot::default(), "12|11|13");
//! publisher.publish(view);
//!
//! // …and any number of readers observe it with a single atomic load each.
//! let snapshot = reader.latest();
//! assert_eq!(snapshot.epoch(), 1);
//! assert_eq!(snapshot.result(), "12|11|13");
//! assert!(snapshot.verify_seal());
//! // Users 101 and 102 are friends in the paper's example network, so they
//! // share a component, and the component id is the smallest member id.
//! assert_eq!(snapshot.component_of(101), Some(101));
//! assert_eq!(snapshot.component_of(102), Some(101));
//! ```

use std::collections::{HashMap, HashSet};

use datagen::{ChangeOperation, ChangeSet, ElementId, SocialNetwork};

use crate::model::Query;
use crate::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use crate::top_k::RankedEntry;

// ---------------------------------------------------------------------------
// View contents
// ---------------------------------------------------------------------------

/// A comment's (or post's) standing in the current candidate pool: its score,
/// its timestamp, and — if it is one of the published top-k — its rank.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Standing {
    /// Query score of the element at this view's epoch.
    pub score: u64,
    /// Timestamp of the element (the tie-breaking key).
    pub timestamp: u64,
    /// 1-based rank among the published top-k, `None` if the element is a
    /// tracked candidate but currently outside the top-k.
    pub rank: Option<usize>,
}

/// The ranked material a solution can expose for view building: the current
/// top-k plus the wider candidate pool the merge stage tracks.
///
/// Produced by [`crate::solution::Solution::candidate_snapshot`]; solutions
/// that do not track ranked candidates return `None` there and are served
/// with result-string-only views (see `DESIGN.md` §8).
#[derive(Clone, Debug, Default)]
pub struct CandidateSnapshot {
    /// The current top-k entries, best first.
    pub top: Vec<RankedEntry>,
    /// Every tracked candidate (a superset of `top`), in no particular order.
    pub candidates: Vec<RankedEntry>,
}

/// Immutable user → connected-component mapping over the friendship graph,
/// frozen at one epoch. Component ids are the smallest user id of the
/// component, so they are stable under insertion order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UserComponents {
    component: HashMap<ElementId, ElementId>,
}

impl UserComponents {
    /// The component id of `user`, or `None` if the user is unknown.
    pub fn component_of(&self, user: ElementId) -> Option<ElementId> {
        self.component.get(&user).copied()
    }

    /// Number of users in the mapping.
    pub fn user_count(&self) -> usize {
        self.component.len()
    }

    /// Number of distinct components.
    pub fn component_count(&self) -> usize {
        self.component.values().collect::<HashSet<_>>().len()
    }

    /// Whether two users are in the same friendship component.
    pub fn connected(&self, a: ElementId, b: ElementId) -> bool {
        match (self.component_of(a), self.component_of(b)) {
            (Some(ca), Some(cb)) => ca == cb,
            _ => false,
        }
    }

    /// Order-independent content hash, folded into [`QueryView::verify_seal`].
    fn content_hash(&self) -> u64 {
        self.component
            .iter()
            .map(|(&user, &root)| splitmix64(splitmix64(user) ^ root))
            .fold(0u64, u64::wrapping_add)
    }
}

/// One frozen, immutable snapshot of query results, published at a single
/// epoch and safe to read without any synchronization.
///
/// A view answers the read-side questions the ROADMAP's serving item asks for:
/// the top-k ([`QueryView::entries`], [`QueryView::result`]), a comment's
/// score and candidate standing ([`QueryView::standing`]), and a user's
/// connected-component id ([`QueryView::component_of`]). Views are
/// constructed only by [`ViewBuilder`] and carry a content seal so tests and
/// the model checker can assert that no reader ever observes a torn view.
#[derive(Clone, Debug)]
pub struct QueryView {
    epoch: u64,
    batch: Option<u64>,
    query: Query,
    shards: usize,
    entries: Vec<RankedEntry>,
    result: String,
    standings: HashMap<ElementId, Standing>,
    components: Arc<UserComponents>,
    seal: u64,
}

impl QueryView {
    /// The view's epoch: 0 for the genesis view, 1 after the initial
    /// evaluation, +1 per merged batch. Strictly increasing along the
    /// publication chain.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The batch sequence number this view reflects (`None` for the genesis
    /// and initial-evaluation views, which precede any batch).
    pub fn batch(&self) -> Option<u64> {
        self.batch
    }

    /// Which query this view answers.
    pub fn query(&self) -> Query {
        self.query
    }

    /// The shard count of the topology this view was computed under. Views
    /// published while an elastic reshard drains carry the pre-drain
    /// topology; the first post-reshard view notes the new count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The top-k entries, best first.
    pub fn entries(&self) -> &[RankedEntry] {
        &self.entries
    }

    /// The result in the benchmark's `id|id|id` format.
    pub fn result(&self) -> &str {
        &self.result
    }

    /// The standing of one candidate element, or `None` if it is not tracked.
    pub fn standing(&self, id: ElementId) -> Option<Standing> {
        self.standings.get(&id).copied()
    }

    /// Number of tracked candidates (the top-k are a subset).
    pub fn candidate_count(&self) -> usize {
        self.standings.len()
    }

    /// The friendship component id of `user`, or `None` if unknown.
    pub fn component_of(&self, user: ElementId) -> Option<ElementId> {
        self.components.component_of(user)
    }

    /// The full user → component mapping frozen in this view.
    pub fn components(&self) -> &UserComponents {
        &self.components
    }

    /// Recompute the content seal and compare it with the sealed value.
    ///
    /// The seal is a deterministic hash over every field, computed when the
    /// builder froze the view. A reader that could ever observe a view
    /// half-way through construction would fail this check; the model-check
    /// suite asserts it across every explored publish/read interleaving.
    pub fn verify_seal(&self) -> bool {
        self.content_seal() == self.seal
    }

    /// Deterministic hash of the view contents (order-independent over the
    /// hash maps, order-sensitive over the ranked entries).
    fn content_seal(&self) -> u64 {
        let mut h = splitmix64(self.epoch ^ 0x5eed_0001);
        h = splitmix64(h ^ self.batch.map_or(u64::MAX, splitmix64));
        h = splitmix64(h ^ self.shards as u64);
        h = splitmix64(
            h ^ match self.query {
                Query::Q1 => 1,
                Query::Q2 => 2,
            },
        );
        for entry in &self.entries {
            h = splitmix64(h ^ entry.score);
            h = splitmix64(h ^ entry.timestamp);
            h = splitmix64(h ^ entry.id);
        }
        h = self
            .result
            .bytes()
            .fold(h, |acc, b| splitmix64(acc ^ u64::from(b)));
        let standings = self
            .standings
            .iter()
            .map(|(&id, s)| {
                let rank = s.rank.map_or(u64::MAX, |r| r as u64);
                splitmix64(splitmix64(id) ^ splitmix64(s.score) ^ s.timestamp ^ rank)
            })
            .fold(0u64, u64::wrapping_add);
        h = splitmix64(h ^ standings);
        splitmix64(h ^ self.components.content_hash())
    }
}

/// SplitMix64 finalizer: the same cheap, dependency-free mixer the recovery
/// checkpoints use for their checksums.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// View builder
// ---------------------------------------------------------------------------

/// Accumulates the write-side state a [`QueryView`] is frozen from: the
/// friendship graph's connected components (maintained incrementally with a
/// union-find, rebuilt on the rare friendship removal) and the epoch counter.
///
/// Lives on the write side only — the engine's merge stage owns one and calls
/// [`ViewBuilder::build`] once per merged batch; readers never touch it.
pub struct ViewBuilder {
    query: Query,
    next_epoch: u64,
    shards: usize,
    parent: HashMap<ElementId, ElementId>,
    adjacency: HashMap<ElementId, HashSet<ElementId>>,
    cached: Option<Arc<UserComponents>>,
}

impl ViewBuilder {
    /// Create a builder for `query`. The first built view has epoch 1;
    /// [`ViewBuilder::genesis`] provides the epoch-0 placeholder.
    pub fn new(query: Query) -> Self {
        ViewBuilder {
            query,
            next_epoch: 1,
            shards: 1,
            parent: HashMap::new(),
            adjacency: HashMap::new(),
            cached: None,
        }
    }

    /// Record the shard count stamped into subsequently built views. The
    /// engine's merge stage calls this at startup and again when an elastic
    /// reshard commits, so the epoch chain notes the topology change without
    /// breaking monotonicity.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// The empty epoch-0 view a publication chain starts from, representing
    /// "nothing evaluated yet".
    pub fn genesis(&self) -> QueryView {
        let mut view = QueryView {
            epoch: 0,
            batch: None,
            query: self.query,
            shards: self.shards,
            entries: Vec::new(),
            result: String::new(),
            standings: HashMap::new(),
            components: Arc::new(UserComponents::default()),
            seal: 0,
        };
        view.seal = view.content_seal();
        view
    }

    /// Fold the initial network into the component state (users and
    /// friendships; posts, comments and likes do not affect components).
    pub fn observe_initial(&mut self, network: &SocialNetwork) {
        for user in &network.users {
            self.add_user(user.id);
        }
        for &(a, b) in &network.friendships {
            self.add_friendship(a, b);
        }
        self.cached = None;
    }

    /// Fold one changeset into the component state. Friendship removals
    /// trigger a rebuild of the union-find from the retained adjacency,
    /// mirroring how the Q2 evaluators re-derive components after deletions.
    pub fn observe_batch(&mut self, changes: &ChangeSet) {
        let mut rebuild = false;
        for op in &changes.operations {
            match op {
                ChangeOperation::AddUser { user } => self.add_user(user.id),
                ChangeOperation::AddFriendship { a, b } => self.add_friendship(*a, *b),
                ChangeOperation::RemoveFriendship { a, b } => {
                    if let Some(peers) = self.adjacency.get_mut(a) {
                        peers.remove(b);
                    }
                    if let Some(peers) = self.adjacency.get_mut(b) {
                        peers.remove(a);
                    }
                    rebuild = true;
                }
                _ => {}
            }
        }
        if rebuild {
            self.rebuild_from_adjacency();
        }
        self.cached = None;
    }

    /// Freeze a view at the next epoch from the solution's ranked snapshot
    /// and the rendered result string. `batch` is the originating batch
    /// sequence number (`None` for the initial evaluation).
    pub fn build(
        &mut self,
        batch: Option<u64>,
        snapshot: &CandidateSnapshot,
        result: &str,
    ) -> QueryView {
        let mut standings: HashMap<ElementId, Standing> =
            HashMap::with_capacity(snapshot.candidates.len());
        for candidate in &snapshot.candidates {
            standings.insert(
                candidate.id,
                Standing {
                    score: candidate.score,
                    timestamp: candidate.timestamp,
                    rank: None,
                },
            );
        }
        for (position, entry) in snapshot.top.iter().enumerate() {
            standings.insert(
                entry.id,
                Standing {
                    score: entry.score,
                    timestamp: entry.timestamp,
                    rank: Some(position + 1),
                },
            );
        }
        let epoch = self.next_epoch;
        self.next_epoch += 1;
        let mut view = QueryView {
            epoch,
            batch,
            query: self.query,
            shards: self.shards,
            entries: snapshot.top.clone(),
            result: result.to_string(),
            standings,
            components: self.components(),
            seal: 0,
        };
        view.seal = view.content_seal();
        view
    }

    /// The frozen component mapping at the current state (cached between
    /// builds until a component-affecting operation invalidates it).
    pub fn components(&mut self) -> Arc<UserComponents> {
        if let Some(cached) = &self.cached {
            return Arc::clone(cached);
        }
        let users: Vec<ElementId> = self.parent.keys().copied().collect();
        let mut component = HashMap::with_capacity(users.len());
        for user in users {
            let root = self.find(user);
            component.insert(user, root);
        }
        let frozen = Arc::new(UserComponents { component });
        self.cached = Some(Arc::clone(&frozen));
        frozen
    }

    fn add_user(&mut self, user: ElementId) {
        self.parent.entry(user).or_insert(user);
        self.adjacency.entry(user).or_default();
    }

    fn add_friendship(&mut self, a: ElementId, b: ElementId) {
        self.add_user(a);
        self.add_user(b);
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        self.union(a, b);
        self.cached = None;
    }

    /// Iterative find with path compression. Unknown ids are registered as
    /// singletons first, so `find` is total.
    fn find(&mut self, user: ElementId) -> ElementId {
        self.parent.entry(user).or_insert(user);
        let mut root = user;
        while let Some(&p) = self.parent.get(&root) {
            if p == root {
                break;
            }
            root = p;
        }
        // path compression: point every node on the walk straight at the root
        let mut cursor = user;
        while cursor != root {
            let next = self.parent.insert(cursor, root).unwrap_or(root);
            cursor = next;
        }
        root
    }

    /// Union by id: the larger root is attached under the smaller, so a
    /// component's root is always its minimum user id — a deterministic
    /// component id independent of insertion order.
    fn union(&mut self, a: ElementId, b: ElementId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        let (small, large) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent.insert(large, small);
    }

    fn rebuild_from_adjacency(&mut self) {
        let users: Vec<ElementId> = self.adjacency.keys().copied().collect();
        self.parent = users.iter().map(|&u| (u, u)).collect();
        let edges: Vec<(ElementId, ElementId)> = self
            .adjacency
            .iter()
            .flat_map(|(&a, peers)| peers.iter().map(move |&b| (a, b)))
            .collect();
        for (a, b) in edges {
            self.union(a, b);
        }
        self.cached = None;
    }
}

// ---------------------------------------------------------------------------
// Publication chain
// ---------------------------------------------------------------------------

/// One link of the publication chain. `next` is written exactly once (by the
/// single publisher) and read with a single atomic acquire-load by any number
/// of readers — the `OnceLock` comes from the [`crate::sync`] facade, so the
/// model checker can explore the publish/read race.
struct Node {
    view: Arc<QueryView>,
    next: OnceLock<Arc<Node>>,
}

impl Drop for Node {
    /// Iterative teardown of the retired suffix this node uniquely owns.
    ///
    /// Without this, dropping the last cursor behind a long-retired prefix
    /// would recurse once per chained node and overflow the stack. The loop
    /// detaches each `next` link first (`take` needs `&mut`, which
    /// `Arc::try_unwrap` proves is exclusive), so the node dropped at the end
    /// of each iteration has no tail to recurse into. The walk stops at the
    /// first node another reader (or the publisher) still holds.
    fn drop(&mut self) {
        let mut next = self.next.take();
        while let Some(node) = next {
            match Arc::try_unwrap(node) {
                Ok(mut sole) => next = sole.next.take(),
                Err(_shared) => break,
            }
        }
    }
}

/// The blocking half of the read path: a mutex-guarded copy of the latest
/// published epoch plus a condvar, shared by the publisher and every reader.
///
/// The lock-free chain stays the fast path; the gate exists only so
/// [`ViewReader::wait_for_epoch`] can sleep instead of spinning. Both
/// primitives come from the [`crate::sync`] facade, so the model checker
/// explores the publish/wait race and proves the no-lost-wakeup argument
/// (the reader re-checks the chain *after* locking the gate; the publisher
/// stores the epoch under the same lock *after* linking the node).
struct EpochGate {
    published: Mutex<u64>,
    newer: Condvar,
}

impl EpochGate {
    // Poisoning policy: the gate guards a single epoch counter that is
    // updated atomically under the lock; recover the guard unconditionally.
    fn published(&self) -> MutexGuard<'_, u64> {
        self.published.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The write-side handle: appends one frozen view per merged batch to the
/// publication chain.
///
/// Not `Clone` — single-publisher is a protocol invariant (each engine run
/// has exactly one merge stage), and `publish` taking `&mut self` makes the
/// invariant structural.
pub struct ViewPublisher {
    head: Arc<Node>,
    gate: Arc<EpochGate>,
}

impl ViewPublisher {
    /// Publish `view` as the new latest snapshot. One release-store; readers
    /// observe either the previous chain head or the fully frozen new view,
    /// never anything in between. Waiters blocked in
    /// [`ViewReader::wait_for_epoch`] are woken after the view is reachable.
    pub fn publish(&mut self, view: QueryView) {
        let epoch = view.epoch();
        let node = Arc::new(Node {
            view: Arc::new(view),
            next: OnceLock::new(),
        });
        // Infallible under the single-publisher invariant (`&mut self`, not
        // `Clone`); if it ever failed the chain head simply would not
        // advance, which is safe — readers keep the previous view.
        if self.head.next.set(Arc::clone(&node)).is_ok() {
            self.head = node;
            // Advance the gate only after the node is reachable, so a woken
            // waiter always finds the view it was promised on the chain.
            let mut published = self.gate.published();
            *published = epoch;
            drop(published);
            self.gate.newer.notify_all();
        }
    }

    /// The most recently published view.
    pub fn latest(&self) -> Arc<QueryView> {
        Arc::clone(&self.head.view)
    }

    /// Mint a new reader positioned at the current latest view. Readers are
    /// also `Clone`, so either side can fan out.
    pub fn subscribe(&self) -> ViewReader {
        ViewReader {
            cursor: Arc::clone(&self.head),
            gate: Arc::clone(&self.gate),
        }
    }
}

/// A read-side cursor into the publication chain.
///
/// Reading ([`ViewReader::view`]) is wait-free: an `Arc` clone of the frozen
/// snapshot the cursor points at. Advancing ([`ViewReader::try_advance`],
/// [`ViewReader::latest`]) is lock-free: each step is one atomic load of a
/// write-once `next` link. Cloning a reader clones the cursor position.
/// Epochs observed through one reader never decrease (monotonic reads).
#[derive(Clone)]
pub struct ViewReader {
    cursor: Arc<Node>,
    gate: Arc<EpochGate>,
}

impl ViewReader {
    /// The view at the cursor, without advancing. Wait-free.
    pub fn view(&self) -> Arc<QueryView> {
        Arc::clone(&self.cursor.view)
    }

    /// Advance one published view if a newer one exists. Returns `true` if
    /// the cursor moved. Lock-free: a single atomic load.
    pub fn try_advance(&mut self) -> bool {
        // borrow-split: `get` borrows the cursor we are about to replace
        let next = self.cursor.next.get().map(Arc::clone);
        match next {
            Some(node) => {
                self.cursor = node;
                true
            }
            None => false,
        }
    }

    /// Advance to the newest published view and return it.
    pub fn latest(&mut self) -> Arc<QueryView> {
        while self.try_advance() {}
        self.view()
    }

    /// The epoch at the cursor (shorthand for `view().epoch()`).
    pub fn epoch(&self) -> u64 {
        self.cursor.view.epoch
    }

    /// Block until a view with epoch `>= epoch` is published, then return the
    /// newest view (bounded-staleness read: "at least as fresh as `epoch`").
    ///
    /// The fast path is the usual lock-free chain walk; only a reader that is
    /// genuinely ahead of the publisher parks on the epoch gate's condvar.
    /// The wait is race-free against a concurrent publisher: the publisher
    /// links the node *before* storing the epoch under the gate lock, and the
    /// reader re-checks the gate's counter under that same lock before
    /// sleeping, so a publish between the chain walk and the park is never
    /// missed. Spurious wake-ups re-check the predicate. The model-check
    /// suite explores every interleaving of this handshake.
    pub fn wait_for_epoch(&mut self, epoch: u64) -> Arc<QueryView> {
        loop {
            let view = self.latest();
            if view.epoch() >= epoch {
                return view;
            }
            let mut published = self.gate.published();
            while *published < epoch {
                published = self
                    .gate
                    .newer
                    .wait(published)
                    .unwrap_or_else(|e| e.into_inner());
            }
            // The gate says the epoch is reachable; loop back to advance the
            // cursor along the chain and return the view.
        }
    }
}

/// Create a publication chain seeded with `genesis` (normally
/// [`ViewBuilder::genesis`]) and return the single publisher plus an initial
/// reader positioned at the genesis view.
pub fn view_channel(genesis: QueryView) -> (ViewPublisher, ViewReader) {
    let gate = Arc::new(EpochGate {
        published: Mutex::new(genesis.epoch()),
        newer: Condvar::new(),
    });
    let head = Arc::new(Node {
        view: Arc::new(genesis),
        next: OnceLock::new(),
    });
    let reader = ViewReader {
        cursor: Arc::clone(&head),
        gate: Arc::clone(&gate),
    };
    (ViewPublisher { head, gate }, reader)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{paper_example_changeset, paper_example_network};
    use crate::top_k::RankedEntry;
    use std::sync::Weak;

    fn entry(score: u64, timestamp: u64, id: ElementId) -> RankedEntry {
        RankedEntry {
            score,
            timestamp,
            id,
        }
    }

    fn snapshot(top: Vec<RankedEntry>, extra: Vec<RankedEntry>) -> CandidateSnapshot {
        let mut candidates = top.clone();
        candidates.extend(extra);
        CandidateSnapshot { top, candidates }
    }

    #[test]
    fn genesis_is_epoch_zero_and_sealed() {
        let builder = ViewBuilder::new(Query::Q1);
        let genesis = builder.genesis();
        assert_eq!(genesis.epoch(), 0);
        assert_eq!(genesis.batch(), None);
        assert_eq!(genesis.result(), "");
        assert!(genesis.entries().is_empty());
        assert!(genesis.verify_seal());
    }

    #[test]
    fn build_assigns_increasing_epochs_and_ranks() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let snap = snapshot(
            vec![entry(30, 5, 10), entry(20, 4, 11)],
            vec![entry(5, 1, 12)],
        );
        let first = builder.build(None, &snap, "10|11");
        let second = builder.build(Some(0), &snap, "10|11");
        assert_eq!(first.epoch(), 1);
        assert_eq!(second.epoch(), 2);
        assert_eq!(second.batch(), Some(0));

        assert_eq!(
            first.standing(10),
            Some(Standing {
                score: 30,
                timestamp: 5,
                rank: Some(1)
            })
        );
        assert_eq!(first.standing(11).and_then(|s| s.rank), Some(2));
        // candidate outside the top-k: tracked, unranked
        assert_eq!(
            first.standing(12),
            Some(Standing {
                score: 5,
                timestamp: 1,
                rank: None
            })
        );
        assert_eq!(first.standing(99), None);
        assert_eq!(first.candidate_count(), 3);
        assert!(first.verify_seal() && second.verify_seal());
    }

    #[test]
    fn seal_detects_tampering() {
        let mut builder = ViewBuilder::new(Query::Q2);
        let mut view = builder.build(None, &snapshot(vec![entry(1, 1, 1)], vec![]), "1");
        assert!(view.verify_seal());
        view.result = "1|2".to_string();
        assert!(!view.verify_seal());
    }

    #[test]
    fn components_follow_the_paper_example() {
        let mut builder = ViewBuilder::new(Query::Q2);
        builder.observe_initial(&paper_example_network());
        let components = builder.components();
        // the paper's example network: friendships (101,102), (102,103),
        // (103,104) chain users 101-104 into one component rooted at 101
        assert_eq!(components.component_of(101), Some(101));
        assert_eq!(components.component_of(104), Some(101));
        assert!(components.connected(103, 104));
        assert_eq!(components.user_count(), 4);
        assert_eq!(components.component_count(), 1);
        assert!(!components.connected(101, 999));
        assert_eq!(components.component_of(999), None);
    }

    #[test]
    fn component_ids_are_minimum_member_ids_regardless_of_order() {
        for edges in [
            vec![(7, 3), (3, 9)],
            vec![(3, 9), (7, 3)],
            vec![(9, 7), (7, 3)],
        ] {
            let mut builder = ViewBuilder::new(Query::Q2);
            for (a, b) in edges {
                let changes = ChangeSet {
                    operations: vec![ChangeOperation::AddFriendship { a, b }],
                };
                builder.observe_batch(&changes);
            }
            let components = builder.components();
            for user in [3, 7, 9] {
                assert_eq!(components.component_of(user), Some(3));
            }
        }
    }

    #[test]
    fn friendship_removal_rebuilds_components() {
        let mut builder = ViewBuilder::new(Query::Q2);
        let add = ChangeSet {
            operations: vec![
                ChangeOperation::AddFriendship { a: 1, b: 2 },
                ChangeOperation::AddFriendship { a: 2, b: 3 },
            ],
        };
        builder.observe_batch(&add);
        assert!(builder.components().connected(1, 3));

        let remove = ChangeSet {
            operations: vec![ChangeOperation::RemoveFriendship { a: 2, b: 3 }],
        };
        builder.observe_batch(&remove);
        let components = builder.components();
        assert!(components.connected(1, 2));
        assert!(!components.connected(1, 3));
        assert_eq!(components.component_of(3), Some(3));
        assert_eq!(components.component_count(), 2);
    }

    #[test]
    fn observe_batch_applies_the_paper_changeset() {
        let mut builder = ViewBuilder::new(Query::Q2);
        builder.observe_initial(&paper_example_network());
        builder.observe_batch(&paper_example_changeset());
        let components = builder.components();
        assert_eq!(components.user_count(), 4);
        assert_eq!(components.component_count(), 1);
    }

    #[test]
    fn readers_observe_published_views_in_order() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, mut reader) = view_channel(builder.genesis());
        assert_eq!(reader.epoch(), 0);
        assert!(!reader.try_advance());

        let snap = snapshot(vec![entry(10, 1, 7)], vec![]);
        publisher.publish(builder.build(None, &snap, "7"));
        publisher.publish(builder.build(Some(0), &snap, "7"));

        // a cloned reader advances independently of the original
        let mut behind = reader.clone();
        assert_eq!(reader.latest().epoch(), 2);
        assert_eq!(behind.epoch(), 0);
        assert!(behind.try_advance());
        assert_eq!(behind.view().epoch(), 1);
        assert_eq!(behind.view().batch(), None);
        assert!(behind.try_advance());
        assert!(!behind.try_advance());
        assert_eq!(publisher.latest().epoch(), 2);
        assert_eq!(publisher.subscribe().epoch(), 2);
    }

    #[test]
    fn epochs_are_monotonic_through_one_reader() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, mut reader) = view_channel(builder.genesis());
        let snap = snapshot(vec![entry(1, 1, 1)], vec![]);
        let mut seen = vec![reader.view().epoch()];
        for batch in 0..5 {
            publisher.publish(builder.build(Some(batch), &snap, "1"));
            reader.try_advance();
            seen.push(reader.view().epoch());
        }
        assert!(seen.windows(2).all(|w| w[0] <= w[1]), "{seen:?}");
        assert_eq!(reader.latest().epoch(), 5);
    }

    #[test]
    fn retired_views_are_reclaimed_once_readers_move_past_them() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, mut reader) = view_channel(builder.genesis());
        let snap = snapshot(vec![entry(1, 1, 1)], vec![]);

        publisher.publish(builder.build(Some(0), &snap, "1"));
        let retired: Weak<QueryView> = Arc::downgrade(&reader.latest());
        assert!(retired.upgrade().is_some());

        publisher.publish(builder.build(Some(1), &snap, "1"));
        reader.latest();
        // no cursor points at epoch 1 anymore; the Arc chain frees it
        assert!(retired.upgrade().is_none());
    }

    #[test]
    fn dropping_a_reader_far_behind_a_long_chain_does_not_overflow() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, reader) = view_channel(builder.genesis());
        let snap = CandidateSnapshot::default();
        for batch in 0..100_000 {
            publisher.publish(builder.build(Some(batch), &snap, ""));
        }
        // the publisher holds only the head; this reader uniquely owns the
        // 100k-node retired prefix, whose teardown must be iterative
        drop(publisher);
        drop(reader);
    }

    #[test]
    fn views_note_the_shard_count_across_a_topology_change() {
        let mut builder = ViewBuilder::new(Query::Q1);
        builder.set_shards(2);
        assert_eq!(builder.genesis().shards(), 2);
        let snap = CandidateSnapshot::default();
        let before = builder.build(Some(0), &snap, "");
        builder.set_shards(4);
        let after = builder.build(Some(1), &snap, "");
        assert_eq!(before.shards(), 2);
        assert_eq!(after.shards(), 4);
        // the epoch chain stays monotone across the change
        assert!(before.epoch() < after.epoch());
        assert!(before.verify_seal() && after.verify_seal());
    }

    #[test]
    fn wait_for_epoch_returns_immediately_when_already_published() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, mut reader) = view_channel(builder.genesis());
        let snap = snapshot(vec![entry(10, 1, 7)], vec![]);
        publisher.publish(builder.build(None, &snap, "7"));
        publisher.publish(builder.build(Some(0), &snap, "7"));
        let view = reader.wait_for_epoch(1);
        assert!(view.epoch() >= 1);
        assert_eq!(reader.wait_for_epoch(2).epoch(), 2);
        // waiting for the past is a no-op
        assert_eq!(reader.wait_for_epoch(0).epoch(), 2);
    }

    #[test]
    fn wait_for_epoch_blocks_until_a_concurrent_publisher_catches_up() {
        let mut builder = ViewBuilder::new(Query::Q1);
        let (mut publisher, mut reader) = view_channel(builder.genesis());
        let writer = std::thread::spawn(move || {
            let snap = snapshot(vec![entry(1, 1, 1)], vec![]);
            for batch in 0..3 {
                publisher.publish(builder.build(Some(batch), &snap, "1"));
            }
        });
        let view = reader.wait_for_epoch(3);
        assert!(view.epoch() >= 3);
        writer.join().expect("publisher thread exits cleanly");
    }

    #[test]
    fn late_subscribers_start_at_the_latest_view() {
        let mut builder = ViewBuilder::new(Query::Q2);
        let (mut publisher, _genesis_reader) = view_channel(builder.genesis());
        let snap = CandidateSnapshot::default();
        publisher.publish(builder.build(None, &snap, ""));
        publisher.publish(builder.build(Some(0), &snap, ""));
        let mut late = publisher.subscribe();
        assert_eq!(late.epoch(), 2);
        assert!(!late.try_advance());
    }
}
