//! Staged, asynchronous ingestion pipeline: long-lived stages connected by
//! bounded queues, merged on a per-shard watermark instead of a barrier.
//!
//! The synchronous sharded driver ([`crate::shard::ShardedSolution`] under
//! [`StreamDriver`]) runs every micro-batch as route → barrier → merge: all
//! shards must finish batch `t` before any shard may start `t + 1`, so one
//! straggler shard idles the other `N − 1` and throughput is bounded by the
//! per-batch worst case. This module decouples the stages:
//!
//! ```text
//!  ingest ──▶ coalesce + route ──▶ shard 0 apply ──▶
//!  (seq      (owns ShardRouter)    shard 1 apply ──▶  watermark merge ──▶ results
//!   stamp)                      └▶ shard N−1 apply ─▶  (emits batch t once
//!        bounded sync_channel queues between stages     every shard passed t)
//! ```
//!
//! * Every stage is a long-lived thread; neighbours are connected by bounded
//!   [`std::sync::mpsc::sync_channel`] queues (depth
//!   [`PipelineConfig::queue_depth`]), so a fast stage runs ahead by at most the
//!   queue depth and then **backpressures** instead of buffering unboundedly.
//!   Shard `s` can be applying batch `t + queue_depth` while a straggler shard
//!   is still on batch `t`.
//! * Batches carry **sequence numbers** stamped at ingest
//!   ([`datagen::stream::SequencedBatch`]). The merger tracks, per shard, the
//!   watermark of completed batches and emits the global top-k for batch `t`
//!   only once every shard's watermark has passed `t` — union rebuild when any
//!   shard reported an (effective) retraction in `t`, [`TopKTracker`]
//!   `merge_changes` otherwise: exactly the [`ShardMerger`] policy of the
//!   synchronous driver, which is why the two engines are byte-identical per
//!   batch (`tests/pipelined_differential.rs` enforces this, with injected
//!   per-stage delays forcing out-of-order shard completion).
//! * The per-shard evaluators are the same
//!   [`ShardEvaluator`](crate::shard::ShardEvaluator)s the synchronous driver
//!   drives — each is simply *moved into* its worker thread.
//!
//! Both engines implement [`IngestEngine`], so benchmarks and differential
//! tests swap them freely. Latency semantics differ by design: the synchronous
//! driver reports per-batch *service* time (update call duration), the
//! pipelined engine reports **end-to-end** latency (ingest enqueue → merged
//! result emitted) and wall-clock sustained throughput over the measured
//! window, which is the honest figure once batches overlap.
//!
//! [`TopKTracker`]: crate::top_k::TopKTracker

use std::collections::VecDeque;
use std::fmt;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::thread;
use std::time::{Duration, Instant};

use datagen::partition::{ModuloPartitioner, Partitioner};
use datagen::stream::sequenced;
use datagen::{ChangeSet, SocialNetwork};

use crate::shard::{load_shards_with, ShardFactory, ShardMerger, ShardRouterStats};
use crate::solution::Solution;
use crate::stream::{coalesce, percentile, StreamDriver, StreamReport};
use crate::top_k::RankedEntry;

// ---------------------------------------------------------------------------
// Engine abstraction
// ---------------------------------------------------------------------------

/// Why an ingestion run failed to produce a trustworthy report.
///
/// The pipelined stage graph tears down from the front on failure (a dead
/// stage disconnects its queues and every neighbour stops), so a dying shard
/// worker used to look exactly like a short stream: the merger emitted the
/// batches that made it through and the report claimed success over fewer
/// batches than were actually ingested. [`IngestEngine::run`] now returns this
/// error instead of that silently truncated report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The merge stage emitted fewer batches than the ingest stage accepted
    /// from the stream: a stage died mid-run and the tail of the stream was
    /// dropped on the floor.
    TruncatedRun {
        /// Batches the ingest stage pulled from the stream and enqueued.
        ingested: usize,
        /// Batches the merge stage actually emitted.
        merged: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::TruncatedRun { ingested, merged } => write!(
                f,
                "pipeline truncated: ingested {ingested} batches but merged only {merged} \
                 — a stage died mid-run"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// What an ingestion engine produces: the usual throughput/latency report, the
/// per-batch results (the differential gates compare these byte-for-byte), and
/// pipeline-internal statistics when the engine is staged.
#[derive(Clone, Debug)]
pub struct EngineReport {
    /// Throughput and latency of the measured window, in the same shape both
    /// engines share (see the [module documentation](self) for the latency
    /// semantics of each).
    pub stream: StreamReport,
    /// The query result after every **measured** batch, in batch order
    /// (warm-up excluded). When at least one batch was measured,
    /// `results.last()` equals `stream.final_result`; when the stream ended
    /// inside the warm-up window this is empty while `stream.final_result`
    /// still reports the state after the batches that *were* applied.
    pub results: Vec<String>,
    /// Queue/backpressure/watermark statistics — `None` for the synchronous
    /// engine, which has no queues.
    pub pipeline: Option<PipelineStats>,
}

/// One interface over both ingestion engines — the synchronous barrier driver
/// ([`SyncEngine`]) and the staged pipeline ([`PipelinedEngine`]) — so
/// benchmarks and differential tests can swap them freely.
pub trait IngestEngine {
    /// Display name of the engine + measured configuration.
    fn name(&self) -> String;

    /// Load `initial`, drive `batches` micro-batches (plus any engine-configured
    /// warm-up) pulled from `stream`, and report. A stream yielding fewer than
    /// `batches` micro-batches is not an error (the report covers what was
    /// measured, matching the synchronous driver); losing batches that *were*
    /// ingested is ([`EngineError::TruncatedRun`]).
    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError>;
}

/// The synchronous engine: the classic [`StreamDriver`] loop over any
/// [`Solution`], wrapped behind [`IngestEngine`]. One batch at a time —
/// coalesce, apply, merge — with a full barrier between batches.
pub struct SyncEngine {
    driver: StreamDriver,
    solution: Box<dyn Solution>,
}

impl SyncEngine {
    /// Wrap `solution` behind the engine interface, driven by `driver`.
    pub fn new(driver: StreamDriver, solution: Box<dyn Solution>) -> Self {
        SyncEngine { driver, solution }
    }
}

impl IngestEngine for SyncEngine {
    fn name(&self) -> String {
        self.solution.name()
    }

    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError> {
        let (report, results) =
            self.driver
                .run_with_results(self.solution.as_mut(), initial, stream, batches);
        Ok(EngineReport {
            stream: report,
            results,
            pipeline: None,
        })
    }
}

// ---------------------------------------------------------------------------
// Pipeline configuration
// ---------------------------------------------------------------------------

/// Deterministic per-stage delay injection, used by the differential tests to
/// force adversarial stage interleavings (a shard finishing batches long after
/// its peers, the router stalling mid-stream) without giving up replayability:
/// the delay of every (stage, shard, seq) triple is a pure function of `seed`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayInjection {
    /// Seed of the delay schedule.
    pub seed: u64,
    /// Maximum delay injected before routing one batch, in microseconds.
    pub max_route_micros: u64,
    /// Maximum delay injected before one shard applies one batch, in
    /// microseconds.
    pub max_apply_micros: u64,
}

impl DelayInjection {
    /// SplitMix64 — a tiny, seedable mix good enough to decorrelate delays.
    fn mix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    fn delay(&self, stage: u64, shard: u64, seq: u64, max_micros: u64) -> Duration {
        if max_micros == 0 {
            return Duration::ZERO;
        }
        let h = Self::mix(self.seed ^ Self::mix(stage ^ Self::mix(shard ^ seq)));
        Duration::from_micros(h % (max_micros + 1))
    }

    fn sleep_route(&self, seq: u64) {
        let d = self.delay(1, 0, seq, self.max_route_micros);
        if !d.is_zero() {
            thread::sleep(d);
        }
    }

    fn sleep_apply(&self, shard: usize, seq: u64) {
        let d = self.delay(2, shard as u64, seq, self.max_apply_micros);
        if !d.is_zero() {
            thread::sleep(d);
        }
    }
}

/// Configuration of a [`PipelinedEngine`].
#[derive(Clone, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Capacity of every inter-stage queue. Small values couple the stages
    /// tightly (depth 0 would degenerate to a rendezvous barrier); large values
    /// let fast shards run far ahead at the cost of buffered memory and
    /// watermark lag. Values are clamped to ≥ 1.
    pub queue_depth: usize,
    /// Batches fed through the pipeline before measurement starts (their
    /// updates still apply; their latency is excluded).
    pub warmup_batches: usize,
    /// Whether the route stage coalesces batches first (on by default, matching
    /// [`StreamDriver`]).
    pub coalesce: bool,
    /// Optional deterministic per-stage delays (tests only).
    pub delays: Option<DelayInjection>,
    /// Chaos knob (tests only): `Some((shard, seq))` makes the apply worker of
    /// `shard` exit — without panicking — right before applying the batch with
    /// that sequence number, simulating a worker dying mid-run. The engine must
    /// then tear down cleanly and report [`EngineError::TruncatedRun`] instead
    /// of a silently shortened success.
    pub kill_shard: Option<(usize, u64)>,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            queue_depth: 4,
            warmup_batches: 0,
            coalesce: true,
            delays: None,
            kill_shard: None,
        }
    }
}

/// Pipeline-internal statistics of one [`PipelinedEngine::run`], surfaced by
/// `stream_throughput --pipeline`.
#[derive(Clone, Debug, Default)]
pub struct PipelineStats {
    /// Configured capacity of every inter-stage queue.
    pub queue_depth: usize,
    /// Number of shard apply workers.
    pub shards: usize,
    /// Sends that found the ingest → route queue full (the stream out-paced
    /// routing and blocked).
    pub ingest_backpressure: u64,
    /// Sends that found a route → shard queue full (routing out-paced at least
    /// one apply worker and blocked).
    pub route_backpressure: u64,
    /// Sends that found a shard → merge queue full (an apply worker out-paced
    /// the merger and blocked).
    pub apply_backpressure: u64,
    /// Maximum, over all merged batches, of how many batches the
    /// furthest-ahead shard had already completed beyond the batch being
    /// merged — how out-of-order the shards actually ran.
    pub max_watermark_lag: u64,
    /// Per-shard apply time in seconds, indexed `[shard][batch]` over **all**
    /// batches including warm-up (mirrors
    /// [`crate::shard::ShardedSolution::per_shard_latencies`]).
    pub per_shard_apply_latencies: Vec<Vec<f64>>,
    /// `(posts, comments)` owned by each shard at the end of the run.
    pub shard_sizes: Vec<(usize, usize)>,
    /// Routing statistics accumulated by the route stage.
    pub router: ShardRouterStats,
}

// ---------------------------------------------------------------------------
// Channel payloads
// ---------------------------------------------------------------------------

struct IngestItem {
    seq: u64,
    enqueued: Instant,
    batch: ChangeSet,
}

struct RoutedItem {
    seq: u64,
    enqueued: Instant,
    ops: ChangeSet,
}

struct ApplyOutcome {
    seq: u64,
    enqueued: Instant,
    /// Snapshot of the shard's top-k candidates *as of this batch* — the merger
    /// must not read live evaluator state, which may already be batches ahead.
    candidates: Vec<RankedEntry>,
    had_removals: bool,
    apply_secs: f64,
}

/// Send preferring the non-blocking path, counting the times the queue was full
/// (the stage blocked — backpressure). Returns `false` when the receiver is
/// disconnected: the downstream stage died, the item is lost, and the sending
/// stage must stop producing — swallowing the disconnect here is what used to
/// turn a dead shard worker into a silently truncated "successful" report.
#[must_use]
fn send_counting<T>(tx: &SyncSender<T>, item: T, blocked: &mut u64) -> bool {
    match tx.try_send(item) {
        Ok(()) => true,
        Err(TrySendError::Full(item)) => {
            *blocked += 1;
            tx.send(item).is_ok()
        }
        Err(TrySendError::Disconnected(_)) => false,
    }
}

/// Everything the merge stage accumulates, returned when its input closes.
struct MergeOutput {
    /// Merged result per batch, indexed by seq (warm-up included).
    results: Vec<String>,
    /// Ingest-enqueue instant per batch.
    enqueued: Vec<Instant>,
    /// Merge-completion instant per batch.
    completed: Vec<Instant>,
    max_watermark_lag: u64,
    per_shard_apply: Vec<Vec<f64>>,
}

// ---------------------------------------------------------------------------
// The pipelined engine
// ---------------------------------------------------------------------------

/// The staged ingestion engine described in the [module documentation](self):
/// ingest → coalesce/route → N per-shard apply workers → watermark merge, all
/// long-lived threads over bounded queues. Construct with any [`ShardFactory`];
/// each call to [`IngestEngine::run`] builds a fresh router and fresh per-shard
/// evaluators, so one engine value can measure many runs.
pub struct PipelinedEngine {
    factory: Box<dyn ShardFactory>,
    shards: usize,
    /// The pristine partition policy, cloned into every run's router.
    partitioner: Box<dyn Partitioner>,
    config: PipelineConfig,
}

impl PipelinedEngine {
    /// Create a pipelined engine over `shards` shards of `factory`'s evaluators
    /// with the default modulo partition policy. `shards == 0` is treated as 1.
    pub fn new(factory: Box<dyn ShardFactory>, shards: usize, config: PipelineConfig) -> Self {
        Self::with_partitioner(factory, Box::new(ModuloPartitioner::new(shards)), config)
    }

    /// Create a pipelined engine with an injected partition policy; the shard
    /// count is the policy's.
    pub fn with_partitioner(
        factory: Box<dyn ShardFactory>,
        partitioner: Box<dyn Partitioner>,
        config: PipelineConfig,
    ) -> Self {
        let shards = partitioner.shard_count();
        PipelinedEngine {
            factory,
            shards,
            partitioner,
            config,
        }
    }

    /// Convenience constructor for the GraphBLAS backends.
    pub fn graphblas(
        query: crate::model::Query,
        backend: crate::shard::ShardBackend,
        shards: usize,
        config: PipelineConfig,
    ) -> Self {
        Self::new(
            Box::new(crate::shard::GraphBlasShardFactory::new(query, backend)),
            shards,
            config,
        )
    }

    /// The configured number of shard apply workers.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The merge stage: consume per-shard [`ApplyOutcome`]s strictly in batch
    /// order — batch `t` is merged only once **all** shards delivered `t` (their
    /// watermark passed `t`) — folding each batch's candidate union through
    /// [`ShardMerger`]. Outcomes arriving early (a shard running ahead) are
    /// buffered; the distance the furthest shard ran ahead is recorded as
    /// watermark lag.
    fn merge_stage(
        mut merger: ShardMerger,
        receivers: Vec<Receiver<ApplyOutcome>>,
        shards: usize,
    ) -> (MergeOutput, ShardMerger) {
        let mut buffers: Vec<VecDeque<ApplyOutcome>> =
            (0..shards).map(|_| VecDeque::new()).collect();
        let mut out = MergeOutput {
            results: Vec::new(),
            enqueued: Vec::new(),
            completed: Vec::new(),
            max_watermark_lag: 0,
            per_shard_apply: vec![Vec::new(); shards],
        };
        'merge: for t in 0u64.. {
            // Drain whatever every shard has already delivered, without
            // blocking, so the watermark-lag measurement sees the true
            // progress spread before we commit to waiting on stragglers.
            for (buffer, rx) in buffers.iter_mut().zip(&receivers) {
                while let Ok(outcome) = rx.try_recv() {
                    buffer.push_back(outcome);
                }
            }
            for (buffer, rx) in buffers.iter_mut().zip(&receivers) {
                if buffer.is_empty() {
                    match rx.recv() {
                        Ok(outcome) => buffer.push_back(outcome),
                        // Channel closed before batch t: the stream ended.
                        // Workers emit one outcome per batch in seq order, so
                        // every other shard's buffer holds at most stale
                        // pre-close outcomes for batches that no longer exist.
                        Err(_) => break 'merge,
                    }
                }
            }
            for (shard, buffer) in buffers.iter().enumerate() {
                let delivered = buffer.back().expect("buffer non-empty").seq;
                debug_assert_eq!(
                    buffer.front().expect("buffer non-empty").seq,
                    t,
                    "shard {shard} delivered outcomes out of order"
                );
                out.max_watermark_lag = out.max_watermark_lag.max(delivered - t);
            }
            let outcomes: Vec<ApplyOutcome> = buffers
                .iter_mut()
                .map(|buffer| buffer.pop_front().expect("buffer non-empty"))
                .collect();
            let any_removals = outcomes.iter().any(|o| o.had_removals);
            let union: Vec<RankedEntry> = outcomes
                .iter()
                .flat_map(|o| o.candidates.iter().copied())
                .collect();
            let result = merger.merge(union, any_removals);
            for (shard, outcome) in outcomes.iter().enumerate() {
                out.per_shard_apply[shard].push(outcome.apply_secs);
            }
            out.results.push(result);
            out.enqueued.push(outcomes[0].enqueued);
            out.completed.push(Instant::now());
        }
        (out, merger)
    }
}

impl IngestEngine for PipelinedEngine {
    fn name(&self) -> String {
        if self.partitioner.name() == "mod" {
            format!(
                "{} ({} shards, pipelined)",
                self.factory.name(),
                self.shards
            )
        } else {
            format!(
                "{} ({} shards, {}, pipelined)",
                self.factory.name(),
                self.shards,
                self.partitioner.name()
            )
        }
    }

    fn run(
        &mut self,
        initial: &SocialNetwork,
        stream: &mut dyn Iterator<Item = ChangeSet>,
        batches: usize,
    ) -> Result<EngineReport, EngineError> {
        let shards = self.shards;
        let depth = self.config.queue_depth.max(1);
        let warmup = self.config.warmup_batches;
        let total = warmup + batches;
        let coalesce_on = self.config.coalesce;
        let delays = &self.config.delays;
        let kill_shard = self.config.kill_shard;
        let factory = self.factory.as_ref();

        // Load phase: the exact function the synchronous driver runs —
        // partition, build the per-shard evaluators (rayon-parallel), seed the
        // merge state — so the two engines cannot drift apart before batch 0.
        let load_start = Instant::now();
        let (router, evaluators, merger, initial_result) =
            load_shards_with(factory, initial, self.partitioner.clone());
        let load_secs = load_start.elapsed().as_secs_f64();

        // Stage plumbing. One bounded queue per edge of the stage graph.
        let (ingest_tx, ingest_rx) = sync_channel::<IngestItem>(depth);
        let mut route_txs = Vec::with_capacity(shards);
        let mut route_rxs = Vec::with_capacity(shards);
        let mut out_txs = Vec::with_capacity(shards);
        let mut out_rxs = Vec::with_capacity(shards);
        for _ in 0..shards {
            let (tx, rx) = sync_channel::<RoutedItem>(depth);
            route_txs.push(tx);
            route_rxs.push(rx);
            let (tx, rx) = sync_channel::<ApplyOutcome>(depth);
            out_txs.push(tx);
            out_rxs.push(rx);
        }

        let mut total_operations = 0usize;
        let mut ingest_backpressure = 0u64;
        let mut ingested = 0usize;

        let (merged, router, applied_operations, route_backpressure, worker_outputs) =
            thread::scope(|scope| {
                // Stage 2: coalesce + route. Owns the router (the only stage
                // that needs its mutable replica/presence bookkeeping).
                let route_handle = scope.spawn(move || {
                    let mut router = router;
                    let mut applied = 0usize;
                    let mut blocked = 0u64;
                    'route: for IngestItem {
                        seq,
                        enqueued,
                        batch,
                    } in ingest_rx
                    {
                        if let Some(d) = delays {
                            d.sleep_route(seq);
                        }
                        let batch = if coalesce_on { coalesce(&batch) } else { batch };
                        if seq >= warmup as u64 {
                            applied += batch.operations.len();
                        }
                        // Every shard receives an item for every seq (possibly
                        // empty), which is what keeps the merger's watermark a
                        // plain per-shard counter.
                        for (tx, ops) in route_txs.iter().zip(router.route(&batch)) {
                            if !send_counting(tx, RoutedItem { seq, enqueued, ops }, &mut blocked) {
                                break 'route; // a worker died; stop routing
                            }
                        }
                    }
                    (router, applied, blocked)
                });

                // Stage 3: one apply worker per shard; the evaluator moves in.
                let worker_handles: Vec<_> = evaluators
                    .into_iter()
                    .zip(route_rxs)
                    .zip(out_txs)
                    .enumerate()
                    .map(|(shard, ((mut evaluator, rx), tx))| {
                        scope.spawn(move || {
                            let mut blocked = 0u64;
                            for RoutedItem { seq, enqueued, ops } in rx {
                                if kill_shard == Some((shard, seq)) {
                                    break; // chaos injection: die mid-run
                                }
                                if let Some(d) = delays {
                                    d.sleep_apply(shard, seq);
                                }
                                let start = Instant::now();
                                let had_removals = evaluator.apply(&ops);
                                let apply_secs = start.elapsed().as_secs_f64();
                                let delivered = send_counting(
                                    &tx,
                                    ApplyOutcome {
                                        seq,
                                        enqueued,
                                        candidates: evaluator.candidates().to_vec(),
                                        had_removals,
                                        apply_secs,
                                    },
                                    &mut blocked,
                                );
                                if !delivered {
                                    break; // the merger died; stop applying
                                }
                            }
                            (evaluator.owned_sizes(), blocked)
                        })
                    })
                    .collect();

                // Stage 4: watermark merge.
                let merge_handle = scope.spawn(move || Self::merge_stage(merger, out_rxs, shards));

                // Stage 1 (this thread): ingest — pull, stamp seq, enqueue.
                for item in sequenced(stream.take(total)) {
                    if item.seq >= warmup as u64 {
                        total_operations += item.batch.operations.len();
                    }
                    let delivered = send_counting(
                        &ingest_tx,
                        IngestItem {
                            seq: item.seq,
                            enqueued: Instant::now(),
                            batch: item.batch,
                        },
                        &mut ingest_backpressure,
                    );
                    if !delivered {
                        break; // the route stage died; stop pulling the stream
                    }
                    ingested += 1;
                }
                drop(ingest_tx); // close the pipe; stages drain and exit in turn

                let (router, applied, route_blocked) =
                    route_handle.join().expect("route stage panicked");
                let worker_outputs: Vec<((usize, usize), u64)> = worker_handles
                    .into_iter()
                    .map(|h| h.join().expect("apply worker panicked"))
                    .collect();
                let (merged, _merger) = merge_handle.join().expect("merge stage panicked");
                (merged, router, applied, route_blocked, worker_outputs)
            });

        // A merged count short of the ingested count means a stage died mid-run
        // and dropped batches: refuse to report throughput over a truncated
        // window as if it were the whole run.
        if merged.results.len() != ingested {
            return Err(EngineError::TruncatedRun {
                ingested,
                merged: merged.results.len(),
            });
        }

        // Assemble the report from the merged timeline.
        let measured = merged.results.len().saturating_sub(warmup);
        let results: Vec<String> = merged.results.iter().skip(warmup).cloned().collect();
        let mut latencies: Vec<f64> = (warmup..merged.results.len())
            .map(|i| (merged.completed[i] - merged.enqueued[i]).as_secs_f64())
            .collect();
        // Wall-clock of the measured window: from "warm-up results done" (or
        // the first enqueue when there is no warm-up) to the last merge.
        let elapsed_secs = match (merged.completed.last(), measured) {
            (Some(&end), m) if m > 0 => {
                let start = if warmup > 0 {
                    merged.completed[warmup - 1]
                } else {
                    merged.enqueued[0]
                };
                (end - start).as_secs_f64()
            }
            _ => 0.0,
        };
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let stream_report = StreamReport {
            solution: self.name(),
            batches: measured,
            total_operations,
            applied_operations,
            elapsed_secs,
            updates_per_sec: if elapsed_secs > 0.0 {
                total_operations as f64 / elapsed_secs
            } else {
                0.0
            },
            p50_latency_secs: percentile(&latencies, 50.0),
            p90_latency_secs: percentile(&latencies, 90.0),
            p99_latency_secs: percentile(&latencies, 99.0),
            max_latency_secs: latencies.last().copied().unwrap_or(0.0),
            load_secs,
            // the stream may end inside the warm-up window: those batches were
            // still applied, so the last *merged* result (not the pre-stream
            // initial one) is the true end state — matching SyncEngine
            final_result: merged.results.last().cloned().unwrap_or(initial_result),
        };
        let stats = PipelineStats {
            queue_depth: depth,
            shards,
            ingest_backpressure,
            route_backpressure,
            apply_backpressure: worker_outputs.iter().map(|&(_, blocked)| blocked).sum(),
            max_watermark_lag: merged.max_watermark_lag,
            per_shard_apply_latencies: merged.per_shard_apply,
            shard_sizes: worker_outputs.iter().map(|&(sizes, _)| sizes).collect(),
            router: router.stats(),
        };
        Ok(EngineReport {
            stream: stream_report,
            results,
            pipeline: Some(stats),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Query;
    use crate::shard::{ShardBackend, ShardedSolution};
    use datagen::stream::{StreamConfig, UpdateStream};
    use datagen::{generate_workload, GeneratorConfig};

    fn network(seed: u64) -> SocialNetwork {
        generate_workload(&GeneratorConfig::tiny(seed)).initial
    }

    fn batches(network: &SocialNetwork, seed: u64, count: usize) -> Vec<ChangeSet> {
        UpdateStream::new(
            network,
            StreamConfig {
                seed,
                batch_size: 12,
                deletion_weight: 0.3,
                ..StreamConfig::default()
            },
        )
        .take(count)
        .collect()
    }

    fn run_pipelined(
        network: &SocialNetwork,
        batches: &[ChangeSet],
        shards: usize,
        config: PipelineConfig,
    ) -> EngineReport {
        let mut engine =
            PipelinedEngine::graphblas(Query::Q2, ShardBackend::Incremental, shards, config);
        let mut stream = batches.iter().cloned();
        engine
            .run(network, &mut stream, batches.len())
            .expect("pipeline completed")
    }

    #[test]
    fn pipelined_results_match_the_sync_engine_per_batch() {
        let network = network(51);
        let batches = batches(&network, 0x51de, 12);
        let mut sync = SyncEngine::new(
            StreamDriver::default(),
            Box::new(ShardedSolution::new(
                Query::Q2,
                ShardBackend::Incremental,
                3,
            )),
        );
        let mut stream = batches.iter().cloned();
        let expected = sync
            .run(&network, &mut stream, batches.len())
            .expect("sync engine never truncates");
        let got = run_pipelined(&network, &batches, 3, PipelineConfig::default());
        assert_eq!(got.results, expected.results);
        assert_eq!(
            got.stream.final_result, expected.stream.final_result,
            "final results diverged"
        );
        assert_eq!(got.stream.batches, batches.len());
        assert_eq!(
            got.stream.total_operations,
            expected.stream.total_operations
        );
        assert_eq!(
            got.stream.applied_operations,
            expected.stream.applied_operations
        );
    }

    #[test]
    fn injected_delays_do_not_change_results() {
        let network = network(53);
        let batches = batches(&network, 0xde1a, 8);
        let plain = run_pipelined(&network, &batches, 2, PipelineConfig::default());
        let delayed = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                queue_depth: 2,
                delays: Some(DelayInjection {
                    seed: 7,
                    max_route_micros: 200,
                    max_apply_micros: 800,
                }),
                ..PipelineConfig::default()
            },
        );
        assert_eq!(plain.results, delayed.results);
    }

    #[test]
    fn warmup_batches_are_applied_but_not_measured() {
        let network = network(57);
        let all = batches(&network, 0xaa, 10);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                warmup_batches: 4,
                ..PipelineConfig::default()
            },
        );
        let mut stream = all.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 6)
            .expect("pipeline completed");
        assert_eq!(report.stream.batches, 6);
        assert_eq!(report.results.len(), 6);
        // end state must equal replaying all 10 batches synchronously
        let mut reference = ShardedSolution::new(Query::Q1, ShardBackend::Incremental, 2);
        let mut last = reference.load_and_initial(&network);
        for batch in &all {
            last = reference.update_and_reevaluate(&coalesce(batch));
        }
        assert_eq!(report.stream.final_result, last);
    }

    #[test]
    fn stats_report_the_stage_graph() {
        let network = network(59);
        let batches = batches(&network, 0xbb, 6);
        let report = run_pipelined(
            &network,
            &batches,
            2,
            PipelineConfig {
                queue_depth: 3,
                ..PipelineConfig::default()
            },
        );
        let stats = report.pipeline.expect("pipelined engines report stats");
        assert_eq!(stats.queue_depth, 3);
        assert_eq!(stats.shards, 2);
        assert_eq!(stats.per_shard_apply_latencies.len(), 2);
        for lane in &stats.per_shard_apply_latencies {
            assert_eq!(lane.len(), batches.len());
        }
        assert_eq!(stats.shard_sizes.len(), 2);
        assert!(stats.router.routed_operations > 0);
        // a shard can run ahead by at most the items parked in its route queue,
        // its out queue, the merger's drain buffer (≤ depth), and one in flight
        assert!(
            stats.max_watermark_lag <= 3 * 3 + 1,
            "watermark lag {} not bounded by the queue depths",
            stats.max_watermark_lag
        );
    }

    #[test]
    fn short_streams_end_the_pipeline_cleanly() {
        let network = network(61);
        let batches = batches(&network, 0xcc, 3);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::IncrementalCc,
            2,
            PipelineConfig::default(),
        );
        // ask for more batches than the stream yields: a short stream is not a
        // truncated run — nothing that was ingested got lost
        let mut stream = batches.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 10)
            .expect("short streams are not an error");
        assert_eq!(report.stream.batches, 3);
        assert_eq!(report.results.len(), 3);

        // and the degenerate empty stream
        let mut empty = std::iter::empty();
        let report = engine
            .run(&network, &mut empty, 5)
            .expect("empty streams are not an error");
        assert_eq!(report.stream.batches, 0);
        assert!(report.results.is_empty());
        assert!(!report.stream.final_result.is_empty()); // the initial result
    }

    #[test]
    fn stream_ending_inside_the_warmup_window_still_reports_the_applied_state() {
        // regression: warm-up batches mutate shard state even when the stream
        // ends before measurement starts, so final_result must be the last
        // *merged* result, not the pre-stream initial one
        let network = network(63);
        let all = batches(&network, 0xdd, 2);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                warmup_batches: 4, // more warm-up than the stream yields
                ..PipelineConfig::default()
            },
        );
        let mut stream = all.iter().cloned();
        let report = engine
            .run(&network, &mut stream, 6)
            .expect("pipeline completed");
        assert_eq!(report.stream.batches, 0);
        assert!(report.results.is_empty());
        let mut reference = ShardedSolution::new(Query::Q2, ShardBackend::Incremental, 2);
        let mut last = reference.load_and_initial(&network);
        for batch in &all {
            last = reference.update_and_reevaluate(&coalesce(batch));
        }
        assert_eq!(report.stream.final_result, last);
    }

    #[test]
    fn dead_shard_worker_is_reported_as_a_truncated_run() {
        // regression: a shard worker dying mid-run used to make the merge stage
        // `break 'merge` and the engine report success over fewer batches than
        // ingested, because `send_counting` swallowed the disconnect
        let network = network(67);
        let batches = batches(&network, 0xdead, 8);
        let mut engine = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            2,
            PipelineConfig {
                kill_shard: Some((1, 3)), // shard 1 dies before applying batch 3
                ..PipelineConfig::default()
            },
        );
        let mut stream = batches.iter().cloned();
        let err = engine
            .run(&network, &mut stream, batches.len())
            .expect_err("a dead worker must not report success");
        match err {
            EngineError::TruncatedRun { ingested, merged } => {
                assert!(
                    merged < ingested,
                    "merged {merged} must be short of ingested {ingested}"
                );
                assert!(merged <= 3, "shard 1 died before batch 3, merged {merged}");
            }
        }
        // the error renders the counts for operators
        let rendered = err.to_string();
        assert!(rendered.contains("truncated"), "{rendered}");
    }

    #[test]
    fn ring_partitioner_threads_through_the_pipeline() {
        let network = network(69);
        let batches = batches(&network, 0x4177, 10);
        let mut modulo = PipelinedEngine::graphblas(
            Query::Q2,
            ShardBackend::Incremental,
            3,
            PipelineConfig::default(),
        );
        let mut stream = batches.iter().cloned();
        let expected = modulo
            .run(&network, &mut stream, batches.len())
            .expect("pipeline completed");
        let mut ring = PipelinedEngine::with_partitioner(
            Box::new(crate::shard::GraphBlasShardFactory::new(
                Query::Q2,
                ShardBackend::Incremental,
            )),
            Box::new(datagen::partition::RingPartitioner::new(3, 42)),
            PipelineConfig::default(),
        );
        assert_eq!(
            ring.name(),
            "GraphBLAS Sharded Incremental (3 shards, ring, pipelined)"
        );
        let mut stream = batches.iter().cloned();
        let got = ring
            .run(&network, &mut stream, batches.len())
            .expect("pipeline completed");
        // a different placement policy must not change a single output byte
        assert_eq!(got.results, expected.results);
    }

    #[test]
    fn engine_names_identify_the_configuration() {
        let engine = PipelinedEngine::graphblas(
            Query::Q1,
            ShardBackend::Incremental,
            4,
            PipelineConfig::default(),
        );
        assert_eq!(
            engine.name(),
            "GraphBLAS Sharded Incremental (4 shards, pipelined)"
        );
        assert_eq!(engine.shard_count(), 4);
        // zero shards degrades to one
        assert_eq!(
            PipelinedEngine::graphblas(
                Query::Q1,
                ShardBackend::Batch,
                0,
                PipelineConfig::default()
            )
            .shard_count(),
            1
        );
    }
}
